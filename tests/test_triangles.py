"""Tests for triangle listing, counting and edge supports."""

from hypothesis import given

from repro.graph.graph import Graph
from repro.errors import InvalidParameterError
from repro.graph.triangles import (
    iter_triangles,
    triangle_count,
    edge_supports,
    local_triangle_counts,
    count_triangles_per_edge_sum,
    global_clustering_coefficient,
    approx_triangle_count,
)
from repro.graph.egonet import ego_edge_count

from tests.conftest import graph_strategy, complete_graph, cycle_graph
from tests.helpers import nx_triangle_count


class TestTriangleListing:
    def test_triangle(self, triangle):
        assert list(iter_triangles(triangle)) == [(0, 1, 2)]

    def test_each_triangle_once(self, k4):
        triangles = list(iter_triangles(k4))
        assert len(triangles) == 4
        assert len({frozenset(t) for t in triangles}) == 4

    def test_no_triangles_in_cycle(self):
        assert triangle_count(cycle_graph(5)) == 0

    def test_complete_graph_counts(self):
        # K_n has C(n, 3) triangles.
        for n in range(3, 8):
            expected = n * (n - 1) * (n - 2) // 6
            assert triangle_count(complete_graph(n)) == expected

    @given(graph_strategy())
    def test_matches_networkx(self, g):
        assert triangle_count(g) == nx_triangle_count(g)

    @given(graph_strategy())
    def test_triangles_are_actual_triangles(self, g):
        for u, v, w in iter_triangles(g):
            assert g.has_edge(u, v) and g.has_edge(u, w) and g.has_edge(v, w)


class TestEdgeSupports:
    def test_paper_figure2a(self, h1):
        """Figure 2(a): clique edges support 2, except (x2,x4) with 3;
        the two bridges have support 1."""
        sup = edge_supports(h1)
        by_pair = {frozenset(e): s for e, s in sup.items()}
        assert by_pair[frozenset(("x2", "y1"))] == 1
        assert by_pair[frozenset(("x4", "y1"))] == 1
        assert by_pair[frozenset(("x2", "x4"))] == 3
        assert by_pair[frozenset(("x1", "x3"))] == 2
        assert by_pair[frozenset(("y1", "y2"))] == 2

    def test_every_edge_present(self, path4):
        sup = edge_supports(path4)
        assert len(sup) == path4.num_edges
        assert all(s == 0 for s in sup.values())

    @given(graph_strategy())
    def test_support_sum_is_three_triangles(self, g):
        assert count_triangles_per_edge_sum(g) == 3 * triangle_count(g)

    @given(graph_strategy())
    def test_support_matches_common_neighbors(self, g):
        sup = edge_supports(g)
        for (u, v), s in sup.items():
            assert s == len(g.common_neighbors(u, v))


class TestLocalCounts:
    @given(graph_strategy())
    def test_local_counts_sum(self, g):
        counts = local_triangle_counts(g)
        assert sum(counts.values()) == 3 * triangle_count(g)

    @given(graph_strategy())
    def test_local_count_equals_ego_edges(self, g):
        """m_v (Lemma 2) equals the number of triangles through v."""
        counts = local_triangle_counts(g)
        for v in g.vertices():
            assert counts[v] == ego_edge_count(g, v)


class TestApproxCount:
    def test_exact_at_p_one(self, figure1):
        assert approx_triangle_count(figure1, 1.0) == triangle_count(figure1)

    def test_validation(self, triangle):
        import pytest
        with pytest.raises(InvalidParameterError):
            approx_triangle_count(triangle, 0.0)
        with pytest.raises(InvalidParameterError):
            approx_triangle_count(triangle, 1.5)

    def test_unbiased_in_expectation(self):
        """DOULION: averaging estimates over many seeds approaches T."""
        g = complete_graph(12)  # 220 triangles
        true_count = triangle_count(g)
        estimates = [approx_triangle_count(g, 0.6, seed=s)
                     for s in range(40)]
        mean = sum(estimates) / len(estimates)
        assert abs(mean - true_count) <= 0.25 * true_count

    def test_input_not_mutated(self, k4):
        edges_before = k4.num_edges
        approx_triangle_count(k4, 0.5, seed=1)
        assert k4.num_edges == edges_before


class TestClustering:
    def test_complete_graph_transitivity(self):
        assert global_clustering_coefficient(complete_graph(5)) == 1.0

    def test_triangle_free(self):
        assert global_clustering_coefficient(cycle_graph(6)) == 0.0

    def test_empty(self):
        assert global_clustering_coefficient(Graph()) == 0.0

    @given(graph_strategy())
    def test_range(self, g):
        c = global_clustering_coefficient(g)
        assert 0.0 <= c <= 1.0
