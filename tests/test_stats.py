"""Tests for graph statistics (Table 1 columns)."""

from repro.graph.graph import Graph
from repro.graph.stats import GraphStats, compute_stats, max_ego_trussness

from tests.conftest import complete_graph


class TestComputeStats:
    def test_figure1_row(self, figure1):
        stats = compute_stats(figure1, name="figure1")
        assert stats.num_vertices == 17
        assert stats.num_edges == 43
        assert stats.max_degree == 14      # the center vertex v
        # {v} + the octahedron forms a 5-truss (every edge in >= 3
        # triangles inside it), so the global maximum is 5 ...
        assert stats.tau_max == 5
        # ... and the ego maximum is exactly one lower (Property 1).
        assert stats.tau_ego_max == 4
        assert stats.triangles == 44

    def test_skip_ego_column(self, triangle):
        stats = compute_stats(triangle, include_ego_trussness=False)
        assert stats.tau_ego_max is None
        assert "-" in stats.as_row()

    def test_empty_graph(self):
        stats = compute_stats(Graph(), name="empty")
        assert stats.num_vertices == 0
        assert stats.tau_max == 0
        assert stats.triangles == 0

    def test_as_dict(self, triangle):
        d = compute_stats(triangle, name="tri").as_dict()
        assert d["name"] == "tri"
        assert d["num_edges"] == 3

    def test_header_matches_row_columns(self, triangle):
        stats = compute_stats(triangle, name="tri")
        assert len(GraphStats.header().split()) == len(stats.as_row().split())


class TestEgoTrussness:
    def test_complete_graph(self):
        # Ego of any K6 vertex is K5: max ego trussness 5 = tau_max - 1.
        g = complete_graph(6)
        assert max_ego_trussness(g) == 5

    def test_triangle(self, triangle):
        # Ego of each triangle vertex is a single edge: trussness 2.
        assert max_ego_trussness(triangle) == 2

    def test_no_triangles(self, path4):
        # Egos contain no edges at all.
        assert max_ego_trussness(path4) == 0

    def test_ego_at_most_global_minus_one(self, medium_graph):
        """Property 1 consequence: tau*_ego <= tau*_G - 1 (seen in
        every Table 1 row of the paper)."""
        from repro.truss.decomposition import max_trussness
        assert max_ego_trussness(medium_graph) <= max_trussness(medium_graph) - 1
