"""Tests for graph sparsification (Property 1, Section 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.sparsify import sparsify, sparsify_with_stats
from repro.core.diversity import structural_diversity, social_contexts
from repro.truss.decomposition import truss_decomposition

from tests.conftest import dense_graph_strategy


class TestSparsify:
    def test_invalid_k(self, figure1):
        with pytest.raises(InvalidParameterError):
            sparsify(figure1, 1)

    def test_input_not_mutated(self, figure1):
        edges_before = figure1.num_edges
        sparsify(figure1, 4)
        assert figure1.num_edges == edges_before

    def test_removes_low_trussness_edges(self, figure1):
        reduced = sparsify(figure1, 4)
        tau = truss_decomposition(figure1)
        for edge, t in tau.items():
            assert reduced.has_edge(*edge) == (t >= 5)

    def test_figure1_keeps_answer_structure(self, figure1):
        """After sparsification at k=4, v's score is still 3."""
        reduced = sparsify(figure1, 4)
        assert structural_diversity(reduced, "v", 4) == 3

    def test_drops_isolated(self, figure1):
        reduced = sparsify(figure1, 4)
        # s1, s2 hang on trussness-2 edges: gone after sparsification.
        assert "s1" not in reduced
        assert "s2" not in reduced

    def test_stats(self, figure1):
        reduced, stats = sparsify_with_stats(figure1, 4)
        assert stats.original_edges == figure1.num_edges
        assert stats.remaining_edges == reduced.num_edges
        assert stats.removed_edges == figure1.num_edges - reduced.num_edges
        assert 0.0 <= stats.edge_removal_ratio <= 1.0

    def test_stats_empty_graph(self):
        _, stats = sparsify_with_stats(Graph(), 3)
        assert stats.edge_removal_ratio == 0.0


class TestProperty1:
    """Property 1: removal never changes any vertex's score or contexts."""

    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4]))
    @settings(max_examples=25)
    def test_scores_preserved(self, g, k):
        reduced = sparsify(g, k)
        for v in list(g.vertices())[:6]:
            expected = structural_diversity(g, v, k)
            if v in reduced:
                assert structural_diversity(reduced, v, k) == expected
            else:
                # A vertex pruned entirely must have had score 0.
                assert expected == 0

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_contexts_preserved(self, g):
        k = 3
        reduced = sparsify(g, k)
        for v in list(g.vertices())[:4]:
            before = {frozenset(c) for c in social_contexts(g, v, k)}
            if v in reduced:
                after = {frozenset(c) for c in social_contexts(reduced, v, k)}
                assert after == before
            else:
                assert before == set()

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_reduced_is_subgraph(self, g):
        reduced = sparsify(g, 3)
        for u, v in reduced.edges():
            assert g.has_edge(u, v)
