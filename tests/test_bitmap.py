"""Tests for the bitmap adjacency used by GCT (Section 6.2)."""

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph.bitmap import BitmapAdjacency

from tests.conftest import graph_strategy


class TestBasics:
    def test_empty(self):
        bm = BitmapAdjacency([])
        assert bm.num_vertices == 0
        assert bm.num_edges == 0

    def test_duplicate_universe_rejected(self):
        with pytest.raises(GraphError):
            BitmapAdjacency(["a", "a"])

    def test_add_edge(self):
        bm = BitmapAdjacency("abc")
        assert bm.add_edge("a", "b") is True
        assert bm.add_edge("b", "a") is False
        assert bm.num_edges == 1
        assert bm.has_edge("a", "b")

    def test_self_loop_rejected(self):
        bm = BitmapAdjacency("ab")
        with pytest.raises(GraphError):
            bm.add_edge("a", "a")

    def test_remove_edge(self):
        bm = BitmapAdjacency.from_edges("abc", [("a", "b"), ("b", "c")])
        bm.remove_edge("a", "b")
        assert not bm.has_edge("a", "b")
        assert bm.num_edges == 1
        bm.remove_edge("a", "b")  # idempotent
        assert bm.num_edges == 1

    def test_local_ids_sequential(self):
        bm = BitmapAdjacency(["x", "y", "z"])
        assert [bm.local_id(v) for v in "xyz"] == [0, 1, 2]
        assert bm.label(1) == "y"


class TestSupportAndNeighbors:
    def test_triangle_support(self):
        bm = BitmapAdjacency.from_edges(
            "abc", [("a", "b"), ("b", "c"), ("a", "c")])
        assert bm.support("a", "b") == 1
        assert set(bm.common_neighbors("a", "b")) == {"c"}

    def test_degree(self):
        bm = BitmapAdjacency.from_edges("abcd", [("a", "b"), ("a", "c"), ("a", "d")])
        assert bm.degree("a") == 3
        assert bm.degree("b") == 1

    def test_edges_iteration(self):
        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        bm = BitmapAdjacency.from_edges("abc", edges)
        seen = {frozenset(e) for e in bm.edges()}
        assert seen == {frozenset(e) for e in edges}

    @given(graph_strategy(min_vertices=2))
    def test_matches_graph_adjacency(self, g):
        vertices = list(g.vertices())
        bm = BitmapAdjacency.from_edges(vertices, g.edges())
        assert bm.num_edges == g.num_edges
        for v in vertices:
            assert set(bm.neighbors(v)) == g.neighbors(v)
            assert bm.degree(v) == g.degree(v)

    @given(graph_strategy(min_vertices=2))
    def test_support_matches_graph(self, g):
        bm = BitmapAdjacency.from_edges(list(g.vertices()), g.edges())
        for u, v in g.edges():
            assert bm.support(u, v) == g.support(u, v)
            assert set(bm.common_neighbors(u, v)) == g.common_neighbors(u, v)

    @given(graph_strategy(min_vertices=2))
    def test_id_paths_agree_with_label_paths(self, g):
        bm = BitmapAdjacency.from_edges(list(g.vertices()), g.edges())
        for u, v in g.edges():
            iu, iv = bm.local_id(u), bm.local_id(v)
            assert bm.support_by_id(iu, iv) == bm.support(u, v)
            by_id = {bm.label(i) for i in bm.common_neighbor_ids(iu, iv)}
            assert by_id == set(bm.common_neighbors(u, v))
