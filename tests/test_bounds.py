"""Tests for the pruning upper bounds (Lemma 2 and the TSD bound)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.core.bounds import (
    clique_upper_bound,
    clique_upper_bounds,
    tsd_upper_bound,
    count_at_least,
)
from repro.core.diversity import structural_diversity
from repro.core.tsd import TSDIndex

from tests.conftest import dense_graph_strategy


class TestCountAtLeast:
    def test_basic(self):
        weights = [5, 4, 4, 3, 2]
        assert count_at_least(weights, 2) == 5
        assert count_at_least(weights, 3) == 4
        assert count_at_least(weights, 4) == 3
        assert count_at_least(weights, 5) == 1
        assert count_at_least(weights, 6) == 0

    def test_empty(self):
        assert count_at_least([], 3) == 0

    @given(st.lists(st.integers(0, 20)), st.integers(0, 25))
    def test_matches_linear_scan(self, values, k):
        ordered = sorted(values, reverse=True)
        assert count_at_least(ordered, k) == sum(1 for x in values if x >= k)


class TestCliqueBound:
    def test_paper_example3_v(self, figure1):
        """score̅(v) = min(⌊14/4⌋, ⌊2·26/12⌋) = min(3, 4) = 3."""
        bounds = clique_upper_bounds(figure1, 4)
        assert bounds["v"] == 3

    def test_paper_example3_x1(self, figure1):
        """score̅(x1) = 1 at k = 4 (d=5, m_v=7)."""
        bounds = clique_upper_bounds(figure1, 4)
        assert bounds["x1"] == 1

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            clique_upper_bound(10, 10, 1)

    def test_formula(self):
        assert clique_upper_bound(degree=10, ego_edges=45, k=5) == 2
        assert clique_upper_bound(degree=4, ego_edges=100, k=5) == 0

    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4, 5]))
    @settings(max_examples=25)
    def test_is_upper_bound(self, g, k):
        """Lemma 2: score(v) <= score̅(v) for every vertex."""
        bounds = clique_upper_bounds(g, k)
        for v in list(g.vertices())[:6]:
            assert structural_diversity(g, v, k) <= bounds[v]


class TestTSDBound:
    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            tsd_upper_bound([4, 3], 1)

    def test_formula(self):
        # 4 edges with weight >= 3, k = 3: bound = 4 // 2 = 2.
        assert tsd_upper_bound([5, 4, 3, 3, 2], 3) == 2

    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4]))
    @settings(max_examples=25)
    def test_is_upper_bound(self, g, k):
        """Section 5.2: score(v) <= |{w(e) >= k}| / (k-1)."""
        index = TSDIndex.build(g)
        for v in list(g.vertices())[:6]:
            assert index.score(v, k) <= index.upper_bound(v, k)

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_tsd_bound_monotone_in_k(self, g):
        """Raising k can only shrink the qualifying edge count and grow
        the divisor, so the bound is non-increasing in k."""
        index = TSDIndex.build(g)
        for v in list(g.vertices())[:6]:
            bounds = [index.upper_bound(v, k) for k in range(2, 8)]
            assert bounds == sorted(bounds, reverse=True)
