"""Run every docstring example in the library as a test.

Documentation that executes is documentation that stays true; this
walks the whole :mod:`repro` package and doctests each module.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULE_NAMES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
