"""Tests for score(v) computation (Algorithm 2) and diversity profiles."""

import pytest
from hypothesis import given

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.diversity import (
    structural_diversity,
    social_contexts,
    diversity_and_contexts,
    all_structural_diversities,
    diversity_profile,
    ego_truss_weights,
    profile_from_weights,
)
from repro.datasets.synthetic import planted_context_graph

from tests.conftest import graph_strategy, dense_graph_strategy
from tests.helpers import brute_structural_diversity, brute_social_contexts


class TestPaperExample:
    def test_score_v_is_3(self, figure1):
        """The headline running example: score(v) = 3 at k = 4."""
        assert structural_diversity(figure1, "v", 4) == 3

    def test_contexts_match_paper(self, figure1):
        contexts = {frozenset(c) for c in social_contexts(figure1, "v", 4)}
        assert contexts == {
            frozenset({"x1", "x2", "x3", "x4"}),
            frozenset({"y1", "y2", "y3", "y4"}),
            frozenset({"r1", "r2", "r3", "r4", "r5", "r6"})}

    def test_score_v_at_3(self, figure1):
        """At k = 3 the bridges merge H3 and H4: two contexts remain."""
        assert structural_diversity(figure1, "v", 3) == 2

    def test_nonsymmetry_observation(self, figure1):
        """Observation 1: tau_{GN(v)}(r1,r2)=4 but tau_{GN(r1)}(v,r2)=3."""
        w_v = ego_truss_weights(figure1, "v")
        ego_v_edge = {frozenset(e): t for e, t in w_v.items()}
        assert ego_v_edge[frozenset(("r1", "r2"))] == 4
        w_r1 = ego_truss_weights(figure1, "r1")
        ego_r1_edge = {frozenset(e): t for e, t in w_r1.items()}
        assert ego_r1_edge[frozenset(("v", "r2"))] == 3

    def test_score_and_contexts_agree(self, figure1):
        score, contexts = diversity_and_contexts(figure1, "v", 4)
        assert score == 3 == len(contexts)


class TestPlantedContexts:
    def test_known_scores(self):
        g = planted_context_graph(num_contexts=4, context_size=6,
                                  num_bridges=1, extra_neighbors=3, seed=1)
        # Bridges chain everything at k=2; cliques separate for 3..6.
        assert structural_diversity(g, "ego", 2) == 1
        for k in range(3, 7):
            assert structural_diversity(g, "ego", k) == 4
        assert structural_diversity(g, "ego", 7) == 0

    def test_isolated_neighbors_never_count(self):
        g = planted_context_graph(num_contexts=2, context_size=4,
                                  extra_neighbors=5, seed=2)
        contexts = social_contexts(g, "ego", 2)
        flat = set().union(*contexts)
        assert not any(str(v).startswith("lonely") for v in flat)

    def test_zero_contexts_graph(self):
        g = Graph(edges=[("ego", 1), ("ego", 2), ("ego", 3)])
        assert structural_diversity(g, "ego", 3) == 0
        assert social_contexts(g, "ego", 3) == []


class TestValidation:
    def test_k_must_be_at_least_2(self, figure1):
        with pytest.raises(InvalidParameterError):
            structural_diversity(figure1, "v", 1)
        with pytest.raises(InvalidParameterError):
            social_contexts(figure1, "v", 0)


class TestAgainstOracle:
    @given(dense_graph_strategy())
    def test_score_matches_networkx(self, g):
        for v in list(g.vertices())[:6]:
            for k in (2, 3, 4):
                assert (structural_diversity(g, v, k)
                        == brute_structural_diversity(g, v, k))

    @given(dense_graph_strategy())
    def test_contexts_match_networkx(self, g):
        for v in list(g.vertices())[:4]:
            ours = {frozenset(c) for c in social_contexts(g, v, 3)}
            assert ours == brute_social_contexts(g, v, 3)

    @given(graph_strategy())
    def test_all_scores_consistent(self, g):
        scores = all_structural_diversities(g, 3)
        for v in list(g.vertices())[:6]:
            assert scores[v] == structural_diversity(g, v, 3)


class TestProfiles:
    @given(dense_graph_strategy())
    def test_profile_matches_pointwise(self, g):
        for v in list(g.vertices())[:5]:
            profile = diversity_profile(g, v)
            top = max(profile, default=1)
            for k in range(2, top + 3):
                assert profile.get(k, 0) == structural_diversity(g, v, k)

    def test_profile_empty_ego(self):
        g = Graph(edges=[(0, 1)])
        assert diversity_profile(g, 0) == {}

    def test_profile_from_weights_gap_filling(self):
        """Weights 5 and 2 only: thresholds 3 and 4 inherit from 5."""
        weights = [(("a", "b"), 5), (("c", "d"), 2)]
        profile = profile_from_weights(weights)
        assert profile[5] == 1
        assert profile[4] == 1
        assert profile[3] == 1
        assert profile[2] == 2

    def test_profile_monotone_nonincreasing_in_components(self):
        # Scores can go up or down with k in general, but the edge set
        # shrinks monotonically; verify counts are sane on the example.
        g = planted_context_graph(num_contexts=3, context_size=5, seed=9)
        profile = diversity_profile(g, "ego")
        assert profile[2] == 1
        assert profile[5] == 3
