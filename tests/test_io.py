"""Tests for graph IO and the GraphBuilder."""

import pytest

from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    iter_edge_list,
    read_json_graph,
    write_json_graph,
    edges_from_pairs,
)


class TestBuilder:
    def test_dedup_and_loops(self):
        b = GraphBuilder()
        assert b.add_edge(1, 2) is True
        assert b.add_edge(2, 1) is False
        assert b.add_edge(3, 3) is False
        assert b.build().num_edges == 1

    def test_add_edges_count(self):
        b = GraphBuilder()
        added = b.add_edges([(1, 2), (2, 3), (1, 2), (4, 4)])
        assert added == 2
        assert b.num_edges == 2

    def test_has_edge(self):
        b = GraphBuilder()
        b.add_edge("x", "y")
        assert b.has_edge("y", "x")
        assert not b.has_edge("x", "z")

    def test_isolated_vertices_survive(self):
        g = GraphBuilder().add_vertices([1, 2, 3]).build()
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_chaining(self):
        g = GraphBuilder().add_vertex(0).add_vertices([1, 2]).build()
        assert g.num_vertices == 3


class TestEdgeListIO:
    def test_round_trip(self, tmp_path, figure1):
        # Integer-label round trip via a relabelled copy.
        relabel = {v: i for i, v in enumerate(figure1.vertices())}
        g = Graph(edges=[(relabel[u], relabel[v]) for u, v in figure1.edges()])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="test graph")
        loaded = read_edge_list(path)
        assert loaded == g

    def test_snap_format_with_comments(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# Directed graph (each unordered pair of nodes is saved once)\n"
            "# Nodes: 4 Edges: 3\n"
            "0\t1\n"
            "1\t2\n"
            "2\t0\n")
        g = read_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_directed_input_symmetrised(self, tmp_path):
        path = tmp_path / "dir.txt"
        path.write_text("0 1\n1 0\n")
        assert read_edge_list(path).num_edges == 1

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("justonefield\n")
        with pytest.raises(ReproError):
            read_edge_list(path)

    def test_custom_vertex_type(self, tmp_path):
        path = tmp_path / "names.txt"
        path.write_text("alice bob\nbob carol\n")
        g = read_edge_list(path, vertex_type=str)
        assert g.has_edge("alice", "bob")

    def test_iter_streams(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("# header\n1 2\n3 4\n")
        pairs = list(iter_edge_list(path))
        assert pairs == [(1, 2), (3, 4)]


class TestJsonIO:
    def test_round_trip_arbitrary_labels(self, tmp_path):
        g = Graph(edges=[("a", "b"), ("b", "c")], vertices=["isolated"])
        path = tmp_path / "graph.json"
        write_json_graph(g, path)
        loaded = read_json_graph(path)
        assert loaded == g
        # Canonical edges survive because insertion order is preserved.
        assert list(loaded.vertices()) == list(g.vertices())

    def test_rejects_other_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "unrelated"}')
        with pytest.raises(ReproError):
            read_json_graph(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "versioned.json"
        path.write_text('{"format": "repro-graph", "version": 99,'
                        ' "vertices": [], "edges": []}')
        with pytest.raises(ReproError):
            read_json_graph(path)


class TestEdgesFromPairs:
    def test_basic(self):
        g = edges_from_pairs([(1, 2), (2, 2), (2, 1), (3, 4)])
        assert g.num_edges == 2
