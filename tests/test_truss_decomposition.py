"""Tests for truss decomposition (Algorithm 1) against oracles."""

from hypothesis import given

from repro.graph.graph import Graph
from repro.truss.decomposition import (
    truss_decomposition,
    vertex_trussness,
    max_trussness,
    trussness_histogram,
    subgraph_trussness,
)

from tests.conftest import graph_strategy, dense_graph_strategy, complete_graph, cycle_graph
from tests.helpers import brute_trussness, nx_ktruss_edges


class TestKnownGraphs:
    def test_empty(self):
        assert truss_decomposition(Graph()) == {}

    def test_single_edge(self):
        g = Graph(edges=[(0, 1)])
        assert list(truss_decomposition(g).values()) == [2]

    def test_triangle(self, triangle):
        assert set(truss_decomposition(triangle).values()) == {3}

    def test_complete_graphs(self):
        # Every edge of K_n has trussness exactly n.
        for n in range(2, 8):
            tau = truss_decomposition(complete_graph(n))
            assert set(tau.values()) == {n}

    def test_cycle(self):
        # Triangle-free: every edge has trussness 2.
        tau = truss_decomposition(cycle_graph(7))
        assert set(tau.values()) == {2}

    def test_paper_figure2b(self, h1):
        """Figure 2(b): clique edges trussness 4, bridges trussness 3."""
        tau = truss_decomposition(h1)
        by_pair = {frozenset(e): t for e, t in tau.items()}
        assert by_pair[frozenset(("x2", "y1"))] == 3
        assert by_pair[frozenset(("x4", "y1"))] == 3
        fours = [e for e, t in by_pair.items() if t == 4]
        assert len(fours) == 12

    def test_paper_example1_subgraph_trussness(self, h1):
        """Example 1: tau(H1) = min support + 2 = 3."""
        assert subgraph_trussness(h1) == 3

    def test_two_triangles_sharing_edge(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (0, 3)])
        tau = truss_decomposition(g)
        assert set(tau.values()) == {3}


class TestAgainstOracles:
    @given(graph_strategy())
    def test_matches_brute_force(self, g):
        assert truss_decomposition(g) == brute_trussness(g)

    @given(dense_graph_strategy())
    def test_matches_brute_force_dense(self, g):
        assert truss_decomposition(g) == brute_trussness(g)

    @given(dense_graph_strategy())
    def test_ktruss_matches_networkx(self, g):
        tau = truss_decomposition(g)
        top = max(tau.values(), default=2)
        for k in range(3, top + 2):
            ours = {frozenset(e) for e, t in tau.items() if t >= k}
            assert ours == nx_ktruss_edges(g, k)


class TestDerivedQuantities:
    def test_vertex_trussness(self, h1):
        vt = vertex_trussness(h1)
        assert vt["x1"] == 4
        assert vt["y1"] == 4  # y1 is in the y-clique

    def test_vertex_trussness_isolated(self):
        g = Graph(edges=[(0, 1)], vertices=[9])
        assert vertex_trussness(g)[9] == 0

    def test_max_trussness(self, h1):
        assert max_trussness(h1) == 4
        assert max_trussness(Graph()) == 0

    def test_histogram(self, h1):
        hist = trussness_histogram(truss_decomposition(h1))
        assert hist == {3: 2, 4: 12}

    @given(graph_strategy())
    def test_histogram_totals(self, g):
        hist = trussness_histogram(truss_decomposition(g))
        assert sum(hist.values()) == g.num_edges

    @given(graph_strategy())
    def test_vertex_trussness_is_max_incident(self, g):
        tau = truss_decomposition(g)
        vt = vertex_trussness(g, tau)
        for v in g.vertices():
            incident = [t for (a, b), t in tau.items() if v in (a, b)]
            assert vt[v] == max(incident, default=0)

    @given(graph_strategy())
    def test_trussness_at_least_two(self, g):
        tau = truss_decomposition(g)
        assert all(t >= 2 for t in tau.values())

    @given(graph_strategy())
    def test_trussness_at_most_support_plus_two(self, g):
        from repro.graph.triangles import edge_supports
        tau = truss_decomposition(g)
        sup = edge_supports(g)
        for e, t in tau.items():
            assert t <= sup[e] + 2
