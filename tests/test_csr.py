"""Tests for the CSR representation and array-based decomposition."""

import pytest
from hypothesis import given, settings

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.graph.csr import CSRGraph
from repro.graph.triangles import triangle_count
from repro.truss.decomposition import truss_decomposition
from repro.truss.csr_decomposition import (
    csr_truss_decomposition,
    csr_truss_decomposition_graph,
)

from tests.conftest import graph_strategy, dense_graph_strategy, complete_graph


class TestCSRGraph:
    def test_from_graph_counts(self, figure1):
        csr = CSRGraph.from_graph(figure1)
        assert csr.num_vertices == figure1.num_vertices
        assert csr.num_edges == figure1.num_edges

    def test_labels_round_trip(self, figure1):
        csr = CSRGraph.from_graph(figure1)
        assert csr.to_graph() == figure1

    def test_ids_follow_insertion_order(self):
        g = Graph(edges=[("b", "a"), ("a", "c")])
        csr = CSRGraph.from_graph(g)
        assert csr.labels == list(g.vertices())
        assert csr.id_of("b") == 0

    def test_unknown_label(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        with pytest.raises(VertexNotFoundError):
            csr.id_of(99)

    def test_invalid_construction(self):
        with pytest.raises(GraphError):
            CSRGraph([0, 0], [], ["a", "a"])
        with pytest.raises(GraphError):
            CSRGraph([0], [], ["a"])

    def test_rows_sorted(self, medium_graph):
        csr = CSRGraph.from_graph(medium_graph)
        for i in range(csr.num_vertices):
            row = list(csr.neighbors_of(i))
            assert row == sorted(row)

    @given(graph_strategy())
    def test_degree_and_edges_match(self, g):
        csr = CSRGraph.from_graph(g)
        for v in g.vertices():
            assert csr.degree_of(csr.id_of(v)) == g.degree(v)
        edges = {(csr.labels[i], csr.labels[j])
                 for i, j in csr.iter_edge_ids()}
        assert edges == set(g.edges())

    @given(graph_strategy())
    def test_has_edge_ids(self, g):
        csr = CSRGraph.from_graph(g)
        for u, v in g.edges():
            assert csr.has_edge_ids(csr.id_of(u), csr.id_of(v))
        for v in list(g.vertices())[:3]:
            i = csr.id_of(v)
            assert not csr.has_edge_ids(i, i)

    @given(graph_strategy())
    def test_common_neighbors_match(self, g):
        csr = CSRGraph.from_graph(g)
        for u, v in list(g.edges())[:10]:
            i, j = csr.id_of(u), csr.id_of(v)
            expected = {csr.id_of(w) for w in g.common_neighbors(u, v)}
            assert set(csr.common_neighbors_ids(i, j)) == expected
            assert csr.common_neighbor_count(i, j) == len(expected)

    @given(graph_strategy())
    def test_triangle_count_matches(self, g):
        assert CSRGraph.from_graph(g).triangle_count() == triangle_count(g)


class TestCSRDecomposition:
    def test_empty(self):
        csr = CSRGraph.from_graph(Graph(vertices=[1, 2]))
        assert csr_truss_decomposition(csr) == {}

    def test_complete_graph(self):
        tau = csr_truss_decomposition_graph(complete_graph(6))
        assert set(tau.values()) == {6}

    def test_paper_h1(self, h1):
        assert csr_truss_decomposition_graph(h1) == truss_decomposition(h1)

    @given(graph_strategy())
    def test_matches_hash_version(self, g):
        assert csr_truss_decomposition_graph(g) == truss_decomposition(g)

    @given(dense_graph_strategy())
    @settings(max_examples=25)
    def test_matches_hash_version_dense(self, g):
        assert csr_truss_decomposition_graph(g) == truss_decomposition(g)
