"""Tests for the core Graph class."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError, VertexNotFoundError, EdgeNotFoundError
from repro.graph.graph import Graph

from tests.conftest import graph_strategy, complete_graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_vertices_and_edges(self):
        g = Graph(edges=[(1, 2)], vertices=[5, 6])
        assert g.num_vertices == 4
        assert g.degree(5) == 0

    def test_duplicate_edges_collapse(self):
        g = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(edges=[(1, 1)])

    def test_arbitrary_hashable_labels(self):
        g = Graph(edges=[("a", ("t", 1)), (("t", 1), frozenset([3]))])
        assert g.num_vertices == 3
        assert g.has_edge("a", ("t", 1))


class TestMutation:
    def test_add_vertex_idempotent(self):
        g = Graph()
        assert g.add_vertex(1) is True
        assert g.add_vertex(1) is False
        assert g.num_vertices == 1

    def test_add_edge_returns_new(self):
        g = Graph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(2, 1) is False

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2)])
        g.remove_edge(1, 2)
        assert g.num_edges == 0
        assert not g.has_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_discard_edge(self):
        g = Graph(edges=[(1, 2)])
        assert g.discard_edge(1, 2) is True
        assert g.discard_edge(1, 2) is False

    def test_remove_vertex(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_vertex(2)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            Graph().remove_vertex(9)

    def test_remove_isolated_vertices(self):
        g = Graph(edges=[(1, 2)], vertices=[3, 4])
        assert g.remove_isolated_vertices() == 2
        assert set(g.vertices()) == {1, 2}


class TestQueries:
    def test_degree_and_neighbors(self, triangle):
        assert triangle.degree(0) == 2
        assert triangle.neighbors(0) == {1, 2}

    def test_neighbors_missing_raises(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.neighbors(99)

    def test_max_degree(self, k4):
        assert k4.max_degree() == 3
        assert Graph().max_degree() == 0

    def test_contains_len_iter(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]

    def test_edges_each_once(self, k4):
        edges = list(k4.edges())
        assert len(edges) == 6
        assert len({frozenset(e) for e in edges}) == 6

    def test_common_neighbors(self, k4):
        assert k4.common_neighbors(0, 1) == {2, 3}

    def test_support(self, k4, path4):
        assert k4.support(0, 1) == 2
        assert path4.support(0, 1) == 0
        with pytest.raises(EdgeNotFoundError):
            path4.support(0, 3)


class TestCanonicalEdges:
    def test_canonical_edge_stable(self):
        g = Graph(edges=[("b", "a")])
        assert g.canonical_edge("a", "b") == g.canonical_edge("b", "a")

    def test_canonical_edge_follows_insertion(self):
        g = Graph()
        g.add_vertex("z")
        g.add_vertex("a")
        g.add_edge("a", "z")
        # "z" was inserted first so it leads the canonical tuple.
        assert g.canonical_edge("a", "z") == ("z", "a")

    def test_canonical_missing_vertex(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(VertexNotFoundError):
            g.canonical_edge(1, 99)

    def test_edges_are_canonical(self):
        g = Graph(edges=[(3, 1), (2, 3), (1, 2)])
        for u, v in g.edges():
            assert g.canonical_edge(u, v) == (u, v)
            assert g.canonical_edge(v, u) == (u, v)


class TestBulkOperations:
    def test_copy_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(0, 3)
        assert triangle.num_vertices == 3
        assert clone.num_vertices == 4

    def test_copy_preserves_canonical(self, figure1):
        clone = figure1.copy()
        for u, v in figure1.edges():
            assert clone.canonical_edge(u, v) == (u, v)

    def test_copy_equal(self, figure1):
        assert figure1.copy() == figure1

    def test_induced_subgraph(self, k4):
        sub = k4.induced_subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_induced_subgraph_ignores_missing(self, triangle):
        sub = triangle.induced_subgraph([0, 1, 42])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_induced_subgraph_canonical_agrees(self, figure1):
        some = list(figure1.vertices())[:8]
        sub = figure1.induced_subgraph(some)
        for u, v in sub.edges():
            assert figure1.canonical_edge(u, v) == (u, v)

    def test_edge_subgraph(self, k4):
        sub = k4.edge_subgraph([(0, 1), (2, 3)])
        assert sub.num_vertices == 4
        assert sub.num_edges == 2

    def test_edge_subgraph_missing_edge_raises(self, path4):
        with pytest.raises(EdgeNotFoundError):
            path4.edge_subgraph([(0, 3)])

    def test_equality(self):
        a = Graph(edges=[(1, 2), (2, 3)])
        b = Graph(edges=[(2, 3), (1, 2)])
        c = Graph(edges=[(1, 2)])
        assert a == b
        assert a != c
        assert a != "not a graph"


class TestDegreeOrder:
    def test_degree_order_is_permutation(self, figure1):
        order = figure1.degree_order()
        assert sorted(order.values()) == list(range(figure1.num_vertices))

    def test_degree_order_sorted_by_degree(self, figure1):
        order = figure1.degree_order()
        ranked = sorted(order, key=order.__getitem__)
        degrees = [figure1.degree(v) for v in ranked]
        assert degrees == sorted(degrees)


class TestProperties:
    @given(graph_strategy())
    def test_handshake_lemma(self, g):
        assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges

    @given(graph_strategy())
    def test_edges_count_matches(self, g):
        assert len(list(g.edges())) == g.num_edges

    @given(graph_strategy())
    def test_copy_equality_property(self, g):
        assert g.copy() == g

    @given(graph_strategy(), st.integers(0, 11))
    def test_induced_subgraph_is_subgraph(self, g, size):
        keep = list(g.vertices())[:size]
        sub = g.induced_subgraph(keep)
        for u, v in sub.edges():
            assert g.has_edge(u, v)
        # Every edge of g between kept vertices is present.
        keep_set = set(keep)
        expected = sum(1 for u, v in g.edges()
                       if u in keep_set and v in keep_set)
        assert sub.num_edges == expected

    def test_complete_graph_edge_count(self):
        for n in range(1, 8):
            assert complete_graph(n).num_edges == n * (n - 1) // 2
