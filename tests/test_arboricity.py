"""Tests for arboricity and degeneracy bounds (Theorem 2 machinery)."""

import math

from hypothesis import given

from repro.graph.graph import Graph
from repro.graph.arboricity import (
    degeneracy,
    arboricity_upper_bound,
    arboricity_lower_bound,
)
from repro.cores.kcore import core_decomposition

from tests.conftest import graph_strategy, complete_graph, cycle_graph


class TestDegeneracy:
    def test_empty(self):
        assert degeneracy(Graph()) == 0

    def test_tree(self):
        g = Graph(edges=[(0, 1), (1, 2), (1, 3), (3, 4)])
        assert degeneracy(g) == 1

    def test_cycle(self):
        assert degeneracy(cycle_graph(8)) == 2

    def test_complete(self):
        assert degeneracy(complete_graph(6)) == 5

    @given(graph_strategy())
    def test_equals_max_core_number(self, g):
        cores = core_decomposition(g)
        assert degeneracy(g) == max(cores.values(), default=0)


class TestArboricityBounds:
    def test_empty(self):
        assert arboricity_upper_bound(Graph()) == 0
        assert arboricity_lower_bound(Graph()) == 0

    def test_tree_bounds(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        # A tree has arboricity exactly 1.
        assert arboricity_lower_bound(g) == 1
        assert arboricity_upper_bound(g) >= 1

    def test_complete_graph_bracket(self):
        # K_n has arboricity ceil(n/2).
        for n in (4, 6, 8):
            g = complete_graph(n)
            true_arboricity = math.ceil(n / 2)
            assert arboricity_lower_bound(g) <= true_arboricity
            assert arboricity_upper_bound(g) >= true_arboricity

    @given(graph_strategy())
    def test_lower_at_most_upper(self, g):
        assert arboricity_lower_bound(g) <= max(arboricity_upper_bound(g),
                                                arboricity_lower_bound(g))
        if g.num_edges > 0:
            assert arboricity_lower_bound(g) <= arboricity_upper_bound(g)

    @given(graph_strategy())
    def test_upper_bound_respects_paper_bound(self, g):
        """ceil-sqrt form of the paper's bound: rho <= min(√m, dmax)."""
        if g.num_edges == 0:
            return
        bound = arboricity_upper_bound(g)
        assert bound <= math.isqrt(g.num_edges) + 1
        assert bound <= g.max_degree()

    def test_k3_needs_the_ceiling(self):
        """K3 has arboricity 2: the paper's ⌊√m⌋ = 1 would be wrong."""
        assert arboricity_upper_bound(complete_graph(3)) == 2
