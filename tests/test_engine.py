"""Tests for the query engine: facade, planner, cache, batching."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.online import online_search
from repro.engine import (
    ENGINE_METHODS,
    EngineConfig,
    PlanDecision,
    QueryEngine,
    QueryPlanner,
    ScoreMapCache,
)


def _ranked(result):
    return [(entry.vertex, entry.score) for entry in result.entries]


class TestPlanner:
    def _planner(self, **overrides):
        return QueryPlanner(EngineConfig(**overrides))

    def test_one_shot_small_graph_goes_online(self):
        decision = self._planner(small_graph_edges=100).choose(
            num_edges=50, queries_seen=0, batch_size=1, index_ready=False)
        assert decision.method == "baseline"

    def test_one_shot_large_graph_goes_bound(self):
        decision = self._planner(small_graph_edges=100).choose(
            num_edges=50_000, queries_seen=0, batch_size=1, index_ready=False)
        assert decision.method == "bound"

    def test_repeated_traffic_builds_index(self):
        decision = self._planner(index_reuse_threshold=2).choose(
            num_edges=50, queries_seen=1, batch_size=1, index_ready=False)
        assert decision.method == "gct"

    def test_batches_build_index(self):
        decision = self._planner().choose(
            num_edges=50, queries_seen=0, batch_size=8, index_ready=False)
        assert decision.method == "gct"

    def test_built_index_always_wins(self):
        decision = self._planner(small_graph_edges=10**9).choose(
            num_edges=5, queries_seen=0, batch_size=1, index_ready=True)
        assert decision.method == "gct"

    def test_decisions_carry_reasons(self):
        decision = self._planner().choose(
            num_edges=5, queries_seen=0, batch_size=1, index_ready=False)
        assert isinstance(decision, PlanDecision) and decision.reason

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            EngineConfig(index_reuse_threshold=0)
        with pytest.raises(InvalidParameterError):
            EngineConfig(score_cache_size=0)
        with pytest.raises(InvalidParameterError):
            EngineConfig(small_graph_edges=-1)


class TestPlannerCalibration:
    """Measured build/query seconds refine the static thresholds."""

    def _calibrated(self, *, build=0.040, online=0.010, index=0.0,
                    online_method="baseline"):
        planner = QueryPlanner(EngineConfig())
        planner.observe_build("gct", build)
        planner.observe_query(online_method, online)
        if index:
            planner.observe_query("gct", index)
        return planner

    def test_uncalibrated_until_both_costs_measured(self):
        planner = QueryPlanner(EngineConfig())
        assert not planner.is_calibrated
        planner.observe_query("baseline", 0.010)
        assert not planner.is_calibrated      # no build measured yet
        planner.observe_build("gct", 0.040)
        assert planner.is_calibrated

    def test_break_even_is_build_over_saving(self):
        # 0.040s build / (0.010s online - 0.002s index) = 5 queries.
        planner = self._calibrated(build=0.040, online=0.010, index=0.002)
        assert planner.break_even_queries() == 5

    def test_decision_boundary_pinned(self):
        """The planner flips to the index exactly at the break-even."""
        planner = self._calibrated(build=0.040, online=0.010)  # BE = 4
        assert planner.break_even_queries() == 4
        below = planner.choose(num_edges=100, queries_seen=2, batch_size=1)
        at = planner.choose(num_edges=100, queries_seen=3, batch_size=1)
        assert below.method == "baseline" and "break-even" in below.reason
        assert at.method == "gct" and "calibrated" in at.reason

    def test_batch_counts_towards_break_even(self):
        planner = self._calibrated(build=0.040, online=0.010)  # BE = 4
        assert planner.choose(num_edges=100, queries_seen=0,
                              batch_size=3).method == "baseline"
        assert planner.choose(num_edges=100, queries_seen=0,
                              batch_size=4).method == "gct"

    def test_measured_bound_beats_measured_baseline(self):
        planner = self._calibrated(build=1.0, online=0.010)
        planner.observe_query("bound", 0.004)
        decision = planner.choose(num_edges=100, queries_seen=0,
                                  batch_size=1)
        assert decision.method == "bound"

    def test_tsd_build_charged_on_the_compress_path(self):
        planner = QueryPlanner(EngineConfig())
        planner.observe_build("tsd", 0.030)
        planner.observe_build("gct", 0.010)
        planner.observe_query("baseline", 0.010)
        assert planner.measured_build_seconds() == pytest.approx(0.040)
        assert planner.break_even_queries() == 4

    def test_never_index_when_marginal_query_not_cheaper(self):
        planner = self._calibrated(build=0.040, online=0.010, index=0.020)
        assert planner.break_even_queries() is None
        decision = planner.choose(num_edges=100, queries_seen=1000,
                                  batch_size=50)
        assert decision.method == "baseline"
        assert "no build pays off" in decision.reason

    def test_built_index_still_always_wins(self):
        planner = self._calibrated(build=0.040, online=0.010)
        assert planner.choose(num_edges=100, queries_seen=0, batch_size=1,
                              index_ready=True).method == "gct"

    def test_engine_feeds_planner_observations(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r(4, 1, method="baseline")
        assert engine.planner.measured_query_seconds("baseline") is not None
        engine.top_r(4, 1, method="gct")   # triggers tsd/gct-free build
        assert engine.planner.measured_build_seconds() is not None
        assert engine.planner.is_calibrated

    def test_calibration_survives_invalidate(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r(4, 1, method="baseline")
        engine.top_r(4, 1, method="gct")
        engine.invalidate()
        assert engine.planner.is_calibrated
        decision = engine.planner.choose(
            num_edges=figure1.num_edges, queries_seen=2, batch_size=1)
        assert "calibrated" in decision.reason


class TestScoreMapCache:
    def test_lru_eviction(self):
        cache = ScoreMapCache(maxsize=2)
        cache.put(2, {"a": 1}, [("a", 1)])
        cache.put(3, {"a": 2}, [("a", 2)])
        assert cache.get(2) is not None      # refresh 2
        cache.put(4, {"a": 3}, [("a", 3)])   # evicts 3
        assert 3 not in cache and 2 in cache and 4 in cache

    def test_hit_miss_accounting(self):
        cache = ScoreMapCache(maxsize=2)
        assert cache.get(5) is None
        cache.put(5, {}, [])
        assert cache.get(5) == ({}, [])
        assert cache.hits == 1 and cache.misses == 1

    def test_maxsize_validation(self):
        with pytest.raises(InvalidParameterError):
            ScoreMapCache(maxsize=0)


class TestEngineAnswers:
    def test_every_method_matches_baseline(self, figure1):
        engine = QueryEngine(figure1)
        for method in ENGINE_METHODS:
            for k, r in ((2, 3), (3, 5), (4, 1)):
                expected = _ranked(online_search(figure1, k, r))
                assert _ranked(engine.top_r(k, r, method=method)) == expected, \
                    (method, k, r)

    def test_auto_on_paper_example(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.top_r(4, 1, method="auto")
        assert result.vertices == ["v"] and result.scores == [3]

    def test_contexts_served_from_index(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.top_r(4, 1, method="gct")
        assert set(result.entries[0].contexts) == {
            frozenset({"x1", "x2", "x3", "x4"}),
            frozenset({"y1", "y2", "y3", "y4"}),
            frozenset({"r1", "r2", "r3", "r4", "r5", "r6"})}

    def test_unknown_method_rejected(self, figure1):
        with pytest.raises(InvalidParameterError):
            QueryEngine(figure1).top_r(3, 1, method="quantum")

    def test_query_validation(self, figure1):
        engine = QueryEngine(figure1)
        with pytest.raises(InvalidParameterError):
            engine.top_r(1, 1)
        with pytest.raises(InvalidParameterError):
            engine.top_r(3, 0)

    def test_r_capped_at_n(self, triangle):
        engine = QueryEngine(triangle)
        assert len(engine.top_r(3, 100, method="gct").entries) == 3


class TestEngineCaching:
    def test_second_query_hits_cache(self, figure1):
        engine = QueryEngine(figure1)
        first = engine.top_r(4, 2, method="gct")
        second = engine.top_r(4, 5, method="gct")
        stats = engine.stats()
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert first.search_space == figure1.num_vertices
        assert second.search_space == 0  # served from the cached ranking

    def test_indexes_built_lazily_and_once(self, figure1):
        engine = QueryEngine(figure1)
        assert engine.stats().index_build_seconds == {}
        index = engine.gct_index
        assert engine.gct_index is index
        assert "gct" in engine.stats().index_build_seconds

    def test_gct_compressed_from_existing_tsd(self, figure1):
        engine = QueryEngine(figure1)
        tsd = engine.tsd_index
        gct = engine.gct_index  # compressed, not rebuilt
        for v in figure1.vertices():
            assert gct.score(v, 4) == tsd.score(v, 4)

    def test_invalidate_drops_state(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r(4, 2, method="gct")
        engine.graph.add_edge("v", "new-vertex")
        engine.invalidate()
        result = engine.top_r(4, 1, method="gct")
        assert result.vertices == ["v"]
        assert engine.stats().cached_thresholds == [4]

    def test_auto_uses_existing_tsd_index(self, figure1):
        """A built TSD index counts as index_ready for the planner —
        GCT compresses from it cheaply, so auto must not rescan."""
        engine = QueryEngine(figure1)
        engine.tsd_index  # force the build
        engine.top_r(4, 1, method="auto")
        assert engine.stats().decisions[-1].method == "gct"

    def test_score_misses_are_counted(self, figure1):
        engine = QueryEngine(figure1)
        engine.score("v", 4)                     # nothing cached: a miss
        assert engine.stats().cache_misses == 1

    def test_score_uses_cheapest_source(self, figure1):
        engine = QueryEngine(figure1)
        assert engine.score("v", 4) == 3        # no index: Algorithm 2
        engine.top_r(4, 1, method="gct")
        assert engine.score("v", 4) == 3        # cached score map
        assert engine.stats().point_lookups == 2

    def test_score_validation(self, figure1):
        engine = QueryEngine(figure1)
        with pytest.raises(InvalidParameterError, match="ghost"):
            engine.score("ghost", 4)
        with pytest.raises(InvalidParameterError):
            engine.score("v", 1)

    def test_cache_hit_without_contexts_builds_no_index(self, figure1):
        """Regression: a score-map cache hit with contexts disabled must
        not build the GCT index — the answer is a slice of the cached
        ranking, no index required."""
        from repro.core.gct import GCTIndex
        engine = QueryEngine(figure1)
        position = {v: i for i, v in enumerate(figure1.vertices())}
        index = GCTIndex.build(figure1)
        score_map = index.scores_for_all(4)
        ranking = sorted(score_map.items(),
                         key=lambda pair: (-pair[1], position[pair[0]]))
        engine._cache.put(4, score_map, ranking)   # seeded, engine cold
        result = engine.top_r(4, 2, method="gct", collect_contexts=False)
        expected = online_search(figure1, 4, 2, collect_contexts=False)
        assert result.vertices == expected.vertices
        assert engine.stats().index_build_seconds == {}   # stayed cold
        # Asking for contexts *does* (lazily) build it.
        engine.top_r(4, 1, method="gct", collect_contexts=True)
        assert "gct" in engine.stats().index_build_seconds


class TestBatching:
    def test_results_in_input_order(self, figure1):
        queries = [(4, 1), (2, 3), (4, 5), (3, 2)]
        engine = QueryEngine(figure1)
        results = engine.top_r_many(queries)
        for (k, r), result in zip(queries, results):
            assert result.k == k
            assert _ranked(result) == _ranked(online_search(figure1, k, r))

    def test_batch_shares_score_maps(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r_many([(4, 1), (4, 2), (4, 3), (3, 1), (3, 2)])
        stats = engine.stats()
        assert stats.cache_misses == 2          # one per distinct k
        assert stats.cache_hits == 3
        assert stats.batches == 1 and stats.queries == 5

    def test_empty_batch(self, figure1):
        engine = QueryEngine(figure1)
        assert engine.top_r_many([]) == []
        assert engine.stats().batches == 0

    def test_batch_validates_before_running(self, figure1):
        engine = QueryEngine(figure1)
        with pytest.raises(InvalidParameterError):
            engine.top_r_many([(4, 1), (1, 1)])
        assert engine.stats().queries == 0

    def test_batch_plans_once(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r_many([(3, 1), (4, 1), (5, 1)])
        assert len(engine.stats().decisions) == 1
        assert engine.stats().decisions[0].method == "gct"


class TestStats:
    def test_summary_mentions_everything(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r(4, 1)
        engine.top_r_many([(3, 2), (3, 4)])
        text = engine.stats().summary()
        assert "queries served" in text
        assert "planner decisions" in text
        assert "cache" in text

    def test_stats_are_snapshots(self, figure1):
        engine = QueryEngine(figure1)
        before = engine.stats()
        engine.top_r(4, 1)
        assert before.queries == 0
        assert engine.stats().queries == 1
