"""Tests for the query engine: facade, planner, cache, batching."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.online import online_search
from repro.engine import (
    ENGINE_METHODS,
    EngineConfig,
    PlanDecision,
    QueryEngine,
    QueryPlanner,
    ScoreMapCache,
)


def _ranked(result):
    return [(entry.vertex, entry.score) for entry in result.entries]


class TestPlanner:
    def _planner(self, **overrides):
        return QueryPlanner(EngineConfig(**overrides))

    def test_one_shot_small_graph_goes_online(self):
        decision = self._planner(small_graph_edges=100).choose(
            num_edges=50, queries_seen=0, batch_size=1, index_ready=False)
        assert decision.method == "baseline"

    def test_one_shot_large_graph_goes_bound(self):
        decision = self._planner(small_graph_edges=100).choose(
            num_edges=50_000, queries_seen=0, batch_size=1, index_ready=False)
        assert decision.method == "bound"

    def test_repeated_traffic_builds_index(self):
        decision = self._planner(index_reuse_threshold=2).choose(
            num_edges=50, queries_seen=1, batch_size=1, index_ready=False)
        assert decision.method == "gct"

    def test_batches_build_index(self):
        decision = self._planner().choose(
            num_edges=50, queries_seen=0, batch_size=8, index_ready=False)
        assert decision.method == "gct"

    def test_built_index_always_wins(self):
        decision = self._planner(small_graph_edges=10**9).choose(
            num_edges=5, queries_seen=0, batch_size=1, index_ready=True)
        assert decision.method == "gct"

    def test_decisions_carry_reasons(self):
        decision = self._planner().choose(
            num_edges=5, queries_seen=0, batch_size=1, index_ready=False)
        assert isinstance(decision, PlanDecision) and decision.reason

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            EngineConfig(index_reuse_threshold=0)
        with pytest.raises(InvalidParameterError):
            EngineConfig(score_cache_size=0)
        with pytest.raises(InvalidParameterError):
            EngineConfig(small_graph_edges=-1)


class TestScoreMapCache:
    def test_lru_eviction(self):
        cache = ScoreMapCache(maxsize=2)
        cache.put(2, {"a": 1}, [("a", 1)])
        cache.put(3, {"a": 2}, [("a", 2)])
        assert cache.get(2) is not None      # refresh 2
        cache.put(4, {"a": 3}, [("a", 3)])   # evicts 3
        assert 3 not in cache and 2 in cache and 4 in cache

    def test_hit_miss_accounting(self):
        cache = ScoreMapCache(maxsize=2)
        assert cache.get(5) is None
        cache.put(5, {}, [])
        assert cache.get(5) == ({}, [])
        assert cache.hits == 1 and cache.misses == 1

    def test_maxsize_validation(self):
        with pytest.raises(InvalidParameterError):
            ScoreMapCache(maxsize=0)


class TestEngineAnswers:
    def test_every_method_matches_baseline(self, figure1):
        engine = QueryEngine(figure1)
        for method in ENGINE_METHODS:
            for k, r in ((2, 3), (3, 5), (4, 1)):
                expected = _ranked(online_search(figure1, k, r))
                assert _ranked(engine.top_r(k, r, method=method)) == expected, \
                    (method, k, r)

    def test_auto_on_paper_example(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.top_r(4, 1, method="auto")
        assert result.vertices == ["v"] and result.scores == [3]

    def test_contexts_served_from_index(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.top_r(4, 1, method="gct")
        assert set(result.entries[0].contexts) == {
            frozenset({"x1", "x2", "x3", "x4"}),
            frozenset({"y1", "y2", "y3", "y4"}),
            frozenset({"r1", "r2", "r3", "r4", "r5", "r6"})}

    def test_unknown_method_rejected(self, figure1):
        with pytest.raises(InvalidParameterError):
            QueryEngine(figure1).top_r(3, 1, method="quantum")

    def test_query_validation(self, figure1):
        engine = QueryEngine(figure1)
        with pytest.raises(InvalidParameterError):
            engine.top_r(1, 1)
        with pytest.raises(InvalidParameterError):
            engine.top_r(3, 0)

    def test_r_capped_at_n(self, triangle):
        engine = QueryEngine(triangle)
        assert len(engine.top_r(3, 100, method="gct").entries) == 3


class TestEngineCaching:
    def test_second_query_hits_cache(self, figure1):
        engine = QueryEngine(figure1)
        first = engine.top_r(4, 2, method="gct")
        second = engine.top_r(4, 5, method="gct")
        stats = engine.stats()
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert first.search_space == figure1.num_vertices
        assert second.search_space == 0  # served from the cached ranking

    def test_indexes_built_lazily_and_once(self, figure1):
        engine = QueryEngine(figure1)
        assert engine.stats().index_build_seconds == {}
        index = engine.gct_index
        assert engine.gct_index is index
        assert "gct" in engine.stats().index_build_seconds

    def test_gct_compressed_from_existing_tsd(self, figure1):
        engine = QueryEngine(figure1)
        tsd = engine.tsd_index
        gct = engine.gct_index  # compressed, not rebuilt
        for v in figure1.vertices():
            assert gct.score(v, 4) == tsd.score(v, 4)

    def test_invalidate_drops_state(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r(4, 2, method="gct")
        engine.graph.add_edge("v", "new-vertex")
        engine.invalidate()
        result = engine.top_r(4, 1, method="gct")
        assert result.vertices == ["v"]
        assert engine.stats().cached_thresholds == [4]

    def test_auto_uses_existing_tsd_index(self, figure1):
        """A built TSD index counts as index_ready for the planner —
        GCT compresses from it cheaply, so auto must not rescan."""
        engine = QueryEngine(figure1)
        engine.tsd_index  # force the build
        engine.top_r(4, 1, method="auto")
        assert engine.stats().decisions[-1].method == "gct"

    def test_score_misses_are_counted(self, figure1):
        engine = QueryEngine(figure1)
        engine.score("v", 4)                     # nothing cached: a miss
        assert engine.stats().cache_misses == 1

    def test_score_uses_cheapest_source(self, figure1):
        engine = QueryEngine(figure1)
        assert engine.score("v", 4) == 3        # no index: Algorithm 2
        engine.top_r(4, 1, method="gct")
        assert engine.score("v", 4) == 3        # cached score map
        assert engine.stats().point_lookups == 2

    def test_score_validation(self, figure1):
        engine = QueryEngine(figure1)
        with pytest.raises(InvalidParameterError, match="ghost"):
            engine.score("ghost", 4)
        with pytest.raises(InvalidParameterError):
            engine.score("v", 1)


class TestBatching:
    def test_results_in_input_order(self, figure1):
        queries = [(4, 1), (2, 3), (4, 5), (3, 2)]
        engine = QueryEngine(figure1)
        results = engine.top_r_many(queries)
        for (k, r), result in zip(queries, results):
            assert result.k == k
            assert _ranked(result) == _ranked(online_search(figure1, k, r))

    def test_batch_shares_score_maps(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r_many([(4, 1), (4, 2), (4, 3), (3, 1), (3, 2)])
        stats = engine.stats()
        assert stats.cache_misses == 2          # one per distinct k
        assert stats.cache_hits == 3
        assert stats.batches == 1 and stats.queries == 5

    def test_empty_batch(self, figure1):
        engine = QueryEngine(figure1)
        assert engine.top_r_many([]) == []
        assert engine.stats().batches == 0

    def test_batch_validates_before_running(self, figure1):
        engine = QueryEngine(figure1)
        with pytest.raises(InvalidParameterError):
            engine.top_r_many([(4, 1), (1, 1)])
        assert engine.stats().queries == 0

    def test_batch_plans_once(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r_many([(3, 1), (4, 1), (5, 1)])
        assert len(engine.stats().decisions) == 1
        assert engine.stats().decisions[0].method == "gct"


class TestStats:
    def test_summary_mentions_everything(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r(4, 1)
        engine.top_r_many([(3, 2), (3, 4)])
        text = engine.stats().summary()
        assert "queries served" in text
        assert "planner decisions" in text
        assert "cache" in text

    def test_stats_are_snapshots(self, figure1):
        engine = QueryEngine(figure1)
        before = engine.stats()
        engine.top_r(4, 1)
        assert before.queries == 0
        assert engine.stats().queries == 1
