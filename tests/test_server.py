"""Tests for the server layer: router, HTTP front, client.

The acceptance contract of the subsystem:

* **Wire fidelity** — an HTTP ``top_r`` answer is byte-identical
  (vertices, scores) to the in-process
  :meth:`DiversityService.top_r` for the same snapshot.
* **Multi-graph routing** — one process serves many named graphs;
  queries and updates route by name and never leak across graphs.
* **Snapshot isolation over the wire** — concurrent HTTP readers
  during a ``POST /updates`` see either the old or the new answer,
  never a torn one.
"""

import json
import random
import threading

import pytest

from repro.errors import (
    InvalidParameterError,
    ServerError,
    StoreError,
    UnknownGraphError,
)
from repro.graph.graph import Graph
from repro.core.online import online_search
from repro.server import DiversityRouter, ServerClient, serve
from repro.service import DiversityService, IndexStore, delete, insert

GRID = [(k, r) for k in (2, 3, 4, 5) for r in (1, 3, 10)]


def _ranked(result):
    return [(entry.vertex, entry.score) for entry in result.entries]


def _random_graph(n, p, seed):
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def _two_cliques() -> Graph:
    """A 5-clique and a disjoint 4-clique (see test_service.py)."""
    g = Graph()
    a = [f"a{i}" for i in range(5)]
    b = [f"b{i}" for i in range(4)]
    for clique in (a, b):
        for i in range(len(clique)):
            for j in range(i + 1, len(clique)):
                g.add_edge(clique[i], clique[j])
    return g


@pytest.fixture
def fleet(tmp_path):
    """A two-graph router behind a live HTTP server, with a client."""
    router = DiversityRouter(store=IndexStore(tmp_path / "store"))
    router.add_graph("cliques", _two_cliques())
    router.add_graph("random", _random_graph(18, 0.35, 11))
    server = serve(router, port=0)
    client = ServerClient(f"http://127.0.0.1:{server.server_port}")
    try:
        yield router, server, client
    finally:
        server.shutdown()
        server.server_close()


# ----------------------------------------------------------------------
# DiversityRouter
# ----------------------------------------------------------------------
class TestDiversityRouter:
    def test_routes_by_name_without_cross_talk(self):
        router = DiversityRouter()
        router.add_graph("cliques", _two_cliques())
        router.add_graph("random", _random_graph(18, 0.35, 11))
        for name, graph in (("cliques", _two_cliques()),
                            ("random", _random_graph(18, 0.35, 11))):
            for k, r in GRID:
                assert _ranked(router.top_r(name, k, r)) == \
                    _ranked(online_search(graph, k, r)), (name, k, r)

    def test_unknown_name_raises(self):
        router = DiversityRouter()
        with pytest.raises(UnknownGraphError):
            router.top_r("ghost", 3, 1)
        with pytest.raises(UnknownGraphError):
            router.remove_graph("ghost")

    def test_bad_and_duplicate_names_rejected(self):
        router = DiversityRouter()
        router.add_graph("ok-name.v1", _two_cliques())
        with pytest.raises(InvalidParameterError):
            router.add_graph("ok-name.v1", _two_cliques())
        for bad in ("", "has/slash", "has space", ".hidden"):
            with pytest.raises(InvalidParameterError):
                router.add_graph(bad, _two_cliques())

    def test_remove_graph_returns_service(self):
        router = DiversityRouter()
        added = router.add_graph("g", _two_cliques())
        assert router.remove_graph("g") is added
        assert router.graphs() == []

    def test_shared_store_warm_starts_every_graph(self, tmp_path):
        g1, g2 = _two_cliques(), _random_graph(18, 0.35, 11)
        first = DiversityRouter(store=IndexStore(tmp_path / "store"))
        first.add_graph("a", g1)
        first.add_graph("b", g2)
        second = DiversityRouter(store=IndexStore(tmp_path / "store"))
        assert second.add_graph("a", g1).warm_started
        assert second.add_graph("b", g2).warm_started

    def test_store_accepts_a_path(self, tmp_path):
        router = DiversityRouter(store=tmp_path / "store")
        assert isinstance(router.store, IndexStore)

    def test_compact_requires_store(self):
        with pytest.raises(StoreError):
            DiversityRouter().compact()

    def test_updates_route_to_one_graph_only(self):
        router = DiversityRouter()
        router.add_graph("a", _two_cliques())
        router.add_graph("b", _two_cliques())
        before = _ranked(router.top_r("b", 3, 9))
        router.apply_updates("a", [delete("b2", "b3")])
        assert router.service("a").snapshot.version == 1
        assert router.service("b").snapshot.version == 0
        assert _ranked(router.top_r("b", 3, 9)) == before

    def test_compact_protects_registered_but_superseded_lineages(
            self, tmp_path):
        """Regression: two names can share one lineage (same graph
        content).  When one of them updates, the shared head becomes
        'superseded' — but the other service still serves it, so
        router.compact() must keep it alive."""
        router = DiversityRouter(store=IndexStore(tmp_path / "store"))
        shared = _two_cliques()
        router.add_graph("a", shared)
        router.add_graph("b", shared.copy())  # same content, same lineage
        assert router.service("b").warm_started
        router.top_r("b", 3, 9)
        router.apply_updates("a", [delete("b2", "b3")])

        report = router.compact()
        assert router.service("b").snapshot.key not in report.removed_keys
        # "b" can still persist its cache and warm-start from its head.
        assert router.persist_scores("b") == [3]
        revived = DiversityService.warm(shared,
                                        IndexStore(tmp_path / "store"))
        assert _ranked(revived.top_r(3, 9)) == \
            _ranked(online_search(shared, 3, 9))

    def test_stats_payload_aggregates(self):
        router = DiversityRouter()
        router.add_graph("a", _two_cliques())
        router.add_graph("b", _two_cliques())
        router.top_r("a", 3, 1)
        router.top_r("b", 3, 1)
        router.score("b", "a0", 3)
        stats = router.stats_payload()
        assert stats["queries_total"] == 3
        assert stats["graphs"]["a"]["queries"] == 1
        assert stats["graphs"]["b"]["queries"] == 2


# ----------------------------------------------------------------------
# HTTP round trips
# ----------------------------------------------------------------------
class TestHTTPRoundTrip:
    def test_top_r_byte_identical_to_in_process(self, fleet):
        """The acceptance bar: wire answers == in-process answers."""
        router, _, client = fleet
        for name in ("cliques", "random"):
            service = router.service(name)
            for k, r in GRID:
                wire = client.top_r(name, k=k, r=r)
                local = service.top_r(k, r, collect_contexts=False)
                assert json.dumps(wire["vertices"]) == \
                    json.dumps(local.vertices), (name, k, r)
                assert json.dumps(wire["scores"]) == \
                    json.dumps(local.scores), (name, k, r)

    def test_top_r_contexts_round_trip(self, fleet):
        router, _, client = fleet
        wire = client.top_r("cliques", k=3, r=2, contexts=True)
        local = router.top_r("cliques", 3, 2)
        for wire_entry, local_entry in zip(wire["entries"], local.entries):
            assert wire_entry["vertex"] == local_entry.vertex
            assert wire_entry["score"] == local_entry.score
            wire_contexts = [frozenset(c) for c in wire_entry["contexts"]]
            assert wire_contexts == [frozenset(c)
                                     for c in local_entry.contexts]

    def test_score_endpoint(self, fleet):
        router, _, client = fleet
        assert client.score("cliques", "a0", 3) == \
            router.score("cliques", "a0", 3)
        assert client.score("random", 0, 3) == router.score("random", 0, 3)

    def test_discovery_endpoints(self, fleet):
        router, _, client = fleet
        assert client.healthz() == {"status": "ok", "graphs": 2}
        listing = client.graphs()
        assert [g["name"] for g in listing] == ["cliques", "random"]
        assert listing[0]["vertices"] == 9
        single = client.graph_stats("random")
        assert single["name"] == "random"
        assert single["edges"] == router.service("random").snapshot.num_edges
        stats = client.stats()
        assert set(stats["graphs"]) == {"cliques", "random"}
        assert stats["store"]["keys"] == 2

    def test_error_statuses(self, fleet):
        _, _, client = fleet
        cases = [
            (404, lambda: client.top_r("ghost", k=3, r=1)),
            (400, lambda: client.top_r("cliques", k=1, r=1)),
            (400, lambda: client.score("cliques", "no-such-vertex", 3)),
            (400, lambda: client.apply_updates("cliques", [("warp", 1, 2)])),
            (404, lambda: client._request("GET", "/no/such/endpoint")),
            (400, lambda: client._request("GET", "/graphs/cliques/top_r",
                                          params={"k": "four"})),
            (400, lambda: client._request("POST", "/graphs/cliques/updates",
                                          body={"updates": "not-a-list"})),
        ]
        for status, call in cases:
            with pytest.raises(ServerError) as excinfo:
                call()
            assert excinfo.value.status == status

    def test_contexts_param_is_a_real_boolean(self, fleet):
        """contexts=false / contexts=no must not enable collection."""
        _, _, client = fleet
        for value, expected in (("1", True), ("true", True),
                                ("false", False), ("no", False),
                                ("0", False)):
            wire = client._request("GET", "/graphs/cliques/top_r",
                                   params={"k": 3, "r": 2,
                                           "contexts": value})
            assert ("entries" in wire) is expected, value

    def test_malformed_content_length_gets_a_400(self, fleet):
        import http.client
        _, server, _ = fleet
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.server_port, timeout=10)
        try:
            connection.putrequest("POST", "/graphs/cliques/updates")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert "Content-Length" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_updates_over_the_wire(self, fleet):
        router, _, client = fleet
        report = client.apply_updates(
            "cliques", [("delete", "b2", "b3"), ("insert", "a0", "b0")])
        assert report["num_updates"] == 2
        assert report["version"] == 2
        expected = _two_cliques()
        expected.remove_edge("b2", "b3")
        expected.add_edge("a0", "b0")
        for k, r in GRID:
            assert client.top_r("cliques", k=k, r=r)["vertices"] == \
                online_search(expected, k, r).vertices, (k, r)

    def test_edgeupdate_objects_accepted_by_client(self, fleet):
        _, _, client = fleet
        report = client.apply_updates("cliques", [delete("b2", "b3"),
                                                  insert("b2", "a0")])
        assert report["num_updates"] == 2

    def test_keep_alive_connection_survives_undrained_post_bodies(
            self, fleet):
        """Regression: a POST whose route never read the body (404'd
        name, /compact with a stray body) left the bytes in the socket,
        desyncing every later request on a keep-alive connection."""
        import http.client
        _, server, _ = fleet
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.server_port, timeout=10)
        try:
            body = json.dumps({"updates": [["insert", 1, 2]]})
            connection.request("POST", "/graphs/ghost/updates", body=body,
                               headers={"Content-Type": "application/json"})
            assert connection.getresponse().read() and True
            # Same socket: the next request must parse cleanly.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_compact_over_the_wire(self, fleet):
        router, _, client = fleet
        client.apply_updates("cliques", [delete("b2", "b3")])
        client.apply_updates("cliques", [insert("b2", "b3")])
        report = client.compact()
        assert report["removed_versions"] >= 2
        assert report["kept_versions"] == len(router.store.keys())

    def test_persist_scores_over_the_wire(self, fleet):
        router, _, client = fleet
        client.top_r("cliques", k=3, r=5)
        client.top_r("cliques", k=4, r=5)
        assert client.persist_scores("cliques") == [3, 4]
        loaded = router.store.load(
            router.service("cliques").snapshot.graph_view)
        assert sorted(loaded.scores) == [3, 4]


# ----------------------------------------------------------------------
# Client keep-alive
# ----------------------------------------------------------------------
class TestClientKeepAlive:
    def test_100_requests_reuse_at_most_two_sockets(self, fleet):
        """Regression: the client used to open a fresh connection per
        request (urllib transport), which made any proxy built on it
        pay a TCP handshake per routed query.  One hundred requests
        from one client must ride at most two sockets (one, plus one
        spare for a stale-socket recovery)."""
        _, server, _ = fleet
        client = ServerClient(f"http://127.0.0.1:{server.server_port}")
        try:
            for i in range(100):
                if i % 3 == 0:
                    assert client.healthz()["status"] == "ok"
                elif i % 3 == 1:
                    client.top_r("cliques", k=3, r=2)
                else:
                    client.score("random", 0, 3)
            assert client.connections_opened <= 2
        finally:
            client.close()

    def test_mixed_posts_and_errors_stay_on_the_pooled_socket(self, fleet):
        """Error statuses and POST bodies must not poison keep-alive:
        the server drains request bodies unconditionally and the client
        must keep reusing the socket across 4xx answers."""
        _, server, _ = fleet
        client = ServerClient(f"http://127.0.0.1:{server.server_port}")
        try:
            for _ in range(10):
                with pytest.raises(ServerError) as excinfo:
                    client.top_r("ghost", k=3, r=1)
                assert excinfo.value.status == 404
                client.apply_updates("cliques", [])
                assert client.healthz()["status"] == "ok"
            assert client.connections_opened <= 2
        finally:
            client.close()

    def test_recovers_when_the_server_closes_idle_sockets(self, fleet):
        """A keep-alive socket the server dropped mid-pool must be
        retried on a fresh connection, invisibly to the caller."""
        _, server, _ = fleet
        client = ServerClient(f"http://127.0.0.1:{server.server_port}")
        try:
            assert client.healthz()["status"] == "ok"
            # Forcibly kill the pooled socket under the client.
            assert client._pool
            client._pool[0].sock.close()
            assert client.healthz()["status"] == "ok"
            assert client.connections_opened == 2
        finally:
            client.close()


# ----------------------------------------------------------------------
# Concurrency over the wire
# ----------------------------------------------------------------------
class TestHTTPConcurrency:
    def test_readers_never_see_torn_answers_during_update(self, fleet):
        """Concurrent HTTP top_r during POST /updates returns either the
        old or the new exact answer — snapshot isolation end to end."""
        router, server, _ = fleet
        base = f"http://127.0.0.1:{server.server_port}"
        old = [tuple(pair) for pair in zip(
            *[router.top_r("cliques", 3, 9).vertices,
              router.top_r("cliques", 3, 9).scores])]
        new_graph = _two_cliques()
        new_graph.remove_edge("b2", "b3")
        expected = online_search(new_graph, 3, 9)
        new = list(zip(expected.vertices, expected.scores))

        answers, errors = [], []

        def reader():
            client = ServerClient(base)
            try:
                for _ in range(25):
                    wire = client.top_r("cliques", k=3, r=9)
                    answers.append(tuple(zip(wire["vertices"],
                                             wire["scores"])))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        writer = ServerClient(base)
        writer.apply_updates("cliques", [("delete", "b2", "b3")])
        for t in threads:
            t.join()
        assert not errors
        assert set(answers) <= {tuple(old), tuple(new)}
        final = writer.top_r("cliques", k=3, r=9)
        assert list(zip(final["vertices"], final["scores"])) == new

    def test_parallel_queries_across_graphs(self, fleet):
        """Many worker threads hammering different graphs all get exact
        answers — the router adds no shared mutable state to reads."""
        router, server, _ = fleet
        base = f"http://127.0.0.1:{server.server_port}"
        expected = {
            name: {(k, r): router.top_r(name, k, r,
                                        collect_contexts=False).vertices
                   for k, r in GRID}
            for name in ("cliques", "random")}
        errors = []

        def reader(name):
            client = ServerClient(base)
            try:
                for k, r in GRID:
                    wire = client.top_r(name, k=k, r=r)
                    assert wire["vertices"] == expected[name][(k, r)]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(name,))
                   for name in ("cliques", "random") for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_requires_a_graph(self, capsys):
        from repro.cli import main
        assert main(["serve", "--http", "0"]) == 1
        assert "--graph" in capsys.readouterr().err

    def test_rejects_bad_graph_spec(self, capsys, tmp_path):
        from repro.cli import main
        assert main(["serve", "--http", "0", "--graph", "nopath"]) == 1
        assert "NAME=PATH" in capsys.readouterr().err

    def test_rejects_negative_workers(self, capsys):
        from repro.cli import main
        assert main(["serve", "--http", "0", "--graph", "g=g.txt",
                     "--workers", "-1"]) == 1
        assert "--workers" in capsys.readouterr().err
