"""Oracles for property tests: networkx adapters and brute-force references."""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from repro.graph.graph import Graph, Vertex, Edge


def to_networkx(graph: Graph) -> "nx.Graph":
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


def nx_ktruss_edges(graph: Graph, k: int) -> Set[frozenset]:
    """Edge set of the k-truss according to networkx (same convention)."""
    sub = nx.k_truss(to_networkx(graph), k)
    return {frozenset(e) for e in sub.edges()}


def brute_trussness(graph: Graph) -> Dict[Edge, int]:
    """Edge trussness from the definition: iterate k-truss peeling per k.

    Independent of the library's bucket implementation: for each k,
    repeatedly delete edges with support < k - 2; an edge's trussness is
    the largest k whose truss still contains it.
    """
    result: Dict[Edge, int] = {}
    k = 2
    remaining = {frozenset((u, v)) for u, v in graph.edges()}
    canonical = {frozenset((u, v)): graph.canonical_edge(u, v)
                 for u, v in graph.edges()}
    while remaining:
        # Compute the (k+1)-truss of the current graph.
        edges = set(remaining)
        changed = True
        while changed:
            changed = False
            adjacency: Dict[Vertex, Set[Vertex]] = {}
            for e in edges:
                u, v = tuple(e)
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
            for e in list(edges):
                u, v = tuple(e)
                support = len(adjacency[u] & adjacency[v])
                if support < (k + 1) - 2:
                    edges.discard(e)
                    changed = True
        # Everything dropped from `remaining` to `edges` has trussness k.
        for e in remaining - edges:
            result[canonical[e]] = k
        remaining = edges
        k += 1
    return result


def brute_structural_diversity(graph: Graph, v: Vertex, k: int) -> int:
    """score(v) via networkx: ego subgraph, k_truss, component count."""
    g = to_networkx(graph)
    ego = g.subgraph(g.neighbors(v)).copy()
    truss = nx.k_truss(ego, k)
    truss.remove_nodes_from([n for n in list(truss) if truss.degree(n) == 0])
    if truss.number_of_nodes() == 0:
        return 0
    return nx.number_connected_components(truss)


def brute_social_contexts(graph: Graph, v: Vertex, k: int) -> Set[frozenset]:
    """SC(v) via networkx, as a set of frozensets."""
    g = to_networkx(graph)
    ego = g.subgraph(g.neighbors(v)).copy()
    truss = nx.k_truss(ego, k)
    truss.remove_nodes_from([n for n in list(truss) if truss.degree(n) == 0])
    return {frozenset(c) for c in nx.connected_components(truss)}


def nx_core_numbers(graph: Graph) -> Dict[Vertex, int]:
    return nx.core_number(to_networkx(graph))


def nx_triangle_count(graph: Graph) -> int:
    return sum(nx.triangles(to_networkx(graph)).values()) // 3
