"""Tests for k-truss community search (TCP-index, Equi-Truss, reference)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.community.reference import truss_communities
from repro.community.tcp import TCPIndex
from repro.community.equitruss import EquiTrussIndex

from tests.conftest import dense_graph_strategy, complete_graph


def _as_sets(communities):
    return {(c.vertices, c.edges and frozenset(frozenset(e) for e in c.edges))
            for c in communities}


class TestReference:
    def test_invalid_k(self, triangle):
        with pytest.raises(InvalidParameterError):
            truss_communities(triangle, 1)

    def test_triangle_is_community(self, triangle):
        comms = truss_communities(triangle, 3)
        assert len(comms) == 1
        assert comms[0].vertices == frozenset({0, 1, 2})

    def test_query_filter(self, figure18):
        all_comms = truss_communities(figure18, 4)
        q1_comms = truss_communities(figure18, 4, query="q1")
        assert len(q1_comms) <= len(all_comms)
        assert all("q1" in c.vertices for c in q1_comms)

    def test_two_triangles_sharing_vertex_not_connected(self):
        """Triangle connectivity requires shared *edges in triangles*,
        not shared vertices: bowtie triangles are separate communities."""
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        comms = truss_communities(g, 3)
        assert len(comms) == 2

    def test_k_truss_community_vertices_match_edges(self, medium_graph):
        for c in truss_communities(medium_graph, 4):
            endpoint_union = ({u for u, _ in c.edges}
                              | {v for _, v in c.edges})
            assert c.vertices == frozenset(endpoint_union)


class TestTCPIndex:
    def test_figure18_forest_weights(self, figure18):
        """Figure 18(b): all five TCP_q1 forest edges carry weight 4."""
        index = TCPIndex.build(figure18)
        weights = [w for _, _, w in index.forest("q1")]
        assert sorted(weights) == [4, 4, 4, 4, 4]

    def test_figure18_vs_tsd_weights(self, figure18):
        """The Section 8.2 distinction: TCP uses global trussness (all
        4s), TSD uses ego trussness ((q2,q3) drops to 2)."""
        from repro.core.tsd import TSDIndex
        tsd = TSDIndex.build(figure18)
        tsd_weights = sorted(w for _, _, w in tsd.forest("q1"))
        assert tsd_weights == [2, 3, 3, 3, 3]

    def test_edge_trussness_accessor(self, figure18):
        index = TCPIndex.build(figure18)
        assert index.edge_trussness("q2", "q3") == 4

    def test_invalid_k(self, triangle):
        index = TCPIndex.build(triangle)
        with pytest.raises(InvalidParameterError):
            index.communities(0, 1)

    def test_k4_whole_community(self):
        g = complete_graph(5)
        index = TCPIndex.build(g)
        comms = index.communities(0, 5)
        assert len(comms) == 1
        assert comms[0].vertices == frozenset(range(5))

    @given(dense_graph_strategy(), st.sampled_from([3, 4]))
    @settings(max_examples=20)
    def test_matches_reference(self, g, k):
        index = TCPIndex.build(g)
        for q in list(g.vertices())[:4]:
            expected = {c.vertices: c.edges
                        for c in truss_communities(g, k, query=q)}
            got = {c.vertices: c.edges for c in index.communities(q, k)}
            assert got == expected


class TestEquiTruss:
    def test_triangle_summary(self, triangle):
        index = EquiTrussIndex.build(triangle)
        assert index.num_supernodes == 1
        assert index.num_superedges == 0
        assert index.supernodes[0].trussness == 3
        assert index.supernodes[0].vertices == frozenset({0, 1, 2})

    def test_supernode_of(self, triangle):
        index = EquiTrussIndex.build(triangle)
        assert index.supernode_of(0, 1) == index.supernode_of(1, 2)

    def test_h1_structure(self, h1):
        index = EquiTrussIndex.build(h1)
        taus = sorted(sn.trussness for sn in index.supernodes)
        # Two 4-level classes (x-clique and y-clique edges are not
        # 4-triangle-connected to each other) and one 3-level class
        # holding both bridges (joined by the triangle x2-x4-y1).
        assert taus == [3, 4, 4]

    def test_h1_triangle_connectivity_is_strict(self, h1):
        """Sharing the vertex y1 is not enough: no triangle with all
        edges of trussness >= 3 spans a bridge and a y-clique edge, so
        at k=3 the y-clique is a separate community from x-clique+bridges."""
        index = EquiTrussIndex.build(h1)
        comms = index.communities("x1", 3)
        assert len(comms) == 1
        assert comms[0].vertices == frozenset({"x1", "x2", "x3", "x4", "y1"})

    def test_invalid_k(self, triangle):
        index = EquiTrussIndex.build(triangle)
        with pytest.raises(InvalidParameterError):
            index.communities(0, 0)

    @given(dense_graph_strategy(), st.sampled_from([3, 4]))
    @settings(max_examples=20)
    def test_matches_reference(self, g, k):
        index = EquiTrussIndex.build(g)
        for q in list(g.vertices())[:4]:
            expected = {c.vertices: c.edges
                        for c in truss_communities(g, k, query=q)}
            got = {c.vertices: c.edges for c in index.communities(q, k)}
            assert got == expected

    def test_summary_is_compressed(self, medium_graph):
        index = EquiTrussIndex.build(medium_graph)
        assert index.num_supernodes <= medium_graph.num_edges
