"""Bitmap truss decomposition must agree exactly with the hash version."""

from hypothesis import given

from repro.graph.graph import Graph
from repro.truss.decomposition import truss_decomposition
from repro.truss.bitmap_decomposition import (
    bitmap_truss_decomposition,
    bitmap_truss_decomposition_graph,
)

from tests.conftest import graph_strategy, dense_graph_strategy, complete_graph


class TestBitmapDecomposition:
    def test_empty(self):
        assert bitmap_truss_decomposition([], []) == {}
        assert bitmap_truss_decomposition("abc", []) == {}

    def test_triangle(self):
        tau = bitmap_truss_decomposition(
            "abc", [("a", "b"), ("b", "c"), ("a", "c")])
        assert set(tau.values()) == {3}

    def test_keys_preserve_input_orientation(self):
        tau = bitmap_truss_decomposition("ab", [("b", "a")])
        assert list(tau) == [("b", "a")]

    def test_complete_graph(self):
        g = complete_graph(6)
        tau = bitmap_truss_decomposition_graph(g)
        assert set(tau.values()) == {6}

    def test_paper_h1(self, h1):
        hash_tau = truss_decomposition(h1)
        bitmap_tau = bitmap_truss_decomposition_graph(h1)
        assert bitmap_tau == hash_tau

    @given(graph_strategy())
    def test_matches_hash_version(self, g):
        assert bitmap_truss_decomposition_graph(g) == truss_decomposition(g)

    @given(dense_graph_strategy())
    def test_matches_hash_version_dense(self, g):
        assert bitmap_truss_decomposition_graph(g) == truss_decomposition(g)

    def test_large_universe_beyond_machine_word(self):
        """Bitmaps are Python ints: vertex ids past 64 must still work."""
        members = [f"v{i}" for i in range(70)]
        edges = [(members[i], members[j])
                 for i in range(66, 70) for j in range(i + 1, 70)]
        tau = bitmap_truss_decomposition(members, edges)
        assert set(tau.values()) == {4}  # a K4 at the high bit positions
