"""Tests for BFS and connected-component primitives."""

from hypothesis import given

from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_order,
    bfs_layers,
    connected_components,
    components_of_edges,
    count_components_of_edges,
    is_connected,
    largest_component,
)

from tests.conftest import graph_strategy, cycle_graph


class TestBFS:
    def test_bfs_order_starts_at_source(self, path4):
        assert bfs_order(path4, 0)[0] == 0

    def test_bfs_reaches_component(self, path4):
        assert set(bfs_order(path4, 0)) == {0, 1, 2, 3}

    def test_bfs_layers_distances(self, path4):
        assert bfs_layers(path4, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_does_not_cross_components(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        assert set(bfs_order(g, 0)) == {0, 1}


class TestConnectedComponents:
    def test_single_component(self, triangle):
        assert connected_components(triangle) == [{0, 1, 2}]

    def test_multiple_components(self):
        g = Graph(edges=[(0, 1), (2, 3)], vertices=[9])
        comps = {frozenset(c) for c in connected_components(g)}
        assert comps == {frozenset({0, 1}), frozenset({2, 3}), frozenset({9})}

    def test_restricted_components(self, k4):
        comps = connected_components(k4, vertices=[0, 1])
        assert comps == [{0, 1}]

    def test_restriction_can_split(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        comps = {frozenset(c) for c in connected_components(g, vertices=[0, 2])}
        assert comps == {frozenset({0}), frozenset({2})}

    def test_restriction_ignores_missing(self, triangle):
        comps = connected_components(triangle, vertices=[0, 77])
        assert comps == [{0}]

    @given(graph_strategy())
    def test_components_partition_vertices(self, g):
        comps = connected_components(g)
        seen = [v for c in comps for v in c]
        assert sorted(map(repr, seen)) == sorted(map(repr, g.vertices()))


class TestEdgeComponents:
    def test_components_of_edges(self):
        comps = components_of_edges([(0, 1), (1, 2), (5, 6)])
        assert {frozenset(c) for c in comps} == {
            frozenset({0, 1, 2}), frozenset({5, 6})}

    def test_components_of_edges_empty(self):
        assert components_of_edges([]) == []

    def test_count_matches_materialised(self):
        edges = [(0, 1), (1, 2), (5, 6), (7, 8), (8, 9), (9, 7)]
        assert count_components_of_edges(edges) == len(components_of_edges(edges))

    @given(graph_strategy())
    def test_count_components_property(self, g):
        edges = list(g.edges())
        assert count_components_of_edges(edges) == len(components_of_edges(edges))

    def test_isolated_vertices_not_counted(self):
        # Edge components only see edge endpoints — this is exactly the
        # social-context semantics (contexts always contain edges).
        g = Graph(edges=[(0, 1)], vertices=[5])
        assert count_components_of_edges(g.edges()) == 1


class TestConnectivity:
    def test_is_connected(self, triangle, path4):
        assert is_connected(triangle)
        assert is_connected(path4)
        assert is_connected(Graph())

    def test_not_connected(self):
        assert not is_connected(Graph(edges=[(0, 1), (2, 3)]))

    def test_largest_component(self):
        g = Graph(edges=[(0, 1), (1, 2), (5, 6)])
        assert largest_component(g) == {0, 1, 2}
        assert largest_component(Graph()) == set()

    def test_cycle_connected(self):
        assert is_connected(cycle_graph(6))
