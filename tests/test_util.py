"""Tests for utility modules: DisjointSet and StopWatch."""

import time

from hypothesis import given
from hypothesis import strategies as st

from repro.util.dsu import DisjointSet
from repro.util.timing import StopWatch, time_call


class TestDisjointSet:
    def test_empty(self):
        dsu = DisjointSet()
        assert len(dsu) == 0
        assert dsu.num_components == 0

    def test_add(self):
        dsu = DisjointSet()
        assert dsu.add(1) is True
        assert dsu.add(1) is False
        assert dsu.num_components == 1

    def test_union_and_connected(self):
        dsu = DisjointSet([1, 2, 3])
        assert dsu.union(1, 2) is True
        assert dsu.union(1, 2) is False
        assert dsu.connected(1, 2)
        assert not dsu.connected(1, 3)
        assert dsu.num_components == 2

    def test_find_adds_lazily(self):
        dsu = DisjointSet()
        assert dsu.find("x") == "x"
        assert "x" in dsu

    def test_connected_unknown_items(self):
        dsu = DisjointSet([1])
        assert not dsu.connected(1, 42)

    def test_component_size(self):
        dsu = DisjointSet(range(5))
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.component_size(2) == 3
        assert dsu.component_size(4) == 1

    def test_components(self):
        dsu = DisjointSet(range(4))
        dsu.union(0, 1)
        comps = {frozenset(c) for c in dsu.components()}
        assert comps == {frozenset({0, 1}), frozenset({2}), frozenset({3})}

    def test_iter_roots_one_per_component(self):
        dsu = DisjointSet(range(6))
        dsu.union(0, 1)
        dsu.union(2, 3)
        assert len(list(dsu.iter_roots())) == 4

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15))))
    def test_transitive_closure(self, pairs):
        dsu = DisjointSet(range(16))
        adjacency = {i: set() for i in range(16)}
        for a, b in pairs:
            dsu.union(a, b)
            adjacency[a].add(b)
            adjacency[b].add(a)
        # BFS reference connectivity.
        import collections
        for start in range(0, 16, 5):
            seen = {start}
            queue = collections.deque([start])
            while queue:
                x = queue.popleft()
                for y in adjacency[x]:
                    if y not in seen:
                        seen.add(y)
                        queue.append(y)
            for other in range(16):
                assert dsu.connected(start, other) == (other in seen)

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15))))
    def test_component_count_invariant(self, pairs):
        dsu = DisjointSet(range(16))
        merges = 0
        for a, b in pairs:
            if dsu.union(a, b):
                merges += 1
        assert dsu.num_components == 16 - merges


class TestStopWatch:
    def test_accumulates(self):
        watch = StopWatch()
        with watch.phase("a"):
            pass
        with watch.phase("a"):
            pass
        assert watch.seconds("a") >= 0.0
        assert watch.seconds("missing") == 0.0

    def test_manual_add(self):
        watch = StopWatch()
        watch.add("x", 1.5)
        watch.add("x", 0.5)
        assert watch.seconds("x") == 2.0
        assert watch.total == 2.0
        assert watch.totals() == {"x": 2.0}

    def test_phase_records_on_exception(self):
        watch = StopWatch()
        try:
            with watch.phase("risky"):
                raise ValueError
        except ValueError:
            pass
        assert watch.seconds("risky") >= 0.0
        assert "risky" in watch.totals()

    def test_time_call(self):
        result, seconds = time_call(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0
