"""Tests for the TSD-index (Section 5): structure, queries, persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexFormatError, InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.egonet import ego_network
from repro.core.diversity import structural_diversity, social_contexts, ego_truss_weights
from repro.core.tsd import TSDIndex, maximum_spanning_forest
from repro.util.dsu import DisjointSet

from tests.conftest import dense_graph_strategy, graph_strategy


class TestMaximumSpanningForest:
    def test_empty(self):
        assert maximum_spanning_forest([], []) == []

    def test_picks_heaviest(self):
        forest = maximum_spanning_forest(
            "ab", [(("a", "b"), 1), (("a", "b"), 9)])
        # Simple graphs never hand duplicates in, but Kruskal keeps the
        # heaviest first regardless.
        assert forest[0][2] == 9

    def test_forest_has_no_cycle(self):
        edges = [(("a", "b"), 3), (("b", "c"), 3), (("a", "c"), 3)]
        forest = maximum_spanning_forest("abc", edges)
        assert len(forest) == 2

    def test_weight_descending_output(self):
        edges = [(("a", "b"), 2), (("c", "d"), 5), (("b", "c"), 3)]
        forest = maximum_spanning_forest("abcd", edges)
        weights = [w for _, _, w in forest]
        assert weights == sorted(weights, reverse=True)

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_spans_components(self, g):
        weighted = [((u, v), 1) for u, v in g.edges()]
        forest = maximum_spanning_forest(g.vertices(), weighted)
        from repro.graph.traversal import connected_components
        n_components = len(connected_components(g))
        assert len(forest) == g.num_vertices - n_components

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_bottleneck_property(self, g):
        """Max spanning forest preserves threshold connectivity: at any
        threshold k, forest edges >= k connect u,v iff graph edges >= k
        do.  This is the correctness core of the whole index."""
        weights = {e: (hash(e) % 5) + 2 for e in g.edges()}
        forest = maximum_spanning_forest(g.vertices(), weights.items())
        for k in range(2, 8):
            graph_dsu = DisjointSet(g.vertices())
            for (u, v), w in weights.items():
                if w >= k:
                    graph_dsu.union(u, v)
            forest_dsu = DisjointSet(g.vertices())
            for u, v, w in forest:
                if w >= k:
                    forest_dsu.union(u, v)
            for u, v in g.edges():
                assert (graph_dsu.connected(u, v)
                        == forest_dsu.connected(u, v))


class TestTSDStructure:
    def test_figure6_forest_of_v(self, figure1):
        """Figure 6: TSD_v has 11 weight-4 edges and 1 weight-3 edge."""
        index = TSDIndex.build(figure1)
        weights = sorted((w for _, _, w in index.forest("v")), reverse=True)
        assert weights == [4] * 11 + [3]

    def test_forest_edges_are_ego_edges(self, figure1):
        index = TSDIndex.build(figure1)
        for v in figure1.vertices():
            ego = ego_network(figure1, v)
            for a, b, _ in index.forest(v):
                assert ego.has_edge(a, b)

    def test_forest_weights_are_ego_trussness(self, figure1):
        index = TSDIndex.build(figure1)
        for v in list(figure1.vertices())[:6]:
            weights = ego_truss_weights(figure1, v)
            by_pair = {frozenset(e): t for e, t in weights.items()}
            for a, b, w in index.forest(v):
                assert by_pair[frozenset((a, b))] == w

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_index_size_bounded_by_theorem3(self, g):
        """Forest edges per vertex < n_v, so total is O(sum deg) = O(m)."""
        index = TSDIndex.build(g)
        for v in g.vertices():
            assert len(index.forest(v)) <= max(0, g.degree(v) - 1)
        assert index.num_forest_edges <= 2 * g.num_edges

    def test_build_profile_recorded(self, figure1):
        index = TSDIndex.build(figure1)
        profile = index.build_profile
        assert profile.total_seconds >= 0.0
        assert profile.extraction_seconds >= 0.0


class TestTSDQueries:
    def test_score_paper_example(self, figure1):
        index = TSDIndex.build(figure1)
        assert index.score("v", 4) == 3
        assert index.score("v", 3) == 2
        assert index.score("v", 5) == 0

    def test_invalid_k(self, figure1):
        index = TSDIndex.build(figure1)
        with pytest.raises(InvalidParameterError):
            index.score("v", 1)
        with pytest.raises(InvalidParameterError):
            index.top_r(3, 0)

    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4, 5]))
    @settings(max_examples=25)
    def test_score_matches_algorithm2(self, g, k):
        index = TSDIndex.build(g)
        for v in list(g.vertices())[:6]:
            assert index.score(v, k) == structural_diversity(g, v, k)

    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4]))
    @settings(max_examples=20)
    def test_contexts_match_algorithm2(self, g, k):
        index = TSDIndex.build(g)
        for v in list(g.vertices())[:5]:
            ours = {frozenset(c) for c in index.contexts(v, k)}
            direct = {frozenset(c) for c in social_contexts(g, v, k)}
            assert ours == direct

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_score_profile_consistent(self, g):
        index = TSDIndex.build(g)
        for v in list(g.vertices())[:5]:
            profile = index.score_profile(v)
            for k in range(2, 9):
                assert profile.get(k, 0) == index.score(v, k)


class TestPersistence:
    def test_round_trip(self, figure1, tmp_path):
        index = TSDIndex.build(figure1)
        path = tmp_path / "index.json"
        index.save(path)
        loaded = TSDIndex.load(path)
        assert loaded.vertices == index.vertices
        for v in figure1.vertices():
            assert loaded.forest(v) == index.forest(v)
        assert loaded.score("v", 4) == 3

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(IndexFormatError):
            TSDIndex.load(path)

    def test_wrong_version_rejected(self, tmp_path, figure1):
        import json
        path = tmp_path / "index.json"
        TSDIndex.build(figure1).save(path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(IndexFormatError):
            TSDIndex.load(path)

    def test_size_accounting(self, figure1):
        index = TSDIndex.build(figure1)
        assert index.payload_slots() == 3 * index.num_forest_edges + 17
        assert index.approx_size_bytes() == 8 * index.payload_slots()

    def test_build_profile_survives_round_trip(self, figure1, tmp_path):
        """Regression: load used to silently drop the build profile."""
        index = TSDIndex.build(figure1)
        path = tmp_path / "index.json"
        index.save(path)
        loaded = TSDIndex.load(path)
        assert loaded.build_profile == index.build_profile
        assert loaded.build_profile.total_seconds >= 0.0

    def test_profile_free_index_round_trips(self, figure1, tmp_path):
        index = TSDIndex.build(figure1)
        index.build_profile = None
        path = tmp_path / "index.json"
        index.save(path)
        assert TSDIndex.load(path).build_profile is None


class TestUnknownVertexErrors:
    def test_queries_raise_typed_error_naming_vertex(self, figure1):
        """Regression: un-indexed vertices used to raise bare KeyError."""
        index = TSDIndex.build(figure1)
        for call in (lambda: index.score("ghost", 3),
                     lambda: index.upper_bound("ghost", 3),
                     lambda: index.contexts("ghost", 3),
                     lambda: index.forest("ghost"),
                     lambda: index.score_profile("ghost")):
            with pytest.raises(InvalidParameterError, match="ghost"):
                call()


class TestBoundOrderMemo:
    """top_r memoises the per-``k`` (bounds, visit order) pair."""

    def test_repeated_queries_identical(self, figure1):
        index = TSDIndex.build(figure1)
        first = index.top_r(4, 3)
        again = index.top_r(4, 3)  # served from the memoised order
        assert again.vertices == first.vertices
        assert again.scores == first.scores

    def test_memo_populated_per_k(self, figure1):
        index = TSDIndex.build(figure1)
        assert index._bound_cache == {}
        index.top_r(4, 2)
        index.top_r(3, 2)
        assert sorted(index._bound_cache) == [3, 4]

    def test_memo_clamped_beyond_max_weight(self, figure1):
        # Thresholds past the max forest weight all share one all-zero
        # entry — a k sweep must not grow the memo without bound.
        index = TSDIndex.build(figure1)
        ceiling = index._max_forest_weight() + 1
        for k in range(ceiling, ceiling + 50):
            result = index.top_r(k, 2)
            assert result.scores == [0, 0]
        assert list(index._bound_cache) == [ceiling]

    def test_replace_forest_invalidates(self, triangle):
        index = TSDIndex.build(triangle)
        before = index.top_r(2, 3)
        assert before.scores[0] == 1
        # A heavier forest for vertex 0 must change both its score and
        # its bound ordering — a stale memo would keep the old answer.
        # (4 weight-5 edges: a real 5-truss context spans >= 5 vertices,
        # and the Section 5.2 bound assumes forests respect that.)
        index.replace_forest(0, [(1, 2, 5), (1, 99, 5), (2, 98, 5),
                                 (98, 97, 5)])
        assert index._bound_cache == {}
        after = index.top_r(5, 1)
        assert after.vertices == [0]
        assert after.scores == [1]

    def test_drop_vertex_invalidates(self, triangle):
        index = TSDIndex.build(triangle)
        full = index.top_r(3, 3)
        assert len(full.vertices) == 3
        index.drop_vertex(full.vertices[0])
        shrunk = index.top_r(3, 3)
        assert full.vertices[0] not in shrunk.vertices

    def test_new_vertex_enters_zero_fill(self, triangle):
        index = TSDIndex.build(triangle)
        index.top_r(3, 3)  # warm the memo and position map
        index.replace_forest(99, [])
        ranked = index.top_r(3, 4)
        assert 99 in ranked.vertices  # zero-fill sees the newcomer


class TestMutationHooks:
    def test_replace_forest_new_vertex(self, triangle):
        index = TSDIndex.build(triangle)
        index.replace_forest(99, [(1, 2, 4)])
        assert 99 in index
        assert index.score(99, 4) == 1

    def test_replace_forest_sorts_descending(self, triangle):
        index = TSDIndex.build(triangle)
        index.replace_forest(0, [(1, 2, 2), (2, 3, 5)])
        weights = [w for _, _, w in index.forest(0)]
        assert weights == [5, 2]

    def test_drop_vertex(self, triangle):
        index = TSDIndex.build(triangle)
        index.drop_vertex(0)
        assert 0 not in index
        assert 0 not in index.vertices
        index.drop_vertex(0)  # idempotent
