"""Tests for the ``repro lint`` invariant checker.

Each rule gets a bad fixture it must fire on and a good fixture it
must stay silent on; the pragma mechanism, the reporters, the runner
and the CLI wiring each get their own checks; and the suite ends with
the self-run — the real repository must lint clean, so reverting any
of the violations this PR fixed (e.g. the unsorted profile-union walk
in ``service/updates.py``) fails the suite, not just ``make lint``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    Violation,
    all_rules,
    collect_sources,
    default_paths,
    lint_paths,
    lint_sources,
    parse_pragma,
    render_json,
    render_text,
    report_payload,
)
from repro.lint import main as lint_main


def fired(report):
    """The distinct rule ids a report contains."""
    return sorted({violation.rule for violation in report.violations})


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_parse_single_rule_with_justification(self):
        pragma = parse_pragma(
            "x = 1  # repro-lint: disable=RL001 -- seeded", line=7)
        assert pragma.line == 7
        assert set(pragma.rules) == {"RL001"}
        assert pragma.justification == "seeded"

    def test_parse_multiple_rules(self):
        pragma = parse_pragma("# repro-lint: disable=RL001,RL003")
        assert set(pragma.rules) == {"RL001", "RL003"}
        assert pragma.justification == ""

    def test_plain_comment_is_not_a_pragma(self):
        assert parse_pragma("x = 1  # a plain comment") is None

    def test_pragma_suppresses_violation_on_its_line(self):
        report = lint_sources({"service/x.py": (
            "def merge(a, b):\n"
            "    return [k for k in set(a) | set(b)]"
            "  # repro-lint: disable=RL001 -- order-insensitive count\n")})
        assert report.clean

    def test_unused_pragma_is_flagged(self):
        report = lint_sources({"service/x.py": (
            "def add(a, b):\n"
            "    return a + b  # repro-lint: disable=RL001 -- stale\n")})
        assert fired(report) == [UNUSED_SUPPRESSION]
        assert "RL001 did not fire" in report.violations[0].message

    def test_unused_suppression_is_not_suppressible(self):
        report = lint_sources({"service/x.py": (
            "x = 1  # repro-lint: disable=RL000 -- nice try\n")})
        assert fired(report) == [UNUSED_SUPPRESSION]

    def test_pragma_in_docstring_does_not_suppress(self):
        report = lint_sources({"service/x.py": (
            'def merge(a, b):\n'
            '    """# repro-lint: disable=RL001 -- just docs"""\n'
            '    return [k for k in set(a) | set(b)]\n')})
        assert fired(report) == ["RL001"]

    def test_parse_error_reports_rl999(self):
        report = lint_sources({"service/x.py": "def broken(:\n"})
        assert fired(report) == [PARSE_ERROR]


# ----------------------------------------------------------------------
# RL001 — determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_fires_on_set_union_for_loop(self):
        # The exact service/updates.py idiom this PR fixed: reverting
        # `sorted(...)` there must make the self-run test fail.
        report = lint_sources({"service/updates.py": (
            "def invalidate(old_profile, new_profile):\n"
            "    out = []\n"
            "    for k in set(old_profile) | set(new_profile):\n"
            "        out.append(k)\n"
            "    return out\n")})
        assert fired(report) == ["RL001"]

    def test_sorted_union_is_clean(self):
        report = lint_sources({"service/updates.py": (
            "def invalidate(old_profile, new_profile):\n"
            "    out = []\n"
            "    for k in sorted(set(old_profile) | set(new_profile)):\n"
            "        out.append(k)\n"
            "    return out\n")})
        assert report.clean

    def test_fires_on_comprehension_over_set_literal(self):
        report = lint_sources({"core/x.py": (
            "def f(a, b, c):\n"
            "    return [v for v in {a, b, c}]\n")})
        assert fired(report) == ["RL001"]

    def test_fires_on_list_of_set(self):
        report = lint_sources({"build/x.py": (
            "def f(xs):\n"
            "    return list(set(xs))\n")})
        assert fired(report) == ["RL001"]

    def test_fires_on_hash_time_and_unseeded_random(self):
        report = lint_sources({"truss/x.py": (
            "import random\n"
            "import time\n"
            "def f(x):\n"
            "    return hash(x), time.time(), random.random()\n")})
        assert len(report.violations) == 3
        assert fired(report) == ["RL001"]

    def test_seeded_random_instance_is_clean(self):
        report = lint_sources({"build/x.py": (
            "import random\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n")})
        assert report.clean

    def test_out_of_scope_file_is_clean(self):
        report = lint_sources({"viz.py": (
            "def f(xs):\n"
            "    return list(set(xs))\n")})
        assert report.clean


# ----------------------------------------------------------------------
# RL002 — lock discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    def test_fires_on_unlocked_manifest_write(self):
        report = lint_sources({"service/store.py": (
            "class IndexStore:\n"
            "    def refresh(self):\n"
            "        self._manifest = self._read_manifest()\n")})
        assert fired(report) == ["RL002"]

    def test_write_under_lock_scope_is_clean(self):
        report = lint_sources({"service/store.py": (
            "class IndexStore:\n"
            "    def put(self, payload):\n"
            "        with self._locked():\n"
            "            self._manifest = payload\n")})
        assert report.clean

    def test_init_assignment_is_exempt(self):
        report = lint_sources({"service/store.py": (
            "class IndexStore:\n"
            "    def __init__(self):\n"
            "        self._manifest = {}\n")})
        assert report.clean

    def test_fires_on_unlocked_mutator_call(self):
        report = lint_sources({"server/router.py": (
            "class Router:\n"
            "    def remove(self, name):\n"
            "        return self._services.pop(name)\n")})
        assert fired(report) == ["RL002"]

    def test_mutator_under_lock_is_clean(self):
        report = lint_sources({"server/router.py": (
            "class Router:\n"
            "    def remove(self, name):\n"
            "        with self._registry_lock:\n"
            "            return self._services.pop(name)\n")})
        assert report.clean

    def test_fires_on_non_atomic_file_write(self):
        report = lint_sources({"server/dump.py": (
            "def dump(path, text):\n"
            "    path.write_text(text, encoding='utf-8')\n")})
        assert fired(report) == ["RL002"]
        assert "os.replace" in report.violations[0].message

    def test_tmp_plus_replace_write_is_clean(self):
        report = lint_sources({"server/dump.py": (
            "import os\n"
            "def dump(path, tmp, text):\n"
            "    tmp.write_text(text, encoding='utf-8')\n"
            "    os.replace(tmp, path)\n")})
        assert report.clean


# ----------------------------------------------------------------------
# RL003 — exception hygiene
# ----------------------------------------------------------------------
class TestExceptionHygiene:
    @pytest.mark.parametrize("clause", [
        "except Exception:", "except BaseException:", "except:",
        "except (ValueError, Exception):",
    ])
    def test_fires_on_broad_handler(self, clause):
        report = lint_sources({"engine/x.py": (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            f"    {clause}\n"
            "        return 0\n")})
        assert fired(report) == ["RL003"]

    def test_narrow_handler_is_clean(self):
        report = lint_sources({"engine/x.py": (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except (ValueError, OSError):\n"
            "        return 0\n")})
        assert report.clean

    def test_justified_pragma_suppresses(self):
        report = lint_sources({"engine/x.py": (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:"
            "  # repro-lint: disable=RL003 -- keep workers alive\n"
            "        return 0\n")})
        assert report.clean

    def test_pragma_without_justification_is_flagged(self):
        report = lint_sources({"engine/x.py": (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:  # repro-lint: disable=RL003\n"
            "        return 0\n")})
        assert fired(report) == [UNUSED_SUPPRESSION]
        assert "no justification" in report.violations[0].message

    def test_cleanup_reraise_is_exempt(self):
        report = lint_sources({"engine/x.py": (
            "def f(pending, name):\n"
            "    try:\n"
            "        return start()\n"
            "    except BaseException:\n"
            "        pending.discard(name)\n"
            "        raise\n")})
        assert report.clean


# ----------------------------------------------------------------------
# RL004 — wire-schema drift
# ----------------------------------------------------------------------
GOOD_SERVER = """\
class Handler:
    def _route(self, method, segments, body):
        if method == "GET" and segments == ["healthz"]:
            self._respond(200, {"ok": True})
            return True
        return False

    def _route_graph(self, method, rest, name, body):
        if method == "GET" and rest == ["top_r"]:
            self._respond(200, {"entries": [], "score": 3})
            return True
        return False
"""

GOOD_CLIENT = """\
class ServerClient:
    def healthz(self):
        return self._request("GET", "/healthz")["ok"]

    def top_r(self, name):
        return self._request("GET", f"/graphs/{name}/top_r")["entries"]
"""

GOOD_FRONTEND = """\
_FANOUT_GET = ("healthz",)


class Frontend:
    def _fan_healthz(self, client):
        return client.healthz()
"""


class TestWireSchema:
    def test_matching_surfaces_are_clean(self):
        report = lint_sources({"server/http.py": GOOD_SERVER,
                               "server/client.py": GOOD_CLIENT,
                               "cluster/frontend.py": GOOD_FRONTEND})
        assert report.clean

    def test_fires_on_client_method_with_no_route(self):
        bad_client = GOOD_CLIENT + (
            "\n    def statz(self):\n"
            "        return self._request('GET', '/statz')\n")
        report = lint_sources({"server/http.py": GOOD_SERVER,
                               "server/client.py": bad_client})
        assert fired(report) == ["RL004"]
        assert any("statz" in v.message for v in report.violations)

    def test_fires_on_key_the_server_never_writes(self):
        bad_client = GOOD_CLIENT.replace('["ok"]', '["oops"]')
        report = lint_sources({"server/http.py": GOOD_SERVER,
                               "server/client.py": bad_client})
        assert fired(report) == ["RL004"]
        assert any("'oops'" in v.message for v in report.violations)

    def test_fires_on_uncovered_server_route(self):
        # Add a GET /version branch to _route with no client method.
        bad_server = GOOD_SERVER.replace(
            "        return False\n\n    def _route_graph",
            "        if method == \"GET\" and segments == [\"version\"]:\n"
            "            self._respond(200, {\"version\": 1})\n"
            "            return True\n"
            "        return False\n\n    def _route_graph", 1)
        report = lint_sources({"server/http.py": bad_server,
                               "server/client.py": GOOD_CLIENT})
        assert fired(report) == ["RL004"]
        assert any("GET /version" in v.message for v in report.violations)

    def test_fires_on_fanout_without_handler(self):
        bad_frontend = GOOD_FRONTEND.replace(
            '("healthz",)', '("healthz", "stats")')
        report = lint_sources({"server/http.py": GOOD_SERVER,
                               "server/client.py": GOOD_CLIENT,
                               "cluster/frontend.py": bad_frontend})
        assert fired(report) == ["RL004"]
        assert any("_fan_stats" in v.message for v in report.violations)

    def test_fires_on_unknown_client_method_call(self):
        bad_frontend = GOOD_FRONTEND.replace(
            "client.healthz()", "client.bogus()")
        report = lint_sources({"server/http.py": GOOD_SERVER,
                               "server/client.py": GOOD_CLIENT,
                               "cluster/frontend.py": bad_frontend})
        assert fired(report) == ["RL004"]
        assert any("client.bogus()" in v.message
                   for v in report.violations)


# ----------------------------------------------------------------------
# RL005 — ranking-contract routing
# ----------------------------------------------------------------------
class TestRankingContract:
    def test_fires_on_ad_hoc_search_result(self):
        report = lint_sources({"core/x.py": (
            "def top_r(scores, r):\n"
            "    ranked = sorted(scores.items(), key=lambda kv: -kv[1])\n"
            "    return SearchResult(entries=ranked[:r])\n")})
        assert fired(report) == ["RL005"]

    def test_canonical_helper_is_clean(self):
        report = lint_sources({"core/x.py": (
            "def top_r(graph, scores, r):\n"
            "    entries = build_entries(graph, scores, r)\n"
            "    return SearchResult(entries=entries)\n")})
        assert report.clean

    def test_fires_on_top_r_collector(self):
        report = lint_sources({"engine/x.py": (
            "def top_r(scores, r):\n"
            "    collector = TopRCollector(r)\n"
            "    return collector\n")})
        assert fired(report) == ["RL005"]

    def test_models_and_results_are_exempt(self):
        body = ("def top_r(scores, r):\n"
                "    return TopRCollector(r)\n")
        report = lint_sources({"models/baseline.py": body,
                               "core/results.py": body})
        assert report.clean


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    def test_text_report_lists_location_and_rule(self):
        report = lint_sources({"build/x.py": (
            "def f(xs):\n"
            "    return list(set(xs))\n")})
        text = render_text(report)
        assert "build/x.py:2:12: [RL001]" in text
        assert "1 violation in 1 file" in text

    def test_clean_text_report(self):
        text = render_text(lint_sources({"viz.py": "x = 1\n"}))
        assert text == "repro lint: 1 file checked, clean"

    def test_json_report_round_trips(self):
        report = lint_sources({"build/x.py": (
            "def f(xs):\n"
            "    return list(set(xs))\n")})
        payload = json.loads(render_json(report))
        assert payload["files_checked"] == 1
        assert payload["clean"] is False
        restored = [Violation.from_payload(item)
                    for item in payload["violations"]]
        assert restored == report.sorted()


# ----------------------------------------------------------------------
# Runner + CLI
# ----------------------------------------------------------------------
def write_tree(root, files):
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")


class TestRunner:
    def test_collect_sources_scopes_relative_to_directory(self, tmp_path):
        write_tree(tmp_path, {"service/x.py": "x = 1\n",
                              "core/y.py": "y = 2\n"})
        sources = collect_sources([tmp_path])
        assert sorted(sources) == ["core/y.py", "service/x.py"]

    def test_lint_paths_over_fixture_tree(self, tmp_path):
        write_tree(tmp_path, {"service/x.py": (
            "def f(xs):\n"
            "    return list(set(xs))\n")})
        report = lint_paths([tmp_path])
        assert fired(report) == ["RL001"]

    def test_main_exit_codes_and_json(self, tmp_path, capsys):
        write_tree(tmp_path, {"service/x.py": (
            "def f(xs):\n"
            "    return list(set(xs))\n")})
        assert lint_main([str(tmp_path)]) == 1
        assert "[RL001]" in capsys.readouterr().out
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["violations"][0]["rule"] == "RL001"

    def test_list_rules_names_every_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        write_tree(tmp_path, {"core/x.py": "x = 1\n"})
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The self-run: this repository lints clean
# ----------------------------------------------------------------------
class TestSelfRun:
    def test_repository_is_lint_clean(self):
        report = lint_paths()
        assert report.files_checked > 50
        assert report.clean, render_text(report)

    def test_default_paths_point_at_the_package(self):
        (package,) = default_paths()
        assert package.name == "repro"
        assert (package / "lint" / "framework.py").exists()
