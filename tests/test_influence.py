"""Tests for the influence package: IC simulation, seeds, contagion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.influence.ic import (
    simulate_cascade,
    monte_carlo_spread,
    activation_probabilities,
    activation_rounds,
)
from repro.influence.seeds import (
    top_degree_seeds,
    degree_discount_seeds,
    ris_seeds,
    celf_seeds,
)
from repro.influence.contagion import (
    partition_by_score,
    activation_rate_by_score_group,
    activated_among_targets,
    latency_curve,
    center_activation_probability,
)

from tests.conftest import dense_graph_strategy, complete_graph


class TestSimulateCascade:
    def test_seeds_active_at_round_zero(self, figure1):
        rng = random.Random(0)
        active = simulate_cascade(figure1, ["v"], 0.0, rng)
        assert active == {"v": 0}

    def test_probability_one_floods_component(self, figure1):
        rng = random.Random(0)
        active = simulate_cascade(figure1, ["v"], 1.0, rng)
        assert set(active) == set(figure1.vertices())

    def test_rounds_are_bfs_layers_at_p1(self, path4):
        rng = random.Random(0)
        active = simulate_cascade(path4, [0], 1.0, rng)
        assert active == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_deterministic_given_seeded_rng(self, medium_graph):
        a = simulate_cascade(medium_graph, [0, 1], 0.2, random.Random(5))
        b = simulate_cascade(medium_graph, [0, 1], 0.2, random.Random(5))
        assert a == b

    def test_unknown_seeds_ignored(self, triangle):
        active = simulate_cascade(triangle, [99], 1.0, random.Random(0))
        assert active == {}

    def test_invalid_probability(self, triangle):
        with pytest.raises(InvalidParameterError):
            simulate_cascade(triangle, [0], 1.5, random.Random(0))

    @given(dense_graph_strategy(), st.sampled_from([0.0, 0.3, 1.0]))
    @settings(max_examples=15)
    def test_cascade_contained_in_component(self, g, p):
        from repro.graph.traversal import bfs_order
        vertices = list(g.vertices())
        seed_vertex = vertices[0]
        active = simulate_cascade(g, [seed_vertex], p, random.Random(1))
        reachable = set(bfs_order(g, seed_vertex))
        assert set(active) <= reachable


class TestEstimators:
    def test_spread_bounds(self, medium_graph):
        spread = monte_carlo_spread(medium_graph, [0], 0.1, runs=50, seed=1)
        assert 1.0 <= spread <= medium_graph.num_vertices

    def test_spread_monotone_in_p(self, medium_graph):
        low = monte_carlo_spread(medium_graph, [0], 0.02, runs=80, seed=1)
        high = monte_carlo_spread(medium_graph, [0], 0.5, runs=80, seed=1)
        assert high >= low

    def test_activation_probabilities_range(self, medium_graph):
        probs = activation_probabilities(medium_graph, [0, 1], 0.1,
                                         runs=40, seed=2)
        assert all(0.0 <= p <= 1.0 for p in probs.values())
        assert probs[0] == 1.0  # a seed is always active

    def test_runs_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            monte_carlo_spread(triangle, [0], 0.1, runs=0)

    def test_activation_rounds_sorted(self, medium_graph):
        per_run = activation_rounds(medium_graph, [0], 0.3,
                                    targets=list(medium_graph.vertices())[:20],
                                    runs=10, seed=3)
        assert len(per_run) == 10
        for rounds in per_run:
            assert rounds == sorted(rounds)


class TestSeedSelectors:
    def test_top_degree(self, figure1):
        seeds = top_degree_seeds(figure1, 1)
        assert seeds == ["v"]  # degree 14, the maximum

    def test_top_degree_count(self, medium_graph):
        assert len(top_degree_seeds(medium_graph, 7)) == 7

    def test_degree_discount_distinct(self, medium_graph):
        seeds = degree_discount_seeds(medium_graph, 10, 0.05)
        assert len(seeds) == 10
        assert len(set(seeds)) == 10

    def test_ris_deterministic(self, medium_graph):
        a = ris_seeds(medium_graph, 5, 0.1, num_samples=200, seed=4)
        b = ris_seeds(medium_graph, 5, 0.1, num_samples=200, seed=4)
        assert a == b
        assert len(a) == 5

    def test_ris_finds_hub(self):
        """A star center must be the first RIS seed."""
        g = Graph(edges=[(0, i) for i in range(1, 30)])
        seeds = ris_seeds(g, 1, 0.3, num_samples=400, seed=0)
        assert seeds == [0]

    def test_celf_small_graph(self):
        g = complete_graph(5)
        seeds = celf_seeds(g, 2, 0.2, runs=30, seed=0)
        assert len(seeds) == 2

    def test_selectors_beat_nothing(self, medium_graph):
        """Chosen seeds spread at least as far as themselves (sanity)."""
        seeds = degree_discount_seeds(medium_graph, 5, 0.05)
        spread = monte_carlo_spread(medium_graph, seeds, 0.05, runs=40, seed=1)
        assert spread >= 5.0

    def test_count_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            top_degree_seeds(triangle, -1)
        with pytest.raises(InvalidParameterError):
            ris_seeds(triangle, -1, 0.1)


class TestContagionDrivers:
    def test_partition_by_score_groups(self):
        scores = {i: i for i in range(1, 21)}
        groups = partition_by_score(scores, num_groups=4)
        assert len(groups) == 4
        assert sum(len(g) for g in groups) == 20
        # Groups ordered low to high.
        firsts = [min(scores[v] for v in g) for g in groups]
        assert firsts == sorted(firsts)

    def test_partition_excludes_zero_scores(self):
        scores = {1: 0, 2: 3, 3: 5}
        groups = partition_by_score(scores, num_groups=2)
        flat = [v for g in groups for v in g]
        assert 1 not in flat

    def test_partition_empty(self):
        assert partition_by_score({1: 0}, 4) == []

    def test_partition_never_splits_ties(self):
        """Vertices with equal scores stay in one group, even when that
        collapses the group count (paper-style score intervals)."""
        scores = {i: 1 for i in range(50)}
        scores.update({100 + i: 7 for i in range(3)})
        groups = partition_by_score(scores, num_groups=4)
        assert len(groups) == 2
        assert {scores[v] for v in groups[0]} == {1}
        assert {scores[v] for v in groups[1]} == {7}

    def test_partition_single_value(self):
        groups = partition_by_score({i: 3 for i in range(10)}, 4)
        assert len(groups) == 1
        assert len(groups[0]) == 10

    def test_activation_rate_by_group(self, medium_graph):
        scores = {v: medium_graph.degree(v) for v in medium_graph.vertices()}
        seeds = top_degree_seeds(medium_graph, 5)
        rates = activation_rate_by_score_group(
            medium_graph, scores, seeds, p=0.15, num_groups=4,
            runs=30, seed=0)
        assert len(rates) == 4
        assert all(0.0 <= r.activated_rate <= 1.0 for r in rates)
        assert all(r.low <= r.high for r in rates)

    def test_activated_among_targets_bounds(self, medium_graph):
        targets = list(medium_graph.vertices())[:10]
        value = activated_among_targets(medium_graph, targets, [0], 0.2,
                                        runs=30, seed=0)
        assert 0.0 <= value <= 10.0

    def test_latency_curve_monotone(self, medium_graph):
        targets = list(medium_graph.vertices())[:30]
        curve = latency_curve(medium_graph, targets, [0, 1, 2], 0.3,
                              runs=30, seed=0)
        xs = [x for x, _ in curve]
        rounds = [r for _, r in curve]
        assert xs == sorted(xs)
        assert rounds == sorted(rounds)  # more activations need >= rounds

    def test_center_activation_probability(self, figure1):
        p = center_activation_probability(figure1, "v", 0.3,
                                          num_seeds=5, runs=100, seed=0)
        assert 0.0 < p <= 1.0

    def test_center_probability_isolated(self):
        g = Graph(edges=[(0, 1)], vertices=[9])
        assert center_activation_probability(g, 9, 0.5) == 0.0
