"""Tests for the GCT-index (Section 6): assembly, Lemma 3, compression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexFormatError, InvalidParameterError
from repro.graph.graph import Graph
from repro.core.diversity import structural_diversity, social_contexts
from repro.core.gct import GCTIndex, assemble_gct
from repro.core.tsd import TSDIndex

from tests.conftest import dense_graph_strategy


class TestAssembleGCT:
    def test_empty(self):
        supernodes, superedges = assemble_gct([], [])
        assert supernodes == [] and superedges == []

    def test_isolated_vertices_dropped(self):
        supernodes, superedges = assemble_gct(["a", "b"], [])
        assert supernodes == []

    def test_single_level_merges(self):
        # A triangle: all edges trussness 3 -> one supernode, no superedges.
        edges = [(("a", "b"), 3), (("b", "c"), 3), (("a", "c"), 3)]
        supernodes, superedges = assemble_gct("abc", edges)
        assert len(supernodes) == 1
        assert supernodes[0][0] == 3
        assert set(supernodes[0][1]) == {"a", "b", "c"}
        assert superedges == []

    def test_two_levels_superedge(self):
        # Two groups at trussness 4 joined by a weight-3 edge.
        edges = ([(("a", "b"), 4), (("c", "d"), 4), (("b", "c"), 3)])
        supernodes, superedges = assemble_gct("abcd", edges)
        assert len(supernodes) == 2
        assert len(superedges) == 1
        assert superedges[0][2] == 3


class TestPaperFigure7:
    def test_gct_of_v(self, figure1):
        """Figure 7(b): three supernodes of trussness 4, one weight-3
        superedge between the x-group and the y-group."""
        index = GCTIndex.build(figure1)
        nodes = index.supernodes("v")
        assert sorted(tau for tau, _ in nodes) == [4, 4, 4]
        member_sets = {frozenset(m) for _, m in nodes}
        assert member_sets == {
            frozenset({"x1", "x2", "x3", "x4"}),
            frozenset({"y1", "y2", "y3", "y4"}),
            frozenset({"r1", "r2", "r3", "r4", "r5", "r6"})}
        edges = index.superedges("v")
        assert len(edges) == 1
        i, j, w = edges[0]
        assert w == 3
        linked = {frozenset(nodes[i][1]), frozenset(nodes[j][1])}
        assert linked == {
            frozenset({"x1", "x2", "x3", "x4"}),
            frozenset({"y1", "y2", "y3", "y4"})}

    def test_lemma3_on_example(self, figure1):
        index = GCTIndex.build(figure1)
        # k=4: N=3, M=0 -> 3.   k=3: N=3, M=1 -> 2.
        assert index.score("v", 4) == 3
        assert index.score("v", 3) == 2
        assert index.score("v", 5) == 0


class TestLemma3:
    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4, 5]))
    @settings(max_examples=30)
    def test_score_matches_algorithm2(self, g, k):
        index = GCTIndex.build(g)
        for v in list(g.vertices())[:6]:
            assert index.score(v, k) == structural_diversity(g, v, k)

    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4]))
    @settings(max_examples=20)
    def test_contexts_match_algorithm2(self, g, k):
        index = GCTIndex.build(g)
        for v in list(g.vertices())[:5]:
            ours = {frozenset(c) for c in index.contexts(v, k)}
            direct = {frozenset(c) for c in social_contexts(g, v, k)}
            assert ours == direct

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_profile_consistent(self, g):
        index = GCTIndex.build(g)
        for v in list(g.vertices())[:5]:
            profile = index.score_profile(v)
            for k in range(2, 9):
                assert profile.get(k, 0) == index.score(v, k)

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_superedges_form_forest_per_threshold(self, g):
        """Lemma 3's proof: superedges of weight >= k never close a
        cycle among supernodes of trussness >= k."""
        index = GCTIndex.build(g)
        from repro.util.dsu import DisjointSet
        for v in list(g.vertices())[:4]:
            for k in (2, 3, 4):
                dsu = DisjointSet(range(len(index.supernodes(v))))
                for i, j, w in index.superedges(v):
                    if w >= k:
                        assert dsu.union(i, j), "superedge closed a cycle"


class TestCompression:
    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_compress_equals_build(self, g):
        """GCT from TSD forests answers identically to GCT from scratch."""
        built = GCTIndex.build(g)
        compressed = GCTIndex.compress(TSDIndex.build(g))
        for v in list(g.vertices())[:6]:
            for k in (2, 3, 4, 5):
                assert compressed.score(v, k) == built.score(v, k)

    @given(dense_graph_strategy())
    @settings(max_examples=25)
    def test_compress_structurally_equals_build(self, g):
        """Regression: compress used to order ego vertices by repr and
        inherit the forest's arbitrary tie-breaks, so member tuples and
        superedges differed from a fresh build.  The canonical Kruskal
        order makes the two payloads identical."""
        built = GCTIndex.build(g)
        compressed = GCTIndex.compress(TSDIndex.build(g))
        for v in g.vertices():
            assert compressed.supernodes(v) == built.supernodes(v), v
            assert compressed.superedges(v) == built.superedges(v), v

    def test_compressed_smaller_than_tsd(self, medium_graph):
        tsd = TSDIndex.build(medium_graph)
        gct = GCTIndex.compress(tsd)
        assert gct.payload_slots() <= tsd.payload_slots()


class TestPersistence:
    def test_round_trip(self, figure1, tmp_path):
        index = GCTIndex.build(figure1)
        path = tmp_path / "gct.json"
        index.save(path)
        loaded = GCTIndex.load(path)
        assert loaded.vertices == index.vertices
        for v in figure1.vertices():
            for k in (2, 3, 4, 5):
                assert loaded.score(v, k) == index.score(v, k)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "nope", "version": 1}')
        with pytest.raises(IndexFormatError):
            GCTIndex.load(path)

    def test_invalid_k(self, figure1):
        index = GCTIndex.build(figure1)
        with pytest.raises(InvalidParameterError):
            index.score("v", 0)

    def test_build_profile_survives_round_trip(self, figure1, tmp_path):
        """Regression: load used to silently drop the build profile."""
        index = GCTIndex.build(figure1)
        path = tmp_path / "gct.json"
        index.save(path)
        loaded = GCTIndex.load(path)
        assert loaded.build_profile == index.build_profile


class TestUnknownVertexErrors:
    def test_queries_raise_typed_error_naming_vertex(self, figure1):
        """Regression: un-indexed vertices used to raise bare KeyError."""
        index = GCTIndex.build(figure1)
        for call in (lambda: index.score("ghost", 3),
                     lambda: index.contexts("ghost", 3),
                     lambda: index.supernodes("ghost"),
                     lambda: index.superedges("ghost"),
                     lambda: index.score_profile("ghost")):
            with pytest.raises(InvalidParameterError, match="ghost"):
                call()
