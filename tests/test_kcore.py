"""Tests for k-core decomposition against the networkx oracle."""

import pytest
from hypothesis import given

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.cores.kcore import (
    core_decomposition,
    k_core_subgraph,
    maximal_connected_k_cores,
    degeneracy_ordering,
)

from tests.conftest import graph_strategy, complete_graph, cycle_graph
from tests.helpers import nx_core_numbers


class TestCoreDecomposition:
    def test_empty(self):
        assert core_decomposition(Graph()) == {}

    def test_isolated(self):
        g = Graph(vertices=[1, 2])
        assert core_decomposition(g) == {1: 0, 2: 0}

    def test_complete_graph(self):
        cores = core_decomposition(complete_graph(5))
        assert set(cores.values()) == {4}

    def test_cycle(self):
        cores = core_decomposition(cycle_graph(6))
        assert set(cores.values()) == {2}

    def test_star(self):
        g = Graph(edges=[(0, i) for i in range(1, 6)])
        cores = core_decomposition(g)
        assert cores[0] == 1
        assert all(cores[i] == 1 for i in range(1, 6))

    @given(graph_strategy())
    def test_matches_networkx(self, g):
        assert core_decomposition(g) == nx_core_numbers(g)

    @given(graph_strategy())
    def test_core_monotone_under_k(self, g):
        cores = core_decomposition(g)
        for k in (1, 2, 3):
            sub = k_core_subgraph(g, k, cores)
            # Every vertex of the k-core has degree >= k inside it.
            for v in sub.vertices():
                assert sub.degree(v) >= k or sub.num_edges == 0 or True
            # Stronger: recompute degrees directly.
            assert all(sub.degree(v) >= k for v in sub.vertices()) or \
                sub.num_vertices == 0


class TestKCoreSubgraph:
    def test_invalid_k(self, triangle):
        with pytest.raises(InvalidParameterError):
            k_core_subgraph(triangle, -1)

    def test_figure1_h1_is_3core(self, h1):
        # The paper: for 1 <= k <= 3, H1 is one connected k-core.
        for k in (1, 2, 3):
            comps = maximal_connected_k_cores(h1, k)
            assert len(comps) == 1
            assert comps[0] == set(h1.vertices())

    def test_figure1_h1_no_4core(self, h1):
        # ... and for k >= 4 it disappears entirely.
        assert maximal_connected_k_cores(h1, 4) == []

    def test_zero_core_includes_isolated(self):
        g = Graph(edges=[(0, 1)], vertices=[7])
        comps = maximal_connected_k_cores(g, 0)
        assert {frozenset(c) for c in comps} == {
            frozenset({0, 1}), frozenset({7})}


class TestDegeneracyOrdering:
    @given(graph_strategy())
    def test_is_permutation(self, g):
        order = degeneracy_ordering(g)
        assert sorted(map(repr, order)) == sorted(map(repr, g.vertices()))

    @given(graph_strategy())
    def test_peeling_degree_bounded_by_degeneracy(self, g):
        """When v is peeled, its remaining degree is <= the degeneracy."""
        cores = core_decomposition(g)
        degeneracy = max(cores.values(), default=0)
        order = degeneracy_ordering(g)
        remaining = set(g.vertices())
        for v in order:
            back_degree = sum(1 for u in g.neighbors(v) if u in remaining)
            assert back_degree <= degeneracy
            remaining.discard(v)
