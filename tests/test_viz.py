"""Tests for the visualisation exports."""

from repro.graph.graph import Graph
from repro.truss.decomposition import truss_decomposition, trussness_histogram
from repro.viz import (
    graph_to_dot,
    ego_network_to_dot,
    contexts_summary,
    trussness_histogram_ascii,
)


class TestGraphToDot:
    def test_basic_structure(self, triangle):
        dot = graph_to_dot(triangle, name="tri")
        assert dot.startswith('graph "tri" {')
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == 3

    def test_all_vertices_listed(self, figure1):
        dot = graph_to_dot(figure1)
        for v in figure1.vertices():
            assert f'"{v}"' in dot

    def test_highlight_colours(self, figure1):
        groups = [{"x1", "x2"}, {"y1"}]
        dot = graph_to_dot(figure1, highlight=groups)
        assert "palegreen" in dot
        assert "lightskyblue" in dot

    def test_edge_labels(self, h1):
        tau = truss_decomposition(h1)
        dot = graph_to_dot(h1, edge_labels=tau)
        assert 'label="4"' in dot
        assert 'label="3"' in dot

    def test_quoting_special_labels(self):
        g = Graph(edges=[('a"b', "c\\d")])
        dot = graph_to_dot(g)
        assert '\\"' in dot  # the quote is escaped
        assert dot.count(" -- ") == 1


class TestEgoDot:
    def test_paper_figure16_style(self, figure1):
        dot = ego_network_to_dot(figure1, "v", 4)
        # Three contexts -> three distinct fill colours.
        used = {c for c in ("palegreen", "lightskyblue", "lightsalmon")
                if c in dot}
        assert len(used) == 3
        assert '"v"' not in dot  # the ego itself is excluded by default

    def test_include_center(self, figure1):
        dot = ego_network_to_dot(figure1, "v", 4, include_center=True)
        assert '"v"' in dot


class TestSummaries:
    def test_contexts_summary(self, figure1):
        text = contexts_summary(figure1, "v", 4)
        assert "3 social context(s)" in text
        assert text.count("[") >= 3

    def test_contexts_summary_truncates(self, figure1):
        text = contexts_summary(figure1, "v", 4, max_members=2)
        assert "..." in text

    def test_histogram_ascii(self, h1):
        hist = trussness_histogram(truss_decomposition(h1))
        art = trussness_histogram_ascii(hist)
        assert "tau=  3" in art
        assert "tau=  4" in art
        assert "#" in art

    def test_histogram_ascii_empty(self):
        assert "empty" in trussness_histogram_ascii({})
