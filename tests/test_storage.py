"""The paged binary artifact format: round trips, errors, concurrency.

Four contracts under test:

* **Round trip.**  For every index in a seeded graph family, payload →
  binary artifact → payload is the identity, and equals the JSON
  round trip bit-for-bit — the binary codec may never change what an
  index *says*, only how its bytes are laid out.
* **Typed failures.**  A truncated, corrupt, or version-skewed artifact
  raises :class:`~repro.errors.ArtifactFormatError` (a
  :class:`~repro.errors.StoreError`), never a bare struct/IndexError.
* **Laziness + LRU.**  The mmap reader decodes only touched records,
  evicts beyond its cache budget, and stays correct when many threads
  hammer eviction and re-query concurrently.
* **Delta + compaction.**  ``write_delta`` supersedes only the changed
  records (dead bytes accounted), ``compact_artifact`` reclaims them,
  and the store's ``convert`` migrates lineages codec-to-codec in
  place — all answer-preserving.
"""

import threading

import pytest

from repro.core.gct import GCTIndex
from repro.core.tsd import TSDIndex
from repro.datasets.synthetic import add_planted_cliques, erdos_renyi
from repro.errors import ArtifactFormatError, StoreError
from repro.graph.graph import Graph
from repro.storage import (
    HEADER_SIZE,
    ArtifactReader,
    compact_artifact,
    encode_artifact,
    read_payload,
    write_artifact,
    write_delta,
)
from repro.storage.lazy import open_gct_artifact, open_tsd_artifact
from repro.util.jsonio import dumps_payload


def _family():
    graphs = [("empty", Graph()),
              ("noedges", Graph(vertices=range(5))),
              ("triangle", Graph(edges=[(0, 1), (1, 2), (0, 2)]))]
    for i, (n, p) in enumerate([(12, 0.3), (18, 0.25), (24, 0.2)]):
        graphs.append((f"er{i}", erdos_renyi(n, p, seed=50 + i)))
    for i, (n, p, sizes) in enumerate([(16, 0.1, [5]), (20, 0.12, [6, 4])]):
        base = erdos_renyi(n, p, seed=70 + i)
        graphs.append((f"pc{i}", add_planted_cliques(base, sizes,
                                                     seed=90 + i)))
    return graphs


FAMILY = _family()


@pytest.fixture(params=[name for name, _ in FAMILY])
def graph(request):
    return dict(FAMILY)[request.param]


# ----------------------------------------------------------------------
# Round trips: binary ≡ JSON, eager ≡ lazy
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_tsd_binary_round_trip_is_identity(self, graph, tmp_path):
        payload = TSDIndex.build(graph).to_payload()
        write_artifact(tmp_path / "tsd.bin", payload)
        assert read_payload(tmp_path / "tsd.bin") == payload

    def test_gct_binary_round_trip_is_identity(self, graph, tmp_path):
        payload = GCTIndex.build(graph).to_payload()
        write_artifact(tmp_path / "gct.bin", payload)
        assert read_payload(tmp_path / "gct.bin") == payload

    def test_binary_equals_json_round_trip(self, graph, tmp_path):
        """The two codecs hand ``from_payload`` identical dicts."""
        import json
        for build, name in ((TSDIndex.build, "tsd"), (GCTIndex.build,
                                                      "gct")):
            payload = build(graph).to_payload()
            json_path = tmp_path / f"{name}.json"
            json_path.write_text(dumps_payload(payload), encoding="utf-8")
            write_artifact(tmp_path / f"{name}.bin", payload)
            assert (read_payload(tmp_path / f"{name}.bin")
                    == json.loads(json_path.read_text(encoding="utf-8")))

    def test_encode_is_deterministic(self, graph):
        payload = TSDIndex.build(graph).to_payload(include_profile=False)
        assert encode_artifact(payload) == encode_artifact(payload)

    def test_lazy_indexes_rank_identically(self, graph, tmp_path):
        """mmap-backed lazy indexes obey the canonical ranking contract
        query-for-query against the in-memory builds."""
        tsd = TSDIndex.build(graph)
        gct = GCTIndex.build(graph)
        write_artifact(tmp_path / "tsd.bin", tsd.to_payload())
        write_artifact(tmp_path / "gct.bin", gct.to_payload())
        lazy_tsd = open_tsd_artifact(tmp_path / "tsd.bin")
        lazy_gct = open_gct_artifact(tmp_path / "gct.bin")
        n = graph.num_vertices
        for k in (2, 3, 4, 9):
            for r in (1, 3, n + 5):
                expected = tsd.top_r(k, r)
                got = lazy_tsd.top_r(k, r)
                assert got.vertices == expected.vertices, (k, r)
                assert got.scores == expected.scores, (k, r)
                expected = gct.top_r(k, r)
                got = lazy_gct.top_r(k, r)
                assert got.vertices == expected.vertices, (k, r)
                assert got.scores == expected.scores, (k, r)

    def test_lazy_index_to_payload_round_trips(self, graph, tmp_path):
        payload = GCTIndex.build(graph).to_payload()
        write_artifact(tmp_path / "gct.bin", payload)
        assert open_gct_artifact(tmp_path / "gct.bin").to_payload() \
            == payload

    def test_tuple_labels_round_trip(self, tmp_path):
        g = Graph(edges=[(("a", 1), ("b", 2)), (("b", 2), ("c", 3)),
                         (("a", 1), ("c", 3))])
        tsd = TSDIndex.build(g)
        write_artifact(tmp_path / "tsd.bin", tsd.to_payload())
        lazy = open_tsd_artifact(tmp_path / "tsd.bin")
        assert lazy.score(("a", 1), 3) == tsd.score(("a", 1), 3)

    def test_fingerprint_survives(self, tmp_path):
        payload = TSDIndex.build(dict(FAMILY)["triangle"]).to_payload()
        digest = "ab" * 32
        write_artifact(tmp_path / "tsd.bin", payload, fingerprint=digest)
        with ArtifactReader(tmp_path / "tsd.bin") as reader:
            assert reader.fingerprint == digest


# ----------------------------------------------------------------------
# Typed failures
# ----------------------------------------------------------------------
class TestCorruptArtifacts:
    @pytest.fixture
    def artifact(self, tmp_path):
        payload = TSDIndex.build(dict(FAMILY)["er1"]).to_payload()
        path = tmp_path / "tsd.bin"
        write_artifact(path, payload)
        return path

    def test_truncated_file_raises_typed_error(self, artifact):
        data = artifact.read_bytes()
        artifact.write_bytes(data[:len(data) // 2])
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(artifact)

    def test_shorter_than_header_raises(self, artifact):
        artifact.write_bytes(artifact.read_bytes()[:HEADER_SIZE - 8])
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(artifact)

    def test_trailing_garbage_raises(self, artifact):
        artifact.write_bytes(artifact.read_bytes() + b"xx")
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(artifact)

    def test_bad_magic_raises(self, artifact):
        data = bytearray(artifact.read_bytes())
        data[:4] = b"NOPE"
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(artifact)

    def test_future_format_version_raises(self, artifact):
        data = bytearray(artifact.read_bytes())
        data[4:6] = (99).to_bytes(2, "little")
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(artifact)

    def test_corrupt_payload_fails_checksum(self, artifact):
        data = bytearray(artifact.read_bytes())
        data[-1] ^= 0xFF  # flip one heap byte, keep the length
        artifact.write_bytes(bytes(data))
        reader = ArtifactReader(artifact)  # open succeeds: lazy verify
        with pytest.raises(ArtifactFormatError):
            reader.verify_checksum()
        reader.close()

    def test_errors_are_store_errors(self, artifact):
        """The service layer catches StoreError; the binary format's
        failures must be inside that hierarchy."""
        artifact.write_bytes(b"garbage")
        with pytest.raises(StoreError):
            ArtifactReader(artifact)

    def test_kind_mismatch_raises(self, artifact):
        """Opening a TSD artifact through the GCT lazy maps is a typed
        error, not garbage decoding."""
        with pytest.raises(ArtifactFormatError):
            open_gct_artifact(artifact)


# ----------------------------------------------------------------------
# Laziness and the LRU record cache
# ----------------------------------------------------------------------
class TestLazyReader:
    @pytest.fixture
    def pair(self, tmp_path):
        graph = dict(FAMILY)["pc1"]
        index = GCTIndex.build(graph)
        path = tmp_path / "gct.bin"
        write_artifact(path, index.to_payload())
        return graph, index, path

    def test_point_lookup_decodes_one_record(self, pair):
        graph, index, path = pair
        lazy = open_gct_artifact(path)
        reader = lazy._supernodes.reader
        v = next(iter(graph.vertices()))
        assert lazy.score(v, 3) == index.score(v, 3)
        # labels + at most the touched vertex's summary records.
        assert reader.cache_len() <= 2

    def test_eviction_then_requery_is_correct(self, pair):
        graph, index, path = pair
        reader = ArtifactReader(path, cache_records=4)
        expected = {pos: reader.summary(pos)
                    for pos in range(reader.num_vertices)}
        assert reader.cache_len() <= 4  # evicted down to the budget
        # Re-query everything in reverse: every answer must re-decode
        # to the same value it had before eviction.
        for pos in reversed(range(reader.num_vertices)):
            assert reader.summary(pos) == expected[pos], pos
        reader.close()

    def test_concurrent_eviction_and_requery(self, pair):
        """Many threads, a cache far smaller than the record count:
        decode-outside-lock + LRU insert must never hand any thread a
        wrong or torn record."""
        graph, index, path = pair
        reader = ArtifactReader(path, cache_records=3)
        expected = {pos: reader.summary(pos)
                    for pos in range(reader.num_vertices)}
        errors = []

        def worker(seed):
            order = list(range(reader.num_vertices))
            import random
            random.Random(seed).shuffle(order)
            for _ in range(20):
                for pos in order:
                    if reader.summary(pos) != expected[pos]:
                        errors.append(pos)
                        return

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert reader.cache_len() <= 3
        reader.close()

    def test_concurrent_lazy_service_queries(self, pair, tmp_path):
        """The full lazy index under thread pressure: scores computed
        through a tiny LRU match the eager index for every vertex."""
        graph, index, path = pair
        lazy = open_gct_artifact(path)
        # Shrink both caches to force constant eviction.
        lazy._supernodes.reader._cache.clear()
        expected = {v: index.score(v, 3) for v in graph.vertices()}
        mismatches = []

        def worker():
            for v, want in expected.items():
                if lazy.score(v, 3) != want:
                    mismatches.append(v)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not mismatches


# ----------------------------------------------------------------------
# Delta writes and page compaction
# ----------------------------------------------------------------------
class TestDeltaAndCompact:
    def _payloads(self):
        """Two same-vertex-set payloads differing in a few records."""
        g1 = erdos_renyi(20, 0.35, seed=11)
        g2 = g1.copy()
        edge = next(iter(g1.edges()))
        g2.remove_edge(*edge)
        p1 = TSDIndex.build(g1).to_payload(include_profile=False)
        p2 = TSDIndex.build(g2).to_payload(include_profile=False)
        assert p1 != p2
        return p1, p2, list(g1.vertices())

    def test_delta_supersedes_only_changed_records(self, tmp_path):
        p1, p2, vertices = self._payloads()
        base = tmp_path / "v1.bin"
        write_artifact(base, p1)
        out = tmp_path / "v2.bin"
        assert write_delta(base, out, p2, vertices) is True
        with ArtifactReader(out) as reader:
            assert reader.stats()["dead_bytes"] > 0
            reader.verify_checksum()
        assert read_payload(out) == p2
        assert read_payload(base) == p1  # the base is untouched

    def test_compact_reclaims_dead_bytes(self, tmp_path):
        p1, p2, vertices = self._payloads()
        base = tmp_path / "v1.bin"
        out = tmp_path / "v2.bin"
        write_artifact(base, p1)
        write_delta(base, out, p2, vertices)
        before = out.stat().st_size
        reclaimed = compact_artifact(out)
        assert reclaimed > 0
        assert out.stat().st_size == before - reclaimed
        with ArtifactReader(out) as reader:
            assert reader.stats()["dead_bytes"] == 0
            reader.verify_checksum()
        assert read_payload(out) == p2
        assert compact_artifact(out) == 0  # idempotent

    def test_delta_refuses_changed_vertex_set(self, tmp_path):
        p1, _, _ = self._payloads()
        g3 = erdos_renyi(21, 0.3, seed=12)
        p3 = TSDIndex.build(g3).to_payload(include_profile=False)
        base = tmp_path / "v1.bin"
        write_artifact(base, p1)
        assert write_delta(base, tmp_path / "v2.bin", p3,
                           list(g3.vertices())) is False

    def test_delta_keeps_base_build_profile(self, tmp_path):
        """A repaired index carries no build profile; the delta file
        inherits the base's (the original build's provenance)."""
        g = erdos_renyi(15, 0.4, seed=13)
        full = TSDIndex.build(g).to_payload()
        assert "build_profile" in full
        base = tmp_path / "v1.bin"
        write_artifact(base, full)
        stripped = dict(full)
        del stripped["build_profile"]
        out = tmp_path / "v2.bin"
        assert write_delta(base, out, stripped, list(g.vertices()))
        assert read_payload(out)["build_profile"] \
            == full["build_profile"]

    def test_delta_refuses_missing_or_torn_base(self, tmp_path):
        p1, p2, vertices = self._payloads()
        assert write_delta(tmp_path / "absent.bin", tmp_path / "v2.bin",
                           p2, vertices) is False
        base = tmp_path / "v1.bin"
        write_artifact(base, p1)
        base.write_bytes(base.read_bytes()[:-10])  # torn
        assert write_delta(base, tmp_path / "v2.bin", p2,
                           vertices) is False


# ----------------------------------------------------------------------
# Store integration: codec plumbing, convert, manifest cache
# ----------------------------------------------------------------------
class TestStoreCodec:
    @pytest.fixture
    def graph(self):
        return add_planted_cliques(erdos_renyi(18, 0.15, seed=21), [5],
                                   seed=22)

    def test_unknown_codec_is_typed(self, tmp_path):
        from repro.service.store import IndexStore
        with pytest.raises(StoreError):
            IndexStore(tmp_path, codec="msgpack")

    def test_bin_store_round_trip_matches_json(self, graph, tmp_path):
        from repro.service.store import IndexStore
        from repro.storage.lazy import LazyForestMap
        tsd, gct = TSDIndex.build(graph), GCTIndex.build(graph)
        jstore = IndexStore(tmp_path / "json")
        bstore = IndexStore(tmp_path / "bin", codec="bin")
        jstore.put(graph, tsd=tsd, gct=gct)
        version = bstore.put(graph, tsd=tsd, gct=gct)
        assert version.codec_of("tsd") == "bin"
        assert version.codec_of("gct") == "bin"
        jloaded = jstore.load(graph)
        bloaded = bstore.load(graph)
        assert isinstance(bloaded.tsd._forests, LazyForestMap)
        n = graph.num_vertices
        for k in (2, 3, 4):
            for r in (1, 5, n + 3):
                expected = jloaded.tsd.top_r(k, r)
                got = bloaded.tsd.top_r(k, r)
                assert (got.vertices, got.scores) \
                    == (expected.vertices, expected.scores), (k, r)
                expected = jloaded.gct.top_r(k, r)
                got = bloaded.gct.top_r(k, r)
                assert (got.vertices, got.scores) \
                    == (expected.vertices, expected.scores), (k, r)

    def test_lazy_false_materialises(self, graph, tmp_path):
        from repro.service.store import IndexStore
        store = IndexStore(tmp_path, codec="bin")
        store.put(graph, tsd=TSDIndex.build(graph))
        loaded = store.load(graph, lazy=False)
        assert isinstance(loaded.tsd._forests, dict)

    def test_convert_json_to_bin_and_back(self, graph, tmp_path):
        from repro.service.store import IndexStore
        store = IndexStore(tmp_path)
        tsd, gct = TSDIndex.build(graph), GCTIndex.build(graph)
        store.put(graph, tsd=tsd, gct=gct)
        baseline = store.load(graph).tsd.top_r(3, 8)

        assert IndexStore(tmp_path).convert("bin") == 2
        store2 = IndexStore(tmp_path)
        version = store2.current(graph)
        assert version.codec_of("tsd") == "bin"
        assert (store2.root / version.artifacts["tsd"]).suffix == ".bin"
        got = store2.load(graph).tsd.top_r(3, 8)
        assert (got.vertices, got.scores) \
            == (baseline.vertices, baseline.scores)

        assert IndexStore(tmp_path).convert("json") == 2
        store3 = IndexStore(tmp_path)
        version = store3.current(graph)
        assert version.codec_of("tsd") == "json"
        got = store3.load(graph).tsd.top_r(3, 8)
        assert (got.vertices, got.scores) \
            == (baseline.vertices, baseline.scores)
        assert IndexStore(tmp_path).convert("json") == 0  # no-op

    def test_convert_rewires_carried_forward_references(self, graph,
                                                        tmp_path):
        """Two versions sharing one carried-forward artifact file must
        both point at the single converted file afterwards."""
        from repro.service.store import IndexStore
        store = IndexStore(tmp_path)
        store.put(graph, tsd=TSDIndex.build(graph),
                  gct=GCTIndex.build(graph))
        store.put(graph, gct=GCTIndex.build(graph))  # tsd carried
        assert IndexStore(tmp_path).convert("bin") == 3  # tsd once
        store2 = IndexStore(tmp_path)
        v1, v2 = store2.versions(store2.current(graph).key)
        assert v1.artifacts["tsd"] == v2.artifacts["tsd"]
        assert v2.codec_of("tsd") == "bin"
        assert (store2.root / v2.artifacts["tsd"]).is_file()

    def test_update_batch_delta_writes_under_bin(self, graph, tmp_path):
        """The service's apply_updates path reaches write_delta: the
        re-versioned artifact accounts dead bytes for the superseded
        records and still round-trips every ranking."""
        from repro.service import DiversityService
        from repro.service.store import IndexStore
        store = IndexStore(tmp_path, codec="bin")
        service = DiversityService.start(graph, store=store)
        edge = next(iter(graph.edges()))
        service.apply_updates([("delete", edge[0], edge[1])])
        version = store.current(service.snapshot.graph_view,
                                key=service.snapshot.key)
        with ArtifactReader(store.root / version.artifacts["tsd"]) as r:
            assert r.stats()["dead_bytes"] > 0
            r.verify_checksum()
        after = service.top_r(3, graph.num_vertices)
        warm = DiversityService.warm(service.snapshot.graph,
                                     IndexStore(tmp_path))
        got = warm.top_r(3, graph.num_vertices)
        assert (got.vertices, got.scores) == (after.vertices, after.scores)

    def test_store_compact_rewrites_bin_pages(self, graph, tmp_path):
        from repro.service import DiversityService
        from repro.service.store import IndexStore
        store = IndexStore(tmp_path, codec="bin")
        service = DiversityService.start(graph, store=store)
        edge = next(iter(graph.edges()))
        service.apply_updates([("delete", edge[0], edge[1])])
        key = service.snapshot.key
        IndexStore(tmp_path).compact(keep=[key])
        store2 = IndexStore(tmp_path)
        version = store2.current(service.snapshot.graph_view, key=key)
        with ArtifactReader(store2.root / version.artifacts["tsd"]) as r:
            assert r.stats()["dead_bytes"] == 0
            r.verify_checksum()

    def test_manifest_parse_cache_hits_on_unchanged_file(self, graph,
                                                         tmp_path):
        from repro.service.store import IndexStore
        store = IndexStore(tmp_path)
        store.put(graph, tsd=TSDIndex.build(graph))
        first = store._read_manifest()
        assert store._read_manifest() is first  # stamp unchanged: cached

    def test_manifest_cache_sees_foreign_writes(self, graph, tmp_path):
        """A second store instance committing to the same root must
        invalidate the first instance's parse cache (mtime/size stamp)."""
        from repro.service.store import IndexStore
        store_a = IndexStore(tmp_path)
        store_b = IndexStore(tmp_path)
        store_a.put(graph, tsd=TSDIndex.build(graph))
        other = erdos_renyi(9, 0.5, seed=33)
        store_b.put(other, tsd=TSDIndex.build(other))
        store_a.refresh()
        assert store_a.has(other)
