"""Tests for ego-network extraction (Definition 1 and Algorithm 7 lines 1-4)."""

from hypothesis import given

from repro.graph.graph import Graph
from repro.graph.egonet import (
    ego_network,
    ego_edge_count,
    all_ego_networks,
    iter_ego_edge_lists,
)

from tests.conftest import graph_strategy, complete_graph


class TestEgoNetwork:
    def test_excludes_center(self, figure1):
        ego = ego_network(figure1, "v")
        assert "v" not in ego

    def test_paper_example_vertices(self, figure1):
        ego = ego_network(figure1, "v")
        assert set(ego.vertices()) == {
            "x1", "x2", "x3", "x4", "y1", "y2", "y3", "y4",
            "r1", "r2", "r3", "r4", "r5", "r6"}

    def test_paper_example_edges(self, figure1):
        ego = ego_network(figure1, "v")
        # 6 + 6 + 2 edges in H1, 12 in the octahedron H2.
        assert ego.num_edges == 26
        assert ego.has_edge("x2", "y1")
        assert not ego.has_edge("x1", "s1")  # s1 is outside the ego

    def test_isolated_neighbors_kept(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        ego = ego_network(g, 0)
        assert set(ego.vertices()) == {1, 2}
        assert ego.num_edges == 0

    def test_complete_graph_ego(self):
        ego = ego_network(complete_graph(5), 0)
        assert ego.num_vertices == 4
        assert ego.num_edges == 6

    @given(graph_strategy())
    def test_ego_is_induced_subgraph(self, g):
        for v in list(g.vertices())[:5]:
            ego = ego_network(g, v)
            assert set(ego.vertices()) == set(g.neighbors(v))
            assert ego == g.induced_subgraph(g.neighbors(v))

    @given(graph_strategy())
    def test_ego_edge_count_matches(self, g):
        for v in list(g.vertices())[:5]:
            assert ego_edge_count(g, v) == ego_network(g, v).num_edges


class TestGlobalExtraction:
    @given(graph_strategy())
    def test_all_ego_networks_match_per_vertex(self, g):
        egos = all_ego_networks(g)
        assert set(egos) == set(g.vertices())
        for v in g.vertices():
            assert egos[v] == ego_network(g, v)

    @given(graph_strategy())
    def test_edge_lists_match(self, g):
        for v, edges in iter_ego_edge_lists(g):
            direct = ego_network(g, v)
            assert len(edges) == direct.num_edges
            for u, w in edges:
                assert direct.has_edge(u, w)

    def test_total_ego_edges_is_three_triangles(self, figure1):
        from repro.graph.triangles import triangle_count
        total = sum(len(edges) for _, edges in iter_ego_edge_lists(figure1))
        assert total == 3 * triangle_count(figure1)
