"""Seeded random-graph differential harness: every surface, one answer.

The canonical ranking contract says all five search methods return the
*identical* ranked vertex list.  The targeted tests pin that on
hand-built graphs; this harness pins it on a randomized family — ~30
seeded Erdős–Rényi / planted-clique / star-heavy graphs — across every
serving surface the system has grown:

* the five methods + ``auto`` through :class:`QueryEngine`,
* the immutable :class:`Snapshot` the service layer serves from,
* the process-sharded cluster **over the wire** (worker processes
  behind the consistent-hash frontend).

Sweeps include the adversarial corners: ``r > n`` (zero-fill past the
scored vertices), ``k`` above the maximum trussness (all-zero
rankings, ties broken purely by insertion order), and graphs with no
edges at all.  Everything is seeded — a failure reproduces exactly.
"""

import json
import random

import pytest

from repro.graph.graph import Graph
from repro.core.online import online_search
from repro.datasets.synthetic import add_planted_cliques, erdos_renyi
from repro.engine import QueryEngine
from repro.service.snapshot import Snapshot
from repro.cluster import ShardedCluster
from repro.server import ServerClient

#: Trussness thresholds swept per graph; 40 exceeds every graph's
#: maximum trussness in this family (the biggest planted clique is 7).
K_SWEEP = (2, 3, 4, 5, 40)


def _star_heavy(num_hubs: int, leaves_per_hub: int, seed: int) -> Graph:
    """A few high-degree hubs, mostly degree-1 leaves, a thin layer of
    triangles — the degenerate-ego regime (scores 0/1 everywhere, huge
    zero-fill tails) that stresses tie-breaking, not trussness."""
    rng = random.Random(seed)
    g = Graph()
    for h in range(num_hubs):
        hub = f"hub{h}"
        leaves = [f"h{h}_l{i}" for i in range(leaves_per_hub)]
        for leaf in leaves:
            g.add_edge(hub, leaf)
        # Close a few triangles so some contexts are non-trivial.
        for _ in range(max(1, leaves_per_hub // 4)):
            a, b = rng.sample(leaves, 2)
            g.add_edge(a, b)
    for h in range(num_hubs - 1):
        g.add_edge(f"hub{h}", f"hub{h + 1}")
    return g


def _graph_family():
    """The ~30 seeded graphs under differential test."""
    graphs = []
    for i, (n, p) in enumerate([(8, 0.2), (12, 0.3), (16, 0.25),
                                (16, 0.5), (20, 0.2), (20, 0.4),
                                (24, 0.15), (24, 0.3), (28, 0.2),
                                (28, 0.35), (14, 0.6), (10, 0.8)]):
        graphs.append((f"er{i}", erdos_renyi(n, p, seed=100 + i)))
    for i, (n, p, sizes) in enumerate([(14, 0.1, [5]), (18, 0.12, [6, 4]),
                                       (20, 0.1, [7]), (22, 0.15, [5, 5]),
                                       (24, 0.08, [6]), (16, 0.2, [4, 4]),
                                       (26, 0.1, [7, 3]), (20, 0.05, [5])]):
        base = erdos_renyi(n, p, seed=200 + i)
        graphs.append((f"pc{i}", add_planted_cliques(base, sizes,
                                                     seed=300 + i)))
    for i, (hubs, leaves) in enumerate([(2, 10), (3, 8), (1, 20), (4, 6),
                                        (2, 15), (3, 12), (5, 5), (1, 12)]):
        graphs.append((f"star{i}", _star_heavy(hubs, leaves, seed=400 + i)))
    graphs.append(("noedges", Graph(vertices=range(7))))
    graphs.append(("void", Graph()))
    return graphs


FAMILY = _graph_family()


def _sweep(graph: Graph):
    """(k, r) pairs for one graph, r > n included."""
    n = graph.num_vertices
    return [(k, r) for k in K_SWEEP for r in (1, 3, n + 7)]


def _canonical(result):
    return list(zip(result.vertices, result.scores))


def _reference(graph: Graph):
    """The baseline's answers, the differential oracle for one graph."""
    return {(k, r): _canonical(online_search(graph, k, r))
            for k, r in _sweep(graph)}


@pytest.fixture(scope="module", params=[name for name, _ in FAMILY])
def case(request):
    graph = dict(FAMILY)[request.param]
    return request.param, graph, _reference(graph)


@pytest.fixture(scope="module")
def family_cluster():
    """One 2-worker cluster hosting the whole family (spawning a fleet
    per graph would swamp the suite; placement still spans workers)."""
    with ShardedCluster(workers=2, supervise=False).start(port=0) as cluster:
        for name, graph in FAMILY:
            cluster.add_graph(name, graph=graph)
        client = ServerClient(cluster.url)
        placements = {cluster.owner(name) for name, _ in FAMILY}
        assert placements == {0, 1}, \
            "family should span both workers for a meaningful test"
        yield client
        client.close()


class TestDifferentialRankings:
    def test_five_methods_and_auto_agree(self, case):
        name, graph, reference = case
        engine = QueryEngine(graph)
        for k, r in _sweep(graph):
            for method in ("baseline", "bound", "tsd", "gct", "hybrid",
                           "auto"):
                result = engine.top_r(k, r, method=method)
                assert _canonical(result) == reference[(k, r)], \
                    (name, method, k, r)

    def test_snapshot_serves_the_same_rankings(self, case):
        name, graph, reference = case
        snapshot = Snapshot.build(graph)
        for k, r in _sweep(graph):
            result = snapshot.top_r(k, r, collect_contexts=False)
            assert _canonical(result) == reference[(k, r)], (name, k, r)

    def test_mmap_warm_start_serves_the_same_rankings(self, case,
                                                      tmp_path_factory):
        """A service warm-started from a ``codec="bin"`` store — lazy
        mmap-backed indexes, no materialised forests — answers every
        sweep query rank-identically to the online baseline."""
        from repro.service import DiversityService
        from repro.service.store import IndexStore
        name, graph, reference = case
        root = tmp_path_factory.mktemp(f"binstore-{name}")
        DiversityService.start(graph, store=IndexStore(root, codec="bin"))
        warm = DiversityService.start(graph,
                                      store=IndexStore(root, codec="bin"))
        assert warm.warm_started, name
        for k, r in _sweep(graph):
            result = warm.top_r(k, r, collect_contexts=False)
            assert _canonical(result) == reference[(k, r)], (name, k, r)

    def test_cluster_wire_serves_the_same_rankings(self, case,
                                                   family_cluster):
        """End to end: worker process, HTTP, consistent-hash proxy —
        the bytes that reach a remote client carry the same canonical
        ranking the in-process baseline computes."""
        name, graph, reference = case
        for k, r in _sweep(graph):
            wire = family_cluster.top_r(name, k=k, r=r)
            wire_ranked = [(tuple(v) if isinstance(v, list) else v, s)
                           for v, s in zip(wire["vertices"],
                                           wire["scores"])]
            assert wire_ranked == reference[(k, r)], (name, k, r)

    def test_rankings_are_exact_json_round_trips(self, case,
                                                 family_cluster):
        """Byte-level check: the wire body's vertices/scores JSON equals
        the JSON encoding of the in-process answer (no float drift, no
        re-ordering in serialisation)."""
        name, graph, reference = case
        k, r = 3, graph.num_vertices + 7
        wire = family_cluster.top_r(name, k=k, r=r)
        expected = online_search(graph, k, r)
        assert json.dumps(wire["vertices"]) == \
            json.dumps([list(v) if isinstance(v, tuple) else v
                        for v in expected.vertices])
        assert json.dumps(wire["scores"]) == json.dumps(expected.scores)

    def test_zero_fill_tail_is_insertion_ordered(self, case):
        """For k above max trussness every score is 0 and the ranking
        must be exactly graph insertion order — the tie-break leg of
        the canonical contract, isolated."""
        name, graph, reference = case
        n = graph.num_vertices
        answer = reference[(40, n + 7)]
        assert answer == [(v, 0) for v in graph.vertices()], name

    def test_r_beyond_n_returns_every_vertex_once(self, case):
        name, graph, reference = case
        n = graph.num_vertices
        for k in K_SWEEP:
            answer = reference[(k, n + 7)]
            assert len(answer) == n, (name, k)
            assert len({v for v, _ in answer}) == n, (name, k)
