"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, build_parser
from repro.graph.graph import Graph
from repro.graph.io import write_edge_list, write_json_graph
from repro.datasets.paper import figure1_graph


@pytest.fixture
def figure1_file(tmp_path):
    """Figure 1 graph with integer labels, as an edge-list file."""
    g = figure1_graph()
    relabel = {v: i for i, v in enumerate(g.vertices())}
    relabelled = Graph(edges=[(relabel[u], relabel[v]) for u, v in g.edges()])
    path = tmp_path / "figure1.txt"
    write_edge_list(relabelled, path)
    return str(path), relabel["v"]


class TestStats:
    def test_stats(self, figure1_file, capsys):
        path, _ = figure1_file
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "17" in out and "43" in out

    def test_stats_fast(self, figure1_file, capsys):
        path, _ = figure1_file
        assert main(["stats", path, "--fast"]) == 0
        assert "-" in capsys.readouterr().out


class TestTopr:
    @pytest.mark.parametrize("method", ["baseline", "bound", "tsd", "gct",
                                        "hybrid", "auto"])
    def test_methods_agree(self, figure1_file, capsys, method):
        path, v_id = figure1_file
        assert main(["topr", path, "-k", "4", "-r", "1",
                     "--method", method]) == 0
        out = capsys.readouterr().out
        assert f"{v_id}: score=3" in out

    def test_auto_prints_planner_reason(self, figure1_file, capsys):
        path, _ = figure1_file
        assert main(["topr", path, "-k", "4", "-r", "1",
                     "--method", "auto"]) == 0
        assert "planner:" in capsys.readouterr().out

    def test_contexts_flag(self, figure1_file, capsys):
        path, _ = figure1_file
        assert main(["topr", path, "-k", "4", "-r", "1", "--contexts"]) == 0
        assert "context:" in capsys.readouterr().out


class TestEngineStats:
    def test_engine_stats_workload(self, figure1_file, capsys):
        path, v_id = figure1_file
        assert main(["engine-stats", path,
                     "--queries", "4:1,3:2,4:3"]) == 0
        out = capsys.readouterr().out
        assert "queries served:    3" in out
        assert "planner decisions" in out
        assert "score-map cache" in out
        assert f"{v_id!r}:3" in out or "top=" in out

    def test_engine_stats_forced_method(self, figure1_file, capsys):
        path, _ = figure1_file
        assert main(["engine-stats", path, "--queries", "4:1",
                     "--method", "baseline"]) == 0
        assert "baseline=1" in capsys.readouterr().out


class TestScore:
    def test_score(self, figure1_file, capsys):
        path, v_id = figure1_file
        assert main(["score", path, str(v_id), "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "= 3" in out
        assert out.count("context:") == 3


class TestIndexCommands:
    def test_build_and_query_tsd(self, figure1_file, tmp_path, capsys):
        path, v_id = figure1_file
        out_path = str(tmp_path / "tsd.json")
        assert main(["build-index", path, out_path, "--type", "tsd"]) == 0
        assert main(["query-index", out_path, "-k", "4", "-r", "1"]) == 0
        assert f"{v_id}: score=3" in capsys.readouterr().out

    def test_build_and_query_gct(self, figure1_file, tmp_path, capsys):
        path, v_id = figure1_file
        out_path = str(tmp_path / "gct.json")
        assert main(["build-index", path, out_path, "--type", "gct"]) == 0
        assert main(["query-index", out_path, "-k", "4", "-r", "1"]) == 0
        assert f"{v_id}: score=3" in capsys.readouterr().out


class TestServeCommands:
    def test_serve_build_then_warm(self, figure1_file, tmp_path, capsys):
        path, v_id = figure1_file
        store = str(tmp_path / "store")
        assert main(["serve-build", path, store]) == 0
        out = capsys.readouterr().out
        assert "stored tsd, gct, hybrid" in out and "as v1" in out
        assert main(["serve-warm", path, store, "--queries", "4:1"]) == 0
        out = capsys.readouterr().out
        assert f"{v_id}:3" in out
        assert "warm (from store)" in out

    def test_serve_warm_unknown_graph_fails(self, figure1_file, tmp_path,
                                            capsys):
        path, _ = figure1_file
        store = str(tmp_path / "store")
        assert main(["serve-warm", path, store]) == 1
        assert "serve-build" in capsys.readouterr().err

    def test_serve_warm_with_updates(self, figure1_file, tmp_path, capsys):
        path, v_id = figure1_file
        store = str(tmp_path / "store")
        assert main(["serve-build", path, store]) == 0
        capsys.readouterr()
        assert main(["serve-warm", path, store, "--queries", "4:1",
                     "--updates", "+0:1000,-0:1000"]) == 0
        out = capsys.readouterr().out
        assert "applied 2 update(s)" in out
        assert "updates applied:   2" in out

    def test_serve_build_artifact_subset(self, figure1_file, tmp_path,
                                         capsys):
        path, _ = figure1_file
        store = str(tmp_path / "store")
        assert main(["serve-build", path, store, "--artifacts", "gct"]) == 0
        assert "stored gct" in capsys.readouterr().out

    def test_bad_update_spec(self, figure1_file, tmp_path):
        from repro.errors import InvalidParameterError
        path, _ = figure1_file
        store = str(tmp_path / "store")
        assert main(["serve-build", path, store]) == 0
        with pytest.raises(InvalidParameterError):
            main(["serve-warm", path, store, "--updates", "bogus"])

    def test_serve_build_bin_codec_then_warm(self, figure1_file, tmp_path,
                                             capsys):
        path, v_id = figure1_file
        store = str(tmp_path / "store")
        assert main(["serve-build", path, store, "--codec", "bin"]) == 0
        capsys.readouterr()
        assert main(["serve-warm", path, store, "--queries", "4:1"]) == 0
        out = capsys.readouterr().out
        assert f"{v_id}:3" in out
        assert "warm (from store)" in out


class TestStoreCodecCommands:
    @pytest.fixture
    def built_store(self, figure1_file, tmp_path, capsys):
        path, v_id = figure1_file
        store = str(tmp_path / "store")
        assert main(["serve-build", path, store]) == 0
        capsys.readouterr()
        return path, store, v_id

    def test_convert_index_round_trip(self, built_store, capsys):
        path, store, v_id = built_store
        assert main(["convert-index", store, "--to", "bin"]) == 0
        assert "converted 2 artifact file(s)" in capsys.readouterr().out
        assert main(["serve-warm", path, store, "--queries", "4:1"]) == 0
        out = capsys.readouterr().out
        assert f"{v_id}:3" in out and "warm (from store)" in out
        assert main(["convert-index", store, "--to", "json"]) == 0
        capsys.readouterr()
        assert main(["serve-warm", path, store, "--queries", "4:1"]) == 0
        assert f"{v_id}:3" in capsys.readouterr().out

    def test_store_inspect_root(self, built_store, capsys):
        _, store, _ = built_store
        assert main(["store-inspect", store]) == 0
        out = capsys.readouterr().out
        assert "graph lineage(s)" in out
        assert "tsd[json" in out

    def test_store_inspect_bin_artifact(self, built_store, capsys):
        from pathlib import Path
        _, store, _ = built_store
        assert main(["convert-index", store, "--to", "bin"]) == 0
        capsys.readouterr()
        artifact = next(Path(store).rglob("tsd.bin"))
        assert main(["store-inspect", str(artifact), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "num_vertices" in out and "17" in out
        assert "checksum: ok" in out

    def test_store_inspect_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"not an artifact")
        assert main(["store-inspect", str(bogus)]) == 1
        assert "error" in capsys.readouterr().err


class TestSparsifyCommand:
    def test_sparsify(self, figure1_file, tmp_path, capsys):
        path, _ = figure1_file
        out_path = str(tmp_path / "reduced.txt")
        assert main(["sparsify", path, out_path, "-k", "4"]) == 0
        assert "removed" in capsys.readouterr().out


class TestGenerate:
    def test_generate_json(self, tmp_path, capsys):
        out_path = str(tmp_path / "wiki.json")
        assert main(["generate", "wiki-vote", out_path]) == 0
        payload = json.loads((tmp_path / "wiki.json").read_text())
        assert payload["format"] == "repro-graph"

    def test_generate_edge_list(self, tmp_path, capsys):
        out_path = str(tmp_path / "wiki.txt")
        assert main(["generate", "wiki-vote", out_path]) == 0
        assert "|V|" in capsys.readouterr().out


class TestCommunities:
    def test_communities(self, tmp_path, capsys):
        from repro.datasets.paper import figure18_graph
        g = figure18_graph()
        relabel = {v: i for i, v in enumerate(g.vertices())}
        relabelled = Graph(edges=[(relabel[u], relabel[v])
                                  for u, v in g.edges()])
        path = str(tmp_path / "f18.txt")
        write_edge_list(relabelled, path)
        assert main(["communities", path, str(relabel["q1"]),
                     "-k", "4", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "1 k-truss communities" in out


class TestAnalyze:
    def test_analyze(self, figure1_file, capsys):
        path, _ = figure1_file
        assert main(["analyze", path, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "structural diversity at k=4" in out
        assert "max score: 3" in out


class TestDot:
    def test_dot_export(self, figure1_file, tmp_path, capsys):
        path, v_id = figure1_file
        out_path = str(tmp_path / "ego.dot")
        assert main(["dot", path, str(v_id), out_path, "-k", "4"]) == 0
        text = (tmp_path / "ego.dot").read_text()
        assert text.startswith("graph")
        assert "palegreen" in text
        assert "3 social context(s)" in capsys.readouterr().out

    def test_dot_with_center(self, figure1_file, tmp_path, capsys):
        path, v_id = figure1_file
        out_path = str(tmp_path / "ego2.dot")
        assert main(["dot", path, str(v_id), out_path, "-k", "4",
                     "--center"]) == 0
        assert f'"{v_id}"' in (tmp_path / "ego2.dot").read_text()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_json_graph_loading(self, tmp_path, capsys):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        path = str(tmp_path / "tri.json")
        write_json_graph(g, path)
        # Ego of "a" is the single edge (b, c): one 2-truss context.
        assert main(["score", path, "a", "-k", "2"]) == 0
        assert "= 1" in capsys.readouterr().out


class TestReplicate:
    def _seed_store(self, tmp_path):
        from repro.service.service import DiversityService
        from repro.service.store import IndexStore
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        DiversityService.cold(g, store=IndexStore(tmp_path / "primary",
                                                  codec="bin"))
        return str(tmp_path / "primary"), str(tmp_path / "replica")

    def test_replicate_then_idempotent_pass(self, tmp_path, capsys):
        source, dest = self._seed_store(tmp_path)
        assert main(["replicate", source, dest]) == 0
        out = capsys.readouterr().out
        assert "replicated 1 lineage(s)" in out
        # Second pass ships nothing: every artifact verifies in place.
        assert main(["replicate", source, dest]) == 0
        assert "0 B shipped" in capsys.readouterr().out

    def test_replicate_unknown_key(self, tmp_path, capsys):
        source, dest = self._seed_store(tmp_path)
        assert main(["replicate", source, dest, "--key", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_replicate_missing_source(self, tmp_path, capsys):
        assert main(["replicate", str(tmp_path / "nowhere"),
                     str(tmp_path / "replica")]) == 1
        assert "error" in capsys.readouterr().err

    def test_serve_replicas_requires_workers(self, tmp_path, capsys):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        path = str(tmp_path / "tri.txt")
        write_edge_list(g, path)
        assert main(["serve", "--http", "0", "--graph", f"tri={path}",
                     "--replicas", "1"]) == 1
        assert "--workers" in capsys.readouterr().err

    def test_serve_replicas_negative(self, tmp_path, capsys):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        path = str(tmp_path / "tri.txt")
        write_edge_list(g, path)
        assert main(["serve", "--http", "0", "--graph", f"tri={path}",
                     "--workers", "1", "--replicas", "-2"]) == 1
        assert ">= 0" in capsys.readouterr().err
