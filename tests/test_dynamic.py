"""Tests for dynamic maintenance: DynamicTSDIndex and DynamicTrussIndex."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.core.dynamic import DynamicTSDIndex
from repro.core.tsd import TSDIndex
from repro.truss.dynamic import DynamicTrussIndex
from repro.truss.decomposition import truss_decomposition

from tests.conftest import dense_graph_strategy, random_graph


def _assert_index_fresh(dyn: DynamicTSDIndex) -> None:
    """The maintained index must equal a from-scratch rebuild."""
    rebuilt = TSDIndex.build(dyn.graph)
    for v in dyn.graph.vertices():
        for k in (2, 3, 4, 5):
            assert dyn.score(v, k) == rebuilt.score(v, k), (v, k)


class TestDynamicTSD:
    def test_insert_updates_scores(self, planted):
        dyn = DynamicTSDIndex(planted)
        before = dyn.score("ego", 3)
        # Add a new clique around the ego.
        for i in range(4):
            dyn.insert_edge("ego", f"new_{i}")
        for i in range(4):
            for j in range(i + 1, 4):
                dyn.insert_edge(f"new_{i}", f"new_{j}")
        assert dyn.score("ego", 3) == before + 1

    def test_delete_reverts(self, triangle):
        dyn = DynamicTSDIndex(triangle)
        dyn.insert_edge(0, 3)
        dyn.insert_edge(1, 3)
        dyn.insert_edge(2, 3)  # now K4
        assert dyn.score(0, 3) == 1
        dyn.delete_edge(2, 3)
        _assert_index_fresh(dyn)

    def test_duplicate_insert_raises(self, triangle):
        dyn = DynamicTSDIndex(triangle)
        with pytest.raises(GraphError):
            dyn.insert_edge(0, 1)

    def test_input_graph_not_mutated(self, triangle):
        dyn = DynamicTSDIndex(triangle)
        dyn.insert_edge(0, 9)
        assert 9 not in triangle

    def test_new_vertex_indexed(self, triangle):
        dyn = DynamicTSDIndex(triangle)
        dyn.insert_edge(0, 99)
        assert dyn.score(99, 2) == 0
        dyn.insert_edge(1, 99)
        # 99's ego now holds edge (0,1): one 2-truss context.
        assert dyn.score(99, 2) == 1

    def test_rebuild_counter_locality(self):
        """Maintenance touches only {u, v} + common neighbours."""
        g = random_graph(30, 0.15, seed=5)
        dyn = DynamicTSDIndex(g)
        u, v = 0, 1
        if dyn.graph.has_edge(u, v):
            dyn.delete_edge(u, v)
        common = len(g.common_neighbors(u, v))
        before = dyn.rebuilt_vertices
        dyn.insert_edge(u, v)
        assert dyn.rebuilt_vertices - before <= 2 + common

    @given(dense_graph_strategy(max_vertices=8),
           st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=6))
    @settings(max_examples=15)
    def test_random_edit_sequence_stays_fresh(self, g, edits):
        dyn = DynamicTSDIndex(g)
        for u, v in edits:
            if u == v:
                continue
            if dyn.graph.has_edge(u, v):
                dyn.delete_edge(u, v)
            else:
                dyn.insert_edge(u, v)
        _assert_index_fresh(dyn)

    def test_top_r_passthrough(self, figure1):
        dyn = DynamicTSDIndex(figure1)
        result = dyn.top_r(4, 1)
        assert result.vertices == ["v"]
        assert dyn.contexts("v", 4)


class TestDynamicTruss:
    def test_initial_state(self, h1):
        dyn = DynamicTrussIndex(h1)
        assert dyn.trussness("x2", "y1") == 3
        assert dyn.trussness("x1", "x2") == 4

    def test_insert_strengthens_bridge(self, h1):
        dyn = DynamicTrussIndex(h1)
        # Completing more x-y triangles lifts the bridges' trussness.
        dyn.insert_edge("x1", "y1")
        dyn.insert_edge("x3", "y1")
        expected = truss_decomposition(dyn.graph)
        assert dyn.all_trussness() == expected

    def test_delete_weakens(self, k4):
        dyn = DynamicTrussIndex(k4)
        dyn.delete_edge(0, 1)
        expected = truss_decomposition(dyn.graph)
        assert dyn.all_trussness() == expected

    def test_duplicate_insert_raises(self, triangle):
        dyn = DynamicTrussIndex(triangle)
        with pytest.raises(GraphError):
            dyn.insert_edge(0, 1)

    def test_lazy_component_scoping(self):
        """Edits in one component never trigger work in another."""
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)])
        dyn = DynamicTrussIndex(g)
        dyn.insert_edge(0, 3)
        dyn.trussness(0, 3)  # refresh happens here
        first = dyn.recomputed_edges
        # Component {10,11,12} has 3 edges; the dirty component had 4.
        assert first == 4

    @given(dense_graph_strategy(max_vertices=8),
           st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=6))
    @settings(max_examples=15)
    def test_random_edits_match_rebuild(self, g, edits):
        dyn = DynamicTrussIndex(g)
        for u, v in edits:
            if u == v:
                continue
            if dyn.graph.has_edge(u, v):
                dyn.delete_edge(u, v)
            else:
                dyn.insert_edge(u, v)
        assert dyn.all_trussness() == truss_decomposition(dyn.graph)
