"""Cross-method equivalence: baseline, bound, TSD, GCT, Hybrid.

The defining property of the whole system: every search method answers
the same top-r problem, so on any graph and any (k, r) their answer
*score multisets* must be identical, and every claimed score must equal
a from-scratch Algorithm 2 computation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.online import online_search
from repro.core.bound import bound_search
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher
from repro.core.diversity import structural_diversity

from tests.conftest import dense_graph_strategy, graph_strategy


def _all_results(graph, k, r):
    tsd = TSDIndex.build(graph)
    return [
        online_search(graph, k, r),
        bound_search(graph, k, r),
        tsd.top_r(k, r),
        GCTIndex.build(graph).top_r(k, r),
        HybridSearcher.precompute(graph, index=tsd).top_r(k, r),
    ]


class TestPaperExamples:
    def test_example2_baseline(self, figure1):
        result = online_search(figure1, 4, 1)
        assert result.vertices == ["v"]
        assert result.scores == [3]
        assert result.search_space == 17  # |V| invocations, Example 2

    def test_example3_bound_prunes_to_one(self, figure1):
        """Example 3: the bound framework computes only one score."""
        result = bound_search(figure1, 4, 1)
        assert result.vertices == ["v"]
        assert result.search_space == 1

    def test_all_methods_top1(self, figure1):
        for result in _all_results(figure1, 4, 1):
            assert result.scores == [3], result.method
            assert result.vertices == ["v"], result.method

    def test_contexts_returned_by_all(self, figure1):
        expected = {
            frozenset({"x1", "x2", "x3", "x4"}),
            frozenset({"y1", "y2", "y3", "y4"}),
            frozenset({"r1", "r2", "r3", "r4", "r5", "r6"})}
        for result in _all_results(figure1, 4, 1):
            assert set(result.entries[0].contexts) == expected, result.method


class TestCrossMethodEquivalence:
    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4]),
           st.sampled_from([1, 2, 5]))
    @settings(max_examples=25)
    def test_same_score_multisets(self, g, k, r):
        results = _all_results(g, k, r)
        expected = sorted(results[0].scores, reverse=True)
        for result in results[1:]:
            assert sorted(result.scores, reverse=True) == expected, result.method

    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4]))
    @settings(max_examples=20)
    def test_claimed_scores_are_correct(self, g, k):
        for result in _all_results(g, k, 3):
            for entry in result.entries:
                assert entry.score == structural_diversity(g, entry.vertex, k), \
                    result.method

    @given(dense_graph_strategy())
    @settings(max_examples=20)
    def test_entries_sorted_descending(self, g):
        for result in _all_results(g, 3, 4):
            scores = result.scores
            assert scores == sorted(scores, reverse=True), result.method

    @given(dense_graph_strategy())
    @settings(max_examples=15)
    def test_r_entries_returned(self, g):
        r = min(3, g.num_vertices)
        for result in _all_results(g, 3, r):
            assert len(result.entries) == r, result.method


class TestValidation:
    def test_bad_k(self, figure1):
        with pytest.raises(InvalidParameterError):
            online_search(figure1, 1, 1)
        with pytest.raises(InvalidParameterError):
            bound_search(figure1, 0, 1)

    def test_bad_r(self, figure1):
        with pytest.raises(InvalidParameterError):
            online_search(figure1, 3, 0)
        with pytest.raises(InvalidParameterError):
            bound_search(figure1, 3, -1)

    def test_r_capped_at_n(self, triangle):
        result = online_search(triangle, 3, 100)
        assert len(result.entries) == 3


class TestSearchSpace:
    def test_bound_never_explores_more_than_baseline(self, medium_graph):
        for k in (3, 4, 5):
            base = online_search(medium_graph, k, 10, collect_contexts=False)
            pruned = bound_search(medium_graph, k, 10, collect_contexts=False)
            assert pruned.search_space <= base.search_space

    def test_tsd_never_explores_more_than_bound(self, medium_graph):
        index = TSDIndex.build(medium_graph)
        for k in (3, 4):
            pruned = bound_search(medium_graph, k, 10, collect_contexts=False)
            tsd = index.top_r(k, 10, collect_contexts=False)
            assert tsd.search_space <= pruned.search_space + medium_graph.num_vertices
            # The headline claim: TSD prunes at least as well in practice.
            assert tsd.search_space <= max(pruned.search_space,
                                           medium_graph.num_vertices)
