"""Tests for the Linear Threshold diffusion model."""

import random

import pytest

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.influence.lt import (
    simulate_lt_cascade,
    lt_activation_probabilities,
    lt_monte_carlo_spread,
)

from tests.conftest import complete_graph


class TestSimulateLT:
    def test_seeds_at_round_zero(self, figure1):
        rng = random.Random(0)
        active = simulate_lt_cascade(figure1, ["v"], rng)
        assert active["v"] == 0

    def test_deterministic_with_seeded_rng(self, medium_graph):
        a = simulate_lt_cascade(medium_graph, [0, 1], random.Random(3))
        b = simulate_lt_cascade(medium_graph, [0, 1], random.Random(3))
        assert a == b

    def test_unknown_seeds_ignored(self, triangle):
        assert simulate_lt_cascade(triangle, [99], random.Random(0)) == {}

    def test_fully_seeded_neighborhood_activates(self):
        """A vertex whose every neighbour is a seed has active weight 1,
        which meets any threshold drawn from [0, 1)."""
        g = Graph(edges=[(0, 2), (1, 2)])
        for seed in range(10):
            active = simulate_lt_cascade(g, [0, 1], random.Random(seed))
            assert 2 in active

    def test_monotone_in_seed_set(self, medium_graph):
        """More seeds never shrink the cascade (LT is monotone) when the
        same thresholds are drawn — approximate check via spreads."""
        small = lt_monte_carlo_spread(medium_graph, [0], runs=100, seed=1)
        large = lt_monte_carlo_spread(medium_graph, [0, 1, 2, 3], runs=100,
                                      seed=1)
        assert large >= small

    def test_cascade_within_component(self):
        g = Graph(edges=[(0, 1), (5, 6)])
        active = simulate_lt_cascade(g, [0], random.Random(2))
        assert 5 not in active and 6 not in active

    def test_rounds_increase_from_seeds(self, medium_graph):
        active = simulate_lt_cascade(medium_graph, [0], random.Random(7))
        assert all(r >= 0 for r in active.values())
        non_seed_rounds = [r for v, r in active.items() if v != 0]
        assert all(r >= 1 for r in non_seed_rounds)


class TestEstimators:
    def test_probabilities_range(self, medium_graph):
        targets = list(medium_graph.vertices())[:20]
        probs = lt_activation_probabilities(medium_graph, [0, 1], targets,
                                            runs=50, seed=1)
        assert set(probs) == set(targets)
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    def test_seed_probability_is_one(self, medium_graph):
        probs = lt_activation_probabilities(medium_graph, [0], [0],
                                            runs=20, seed=1)
        assert probs[0] == 1.0

    def test_spread_bounds(self):
        g = complete_graph(8)
        spread = lt_monte_carlo_spread(g, [0], runs=100, seed=1)
        assert 1.0 <= spread <= 8.0

    def test_runs_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            lt_monte_carlo_spread(triangle, [0], runs=0)
        with pytest.raises(InvalidParameterError):
            lt_activation_probabilities(triangle, [0], [1], runs=0)
