"""End-to-end integration: the full user workflow across subsystems.

Exercises the pipeline a downstream user would run: generate data,
persist it, build and persist indexes, query them, search communities,
analyse the score distribution, simulate contagion — asserting
consistency at every hand-off.
"""

import pytest

from repro import (
    CompDivModel,
    GCTIndex,
    Graph,
    TSDIndex,
    TrussDivModel,
    bound_search,
    online_search,
    read_edge_list,
)
from repro.analysis import summarize_scores
from repro.community import TCPIndex, truss_communities
from repro.core.dynamic import DynamicTSDIndex
from repro.datasets import powerlaw_cluster, add_planted_cliques
from repro.graph.io import write_edge_list
from repro.influence import ris_seeds, activated_among_targets
from repro.viz import ego_network_to_dot


@pytest.fixture(scope="module")
def pipeline_graph():
    base = powerlaw_cluster(250, 4, 0.5, seed=77)
    return add_planted_cliques(base, [9, 7, 6, 6], seed=78)


class TestEndToEnd:
    def test_full_pipeline(self, pipeline_graph, tmp_path):
        g = pipeline_graph
        k, r = 4, 10

        # 1. Persist the graph and reload it via the SNAP path.
        graph_path = tmp_path / "net.txt"
        write_edge_list(g, graph_path)
        reloaded = read_edge_list(graph_path)
        assert reloaded == g

        # 2. All four search methods agree on the reloaded graph.
        results = [
            online_search(reloaded, k, r),
            bound_search(reloaded, k, r),
        ]
        tsd = TSDIndex.build(reloaded)
        gct = GCTIndex.build(reloaded)
        results.append(tsd.top_r(k, r))
        results.append(gct.top_r(k, r))
        expected_scores = sorted(results[0].scores, reverse=True)
        for result in results[1:]:
            assert sorted(result.scores, reverse=True) == expected_scores

        # 3. Index persistence round-trips through disk.
        tsd_path, gct_path = tmp_path / "tsd.json", tmp_path / "gct.json"
        tsd.save(tsd_path)
        gct.save(gct_path)
        assert (TSDIndex.load(tsd_path).top_r(k, r).scores
                == tsd.top_r(k, r).scores)
        assert (GCTIndex.load(gct_path).top_r(k, r).scores
                == gct.top_r(k, r).scores)

        # 4. Score distribution is consistent between the two indexes.
        summary = summarize_scores(gct.scores_for_all(k))
        assert summary.count == g.num_vertices
        assert summary.maximum == results[0].scores[0]

        # 5. Community search agrees with the definition.
        top_vertex = results[0].vertices[0]
        tcp = TCPIndex.build(reloaded)
        via_index = {c.vertices for c in tcp.communities(top_vertex, k)}
        via_def = {c.vertices
                   for c in truss_communities(reloaded, k, query=top_vertex)}
        assert via_index == via_def

        # 6. Visualisation export renders the winner's ego-network.
        dot = ego_network_to_dot(reloaded, top_vertex, k)
        assert dot.startswith("graph")

        # 7. Contagion: the Truss-Div picks outperform a fixed floor.
        seeds = ris_seeds(reloaded, 15, 0.08, num_samples=200, seed=9)
        picks = TrussDivModel(index=gct).select(reloaded, k, r)
        activated = activated_among_targets(reloaded, picks, seeds, 0.08,
                                            runs=60, seed=9)
        assert 0.0 <= activated <= r

    def test_dynamic_index_through_workflow(self, pipeline_graph):
        g = pipeline_graph
        dyn = DynamicTSDIndex(g)
        before = dyn.top_r(3, 5).scores
        # Insert a wedge of edges and remove them again: back to start.
        edits = [(0, 200), (0, 201), (200, 201)]
        for u, v in edits:
            if not dyn.graph.has_edge(u, v):
                dyn.insert_edge(u, v)
        for u, v in reversed(edits):
            if dyn.graph.has_edge(u, v) and not g.has_edge(u, v):
                dyn.delete_edge(u, v)
        assert dyn.top_r(3, 5).scores == before

    def test_model_comparison_consistency(self, pipeline_graph):
        """Comp-Div's fast all-vertices pass agrees with its model API
        on the integration graph (not just unit-test sizes)."""
        from repro.models.component import component_scores
        g = pipeline_graph
        fast = component_scores(g, 5)
        model = CompDivModel()
        for v in list(g.vertices())[::25]:
            assert fast[v] == model.vertex_score(g, v, 5)
