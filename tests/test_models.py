"""Tests for the diversity-model baselines (Comp-Div, Core-Div, Random)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import connected_components
from repro.models import (
    CompDivModel,
    CoreDivModel,
    TrussDivModel,
    RandomModel,
    component_scores,
)
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.datasets.synthetic import planted_context_graph

from tests.conftest import dense_graph_strategy


class TestCompDiv:
    def test_motivating_example(self, figure1):
        """Section 1: Comp-Div cannot split H1 — it sees 2 contexts
        (H1 as one component + the r-octahedron) for any feasible k."""
        model = CompDivModel()
        assert model.vertex_score(figure1, "v", 4) == 2
        assert model.vertex_score(figure1, "v", 6) == 2
        # Adjusting k never decomposes H1 further; it only drops whole
        # contexts (H2 has 6 vertices, H1 has 8).
        assert model.vertex_score(figure1, "v", 8) == 1
        assert model.vertex_score(figure1, "v", 9) == 0

    def test_size_filter(self, figure1):
        model = CompDivModel()
        # H1 has 8 vertices, H2 has 6: at k=7 only H1 qualifies.
        assert model.vertex_score(figure1, "v", 7) == 1

    def test_invalid_k(self, figure1):
        with pytest.raises(InvalidParameterError):
            CompDivModel().vertex_contexts(figure1, "v", 0)

    @given(dense_graph_strategy(), st.sampled_from([1, 2, 3]))
    @settings(max_examples=20)
    def test_contexts_are_ego_components(self, g, k):
        model = CompDivModel()
        for v in list(g.vertices())[:5]:
            expected = [c for c in connected_components(g, g.neighbors(v))
                        if len(c) >= k]
            got = model.vertex_contexts(g, v, k)
            assert {frozenset(c) for c in got} == {frozenset(c) for c in expected}

    @given(dense_graph_strategy(), st.sampled_from([1, 2, 3]))
    @settings(max_examples=20)
    def test_scalable_pass_matches_per_vertex(self, g, k):
        """component_scores (one triangle pass) == naive per-vertex."""
        model = CompDivModel()
        fast = component_scores(g, k)
        for v in g.vertices():
            assert fast[v] == model.vertex_score(g, v, k)


class TestCoreDiv:
    def test_motivating_example(self, figure1):
        """Section 1: for k <= 3, H1 is one k-core; for k >= 4 it is
        no longer a feasible context."""
        model = CoreDivModel()
        assert model.vertex_score(figure1, "v", 3) == 2  # H1 + octahedron
        # At k=4: H1 vanishes; the octahedron is 4-regular -> one 4-core.
        assert model.vertex_score(figure1, "v", 4) == 1

    def test_invalid_k(self, figure1):
        with pytest.raises(InvalidParameterError):
            CoreDivModel().vertex_contexts(figure1, "v", 0)

    def test_planted_without_bridges(self):
        g = planted_context_graph(num_contexts=3, context_size=6,
                                  num_bridges=0, seed=4)
        # Disconnected K6 cliques are separate maximal 5-cores.
        assert CoreDivModel().vertex_score(g, "ego", 5) == 3
        assert CoreDivModel().vertex_score(g, "ego", 6) == 0

    def test_bridges_collapse_cores_but_not_trusses(self):
        """The paper's decomposability claim, distilled: single bridge
        edges keep every vertex's degree >= 5, so the chained cliques
        form ONE maximal 5-core — while Truss-Div still sees three
        separate 5-trusses (bridges have ego trussness 2)."""
        g = planted_context_graph(num_contexts=3, context_size=6,
                                  num_bridges=1, seed=4)
        assert CoreDivModel().vertex_score(g, "ego", 5) == 1
        assert TrussDivModel().vertex_score(g, "ego", 5) == 3


class TestTrussDiv:
    def test_matches_core_module(self, figure1):
        model = TrussDivModel()
        assert model.vertex_score(figure1, "v", 4) == 3

    def test_with_tsd_index(self, figure1):
        model = TrussDivModel(index=TSDIndex.build(figure1))
        assert model.vertex_score(figure1, "v", 4) == 3
        contexts = model.vertex_contexts(figure1, "v", 4)
        assert len(contexts) == 3

    def test_with_gct_index(self, figure1):
        model = TrussDivModel(index=GCTIndex.build(figure1))
        assert model.vertex_score(figure1, "v", 4) == 3

    def test_top_r_uses_index(self, figure1):
        model = TrussDivModel(index=TSDIndex.build(figure1))
        result = model.top_r(figure1, 4, 1)
        assert result.method == "Truss-Div"
        assert result.vertices == ["v"]

    def test_top_r_without_index(self, figure1):
        result = TrussDivModel().top_r(figure1, 4, 1)
        assert result.vertices == ["v"]

    @given(dense_graph_strategy())
    @settings(max_examples=15)
    def test_index_and_direct_agree(self, g):
        direct = TrussDivModel()
        indexed = TrussDivModel(index=GCTIndex.build(g))
        for v in list(g.vertices())[:5]:
            assert (direct.vertex_score(g, v, 3)
                    == indexed.vertex_score(g, v, 3))


class TestRandom:
    def test_deterministic_given_seed(self, figure1):
        a = RandomModel(seed=42).select(figure1, 4, 5)
        b = RandomModel(seed=42).select(figure1, 4, 5)
        assert a == b

    def test_different_seeds_differ(self, medium_graph):
        a = RandomModel(seed=1).select(medium_graph, 4, 10)
        b = RandomModel(seed=2).select(medium_graph, 4, 10)
        assert a != b

    def test_r_capped(self, triangle):
        assert len(RandomModel(seed=0).select(triangle, 2, 50)) == 3

    def test_selection_from_graph(self, figure1):
        chosen = RandomModel(seed=7).select(figure1, 4, 6)
        assert len(chosen) == 6
        assert len(set(chosen)) == 6
        assert all(v in figure1 for v in chosen)


class TestModelInterface:
    def test_top_r_validation(self, figure1):
        with pytest.raises(InvalidParameterError):
            CompDivModel().top_r(figure1, 0, 1)
        with pytest.raises(InvalidParameterError):
            CompDivModel().top_r(figure1, 2, 0)

    def test_top_r_sorted(self, medium_graph):
        result = CompDivModel().top_r(medium_graph, 2, 8)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_select_returns_vertices(self, figure1):
        chosen = CoreDivModel().select(figure1, 3, 2)
        assert len(chosen) == 2
