"""Tests for result containers and the bounded top-r collector."""

import pytest

from repro.errors import InvalidParameterError
from repro.core.results import SearchResult, TopEntry, TopRCollector


class TestTopEntry:
    def test_valid(self):
        entry = TopEntry(vertex="v", score=2,
                         contexts=(frozenset({1}), frozenset({2})))
        assert entry.score == 2

    def test_score_context_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            TopEntry(vertex="v", score=3, contexts=(frozenset({1}),))


class TestTopRCollector:
    def test_r_validation(self):
        with pytest.raises(InvalidParameterError):
            TopRCollector(0)

    def test_fills_then_replaces(self):
        c = TopRCollector(2)
        assert c.offer("a", 1) is True
        assert c.offer("b", 2) is True
        assert c.is_full
        assert c.offer("c", 3) is True   # evicts a
        assert c.offer("d", 1) is False  # not strictly greater
        assert [v for v, _ in c.ranked()] == ["c", "b"]

    def test_threshold_before_full_raises(self):
        c = TopRCollector(3)
        c.offer("a", 5)
        with pytest.raises(InvalidParameterError):
            _ = c.threshold

    def test_threshold(self):
        c = TopRCollector(2)
        c.offer("a", 5)
        c.offer("b", 3)
        assert c.threshold == 3
        c.offer("c", 4)
        assert c.threshold == 4

    def test_ties_keep_insertion_order(self):
        c = TopRCollector(3)
        c.offer("first", 2)
        c.offer("second", 2)
        c.offer("third", 2)
        assert [v for v, _ in c.ranked()] == ["first", "second", "third"]

    def test_equal_score_does_not_evict(self):
        c = TopRCollector(1)
        c.offer("keeper", 2)
        assert c.offer("challenger", 2) is False
        assert c.ranked() == [("keeper", 2)]

    def test_ranked_descending(self):
        c = TopRCollector(4)
        for v, s in [("a", 1), ("b", 9), ("c", 4), ("d", 7)]:
            c.offer(v, s)
        assert [s for _, s in c.ranked()] == [9, 7, 4, 1]


class TestSearchResult:
    def _result(self):
        entries = [
            TopEntry("a", 2, (frozenset({1}), frozenset({2}))),
            TopEntry("b", 1, (frozenset({3}),)),
        ]
        return SearchResult(method="TSD", k=3, r=2, entries=entries,
                            search_space=10, elapsed_seconds=0.5)

    def test_vertices_scores(self):
        r = self._result()
        assert r.vertices == ["a", "b"]
        assert r.scores == [2, 1]

    def test_contexts_of(self):
        r = self._result()
        assert r.contexts_of("b") == (frozenset({3}),)
        with pytest.raises(KeyError):
            r.contexts_of("zzz")

    def test_summary_contains_method_and_params(self):
        text = self._result().summary()
        assert "TSD" in text and "k=3" in text and "space=10" in text

    def test_summary_without_timing(self):
        r = self._result()
        r.elapsed_seconds = None
        assert "time" not in r.summary()
