"""Tests for result containers and the bounded top-r collectors."""

import pytest

from repro.errors import InvalidParameterError
from repro.core.results import (
    CanonicalTopR,
    SearchResult,
    TopEntry,
    TopRCollector,
    build_entries,
    canonical_zero_fill,
)


class TestTopEntry:
    def test_valid(self):
        entry = TopEntry(vertex="v", score=2,
                         contexts=(frozenset({1}), frozenset({2})))
        assert entry.score == 2

    def test_score_context_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            TopEntry(vertex="v", score=3, contexts=(frozenset({1}),))


class TestTopRCollector:
    def test_r_validation(self):
        with pytest.raises(InvalidParameterError):
            TopRCollector(0)

    def test_fills_then_replaces(self):
        c = TopRCollector(2)
        assert c.offer("a", 1) is True
        assert c.offer("b", 2) is True
        assert c.is_full
        assert c.offer("c", 3) is True   # evicts a
        assert c.offer("d", 1) is False  # not strictly greater
        assert [v for v, _ in c.ranked()] == ["c", "b"]

    def test_threshold_before_full_raises(self):
        c = TopRCollector(3)
        c.offer("a", 5)
        with pytest.raises(InvalidParameterError):
            _ = c.threshold

    def test_threshold(self):
        c = TopRCollector(2)
        c.offer("a", 5)
        c.offer("b", 3)
        assert c.threshold == 3
        c.offer("c", 4)
        assert c.threshold == 4

    def test_ties_keep_insertion_order(self):
        c = TopRCollector(3)
        c.offer("first", 2)
        c.offer("second", 2)
        c.offer("third", 2)
        assert [v for v, _ in c.ranked()] == ["first", "second", "third"]

    def test_equal_score_does_not_evict(self):
        c = TopRCollector(1)
        c.offer("keeper", 2)
        assert c.offer("challenger", 2) is False
        assert c.ranked() == [("keeper", 2)]

    def test_ranked_descending(self):
        c = TopRCollector(4)
        for v, s in [("a", 1), ("b", 9), ("c", 4), ("d", 7)]:
            c.offer(v, s)
        assert [s for _, s in c.ranked()] == [9, 7, 4, 1]


class TestCanonicalTopR:
    """The canonical ranking contract: (-score, insertion index)."""

    POS = {v: i for i, v in enumerate("abcdef")}

    def _collector(self, r):
        return CanonicalTopR(r, self.POS.__getitem__)

    def test_r_validation(self):
        with pytest.raises(InvalidParameterError):
            CanonicalTopR(0, self.POS.__getitem__)

    def test_offer_order_is_irrelevant(self):
        forward, backward = self._collector(2), self._collector(2)
        offers = [("a", 1), ("b", 2), ("c", 2), ("d", 1)]
        for v, s in offers:
            forward.offer(v, s)
        for v, s in reversed(offers):
            backward.offer(v, s)
        assert forward.ranked() == backward.ranked() == [("b", 2), ("c", 2)]

    def test_tied_earlier_vertex_evicts_later_one(self):
        c = self._collector(1)
        assert c.offer("d", 2) is True
        assert c.offer("b", 2) is True   # same score, earlier insertion
        assert c.offer("e", 2) is False  # same score, later insertion
        assert c.ranked() == [("b", 2)]

    def test_threshold_before_full_raises(self):
        c = self._collector(3)
        c.offer("a", 5)
        with pytest.raises(InvalidParameterError):
            _ = c.threshold

    def test_threshold_tracks_minimum(self):
        c = self._collector(2)
        c.offer("a", 5)
        c.offer("b", 3)
        assert c.threshold == 3
        c.offer("c", 4)
        assert c.threshold == 4

    def test_ranked_descending_with_positional_ties(self):
        c = self._collector(4)
        for v, s in [("d", 7), ("a", 1), ("b", 7), ("c", 9)]:
            c.offer(v, s)
        assert c.ranked() == [("c", 9), ("b", 7), ("d", 7), ("a", 1)]


class TestCanonicalZeroFill:
    def test_fills_from_insertion_order(self):
        ranked = [("c", 3)]
        assert canonical_zero_fill(ranked, 3, "abc") == \
            [("c", 3), ("a", 0), ("b", 0)]

    def test_drops_non_canonical_zeros(self):
        # A scan that happened to visit "c" must not beat earlier "a".
        ranked = [("b", 2), ("c", 0)]
        assert canonical_zero_fill(ranked, 2, "abc") == [("b", 2), ("a", 0)]

    def test_idempotent_on_canonical_input(self):
        ranked = [("b", 2), ("a", 0), ("c", 0)]
        assert canonical_zero_fill(ranked, 3, "abc") == ranked

    def test_truncates_to_r(self):
        ranked = [("a", 3), ("b", 2), ("c", 1)]
        assert canonical_zero_fill(ranked, 2, "abc") == [("a", 3), ("b", 2)]


class TestBuildEntries:
    def test_contexts_only_for_positive_scores(self):
        calls = []

        def contexts_of(v):
            calls.append(v)
            return [{1}, {2}]

        entries = build_entries([("a", 2), ("b", 0)], contexts_of)
        assert calls == ["a"]
        assert entries[0].contexts == (frozenset({1}), frozenset({2}))
        assert entries[1].contexts == ()

    def test_placeholders_without_collection(self):
        entries = build_entries([("a", 2)], lambda v: [], False)
        assert entries[0].contexts == (frozenset(), frozenset())


class TestSearchResult:
    def _result(self):
        entries = [
            TopEntry("a", 2, (frozenset({1}), frozenset({2}))),
            TopEntry("b", 1, (frozenset({3}),)),
        ]
        return SearchResult(method="TSD", k=3, r=2, entries=entries,
                            search_space=10, elapsed_seconds=0.5)

    def test_vertices_scores(self):
        r = self._result()
        assert r.vertices == ["a", "b"]
        assert r.scores == [2, 1]

    def test_contexts_of(self):
        r = self._result()
        assert r.contexts_of("b") == (frozenset({3}),)
        with pytest.raises(KeyError):
            r.contexts_of("zzz")

    def test_summary_contains_method_and_params(self):
        text = self._result().summary()
        assert "TSD" in text and "k=3" in text and "space=10" in text

    def test_summary_without_timing(self):
        r = self._result()
        r.elapsed_seconds = None
        assert "time" not in r.summary()
