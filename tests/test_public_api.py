"""Smoke tests of the documented public API surface."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        """The exact flow shown in the package docstring must work."""
        from repro import TSDIndex
        from repro.datasets import figure1_graph
        g = figure1_graph()
        index = TSDIndex.build(g)
        result = index.top_r(k=4, r=1)
        assert result.vertices == ["v"]
        assert result.scores == [3]

    def test_exceptions_catchable_via_base(self):
        import pytest
        with pytest.raises(repro.ReproError):
            repro.Graph(edges=[(1, 1)])

    def test_graph_roundtrip_via_top_level(self, tmp_path):
        g = repro.Graph(edges=[(0, 1), (1, 2), (0, 2)])
        assert repro.structural_diversity(g, 0, 2) == 1
