"""Edge cases and failure injection across module boundaries.

Everything here encodes behaviour a downstream user would trip over:
degenerate graphs, thresholds beyond any truss, unknown vertices,
corrupted files, and non-serialisable labels.
"""

import json

import pytest
from hypothesis import given, settings

from repro.errors import ReproError, IndexFormatError, InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.io import read_json_graph
from repro.core.diversity import structural_diversity, social_contexts
from repro.core.online import online_search
from repro.core.bound import bound_search
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher

from tests.conftest import dense_graph_strategy, complete_graph


class TestDegenerateGraphs:
    def test_search_on_empty_graph(self):
        g = Graph()
        assert online_search(g, 3, 1).entries == []
        assert bound_search(g, 3, 1).entries == []
        index = TSDIndex.build(g)
        assert index.top_r(3, 1).entries == []
        assert GCTIndex.build(g).top_r(3, 1).entries == []

    def test_search_on_edgeless_graph(self):
        g = Graph(vertices=range(5))
        result = online_search(g, 3, 3)
        assert result.scores == [0, 0, 0]
        assert bound_search(g, 3, 3).scores == [0, 0, 0]
        assert TSDIndex.build(g).top_r(3, 3).scores == [0, 0, 0]

    def test_single_vertex(self):
        g = Graph(vertices=["only"])
        assert structural_diversity(g, "only", 2) == 0
        assert TSDIndex.build(g).score("only", 2) == 0

    def test_two_vertices_one_edge(self):
        g = Graph(edges=[(0, 1)])
        # Each ego-network is a single isolated vertex: no contexts.
        assert structural_diversity(g, 0, 2) == 0
        assert GCTIndex.build(g).score(0, 2) == 0

    def test_star_graph_center(self):
        g = Graph(edges=[("hub", i) for i in range(6)])
        # The hub's ego is edgeless: zero diversity at every k.
        for k in (2, 3, 4):
            assert structural_diversity(g, "hub", k) == 0

    def test_hybrid_on_triangle_free_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        hybrid = HybridSearcher.precompute(g)
        assert hybrid.top_r(3, 2).scores == [0, 0]


class TestExtremeThresholds:
    def test_k_far_beyond_max(self, figure1):
        assert structural_diversity(figure1, "v", 1000) == 0
        assert social_contexts(figure1, "v", 1000) == []
        index = TSDIndex.build(figure1)
        assert index.score("v", 1000) == 0
        assert index.upper_bound("v", 1000) == 0
        assert GCTIndex.build(figure1).score("v", 1000) == 0

    def test_top_r_at_extreme_k_returns_zeros(self, figure1):
        result = TSDIndex.build(figure1).top_r(1000, 3)
        assert result.scores == [0, 0, 0]

    @given(dense_graph_strategy())
    @settings(max_examples=15)
    def test_score_zero_stabilises(self, g):
        """Once the score hits 0 it stays 0 for all larger k."""
        index = GCTIndex.build(g)
        for v in list(g.vertices())[:4]:
            hit_zero = False
            for k in range(2, 12):
                s = index.score(v, k)
                if hit_zero:
                    assert s == 0
                hit_zero = hit_zero or s == 0


class TestUnknownVertices:
    def test_index_score_unknown_vertex(self, triangle):
        index = TSDIndex.build(triangle)
        with pytest.raises(InvalidParameterError, match="ghost"):
            index.score("ghost", 3)

    def test_gct_unknown_vertex(self, triangle):
        index = GCTIndex.build(triangle)
        with pytest.raises(InvalidParameterError, match="ghost"):
            index.score("ghost", 3)

    def test_contains_protocol(self, triangle):
        assert 0 in TSDIndex.build(triangle)
        assert "ghost" not in TSDIndex.build(triangle)
        assert 0 in GCTIndex.build(triangle)


class TestBatchAPIs:
    def test_scores_for_all_matches_pointwise(self, figure1):
        tsd = TSDIndex.build(figure1)
        gct = GCTIndex.build(figure1)
        for k in (2, 3, 4, 5):
            tsd_all = tsd.scores_for_all(k)
            gct_all = gct.scores_for_all(k)
            assert tsd_all == gct_all
            assert set(tsd_all) == set(figure1.vertices())
            for v in figure1.vertices():
                assert tsd_all[v] == tsd.score(v, k)

    def test_scores_for_all_validates_k(self, triangle):
        with pytest.raises(ReproError):
            TSDIndex.build(triangle).scores_for_all(1)


class TestCorruptedFiles:
    def test_truncated_json_graph(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"format": "repro-graph", "version": 1')
        with pytest.raises(json.JSONDecodeError):
            read_json_graph(path)

    def test_index_missing_fields(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        with pytest.raises(IndexFormatError):
            TSDIndex.load(path)
        with pytest.raises(IndexFormatError):
            GCTIndex.load(path)

    def test_index_save_requires_json_labels(self, tmp_path):
        g = Graph(edges=[(frozenset([1]), frozenset([2]))])
        index = TSDIndex.build(g)
        with pytest.raises(TypeError):
            index.save(tmp_path / "bad.json")


class TestCompleteGraphFamily:
    """K_n is the worst case for density-sensitive code paths."""

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_scores_on_complete_graphs(self, n):
        g = complete_graph(n)
        # Every ego is K_{n-1}: exactly one context for 2 <= k <= n-1.
        index = GCTIndex.build(g)
        for v in g.vertices():
            for k in range(2, n):
                assert index.score(v, k) == 1
            assert index.score(v, n) == 0

    def test_all_methods_on_k8(self):
        g = complete_graph(8)
        results = [
            online_search(g, 4, 2),
            bound_search(g, 4, 2),
            TSDIndex.build(g).top_r(4, 2),
            GCTIndex.build(g).top_r(4, 2),
        ]
        for result in results:
            assert result.scores == [1, 1], result.method
