"""Cross-process :class:`IndexStore` stress: the on-disk lock under fire.

PR 3 gave the store an on-disk ``flock`` + manifest re-read so that two
*processes* sharing a root never lose each other's versions.  The
cluster now makes that scenario routine (every worker owns a store
root, operators point tools at them), so this test drives it with real
processes — not threads, which the in-process mutex alone would save —
hammering ``put`` / ``put_scores`` / ``compact`` on one shared root.

Invariants checked after the dust settles:

* **No lost versions.**  Both processes ``put`` to one *shared* lineage
  (same graph content); its final version number must equal the total
  number of puts — a torn manifest write would swallow increments.
* **No orphaned heads.**  Each process's private lineage must be
  loadable (its artifacts exist on disk) even though the *other*
  process was compacting while it wrote.
* **No dangling references.**  Every artifact path the final manifest
  mentions exists on disk — compaction must never delete a file a
  surviving record references.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.graph.graph import Graph
from repro.service import IndexStore

ITERATIONS = 10

_WORKER_SCRIPT = """
import json, sys, time
from pathlib import Path

from repro.graph.graph import Graph
from repro.core.tsd import TSDIndex
from repro.service import IndexStore
from repro.service.snapshot import scores_to_payload

root, worker, iterations, go_file = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), sys.argv[4])

def shared_graph():
    return Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])

def own_graph():
    # Distinct content per worker: a clique on worker-specific labels.
    labels = [f"w{worker}_{i}" for i in range(4)]
    g = Graph()
    for i in range(4):
        for j in range(i + 1, 4):
            g.add_edge(labels[i], labels[j])
    return g

shared, mine = shared_graph(), own_graph()
shared_tsd, my_tsd = TSDIndex.build(shared), TSDIndex.build(mine)
scores = scores_to_payload({3: ({0: 1}, [(0, 1)])})
store = IndexStore(root)

while not Path(go_file).exists():  # start line: maximise overlap
    time.sleep(0.001)

for i in range(iterations):
    store.put(shared, tsd=shared_tsd)
    version = store.put(mine, tsd=my_tsd)
    store.put_scores(mine, scores, key=version.key)
    if i % 3 == worker:  # compaction passes interleave with puts
        store.compact()

print(json.dumps({"worker": worker, "final_own_version":
                  store.current(mine).version}))
"""


def test_two_processes_hammering_one_store_root(tmp_path):
    root = tmp_path / "store"
    go_file = tmp_path / "go"
    script = tmp_path / "worker.py"
    script.write_text(_WORKER_SCRIPT, encoding="utf-8")
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(
        [str(src)] + os.environ.get("PYTHONPATH", "").split(os.pathsep)))

    processes = [
        subprocess.Popen(
            [sys.executable, str(script), str(root), str(worker),
             str(ITERATIONS), str(go_file)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        for worker in (0, 1)
    ]
    time.sleep(0.5)  # both processes importing/building; then: go
    go_file.write_text("go", encoding="utf-8")
    outputs = []
    for process in processes:
        out, err = process.communicate(timeout=120)
        assert process.returncode == 0, err
        outputs.append(json.loads(out))

    store = IndexStore(root)  # the manifest must still parse

    # No lost versions on the shared lineage: every put incremented it.
    shared = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
    assert store.current(shared).version == 2 * ITERATIONS

    # Each worker's own lineage: right version, loadable artifacts.
    for payload in outputs:
        worker = payload["worker"]
        assert payload["final_own_version"] == ITERATIONS
        labels = [f"w{worker}_{i}" for i in range(4)]
        mine = Graph()
        for i in range(4):
            for j in range(i + 1, 4):
                mine.add_edge(labels[i], labels[j])
        assert store.current(mine).version == ITERATIONS
        loaded = store.load(mine)
        assert loaded.tsd is not None
        assert loaded.tsd.score(labels[0], 3) == 1

    # Every artifact path the final manifest references exists on disk.
    manifest = json.loads((root / "manifest.json").read_text())
    for entry in manifest["graphs"].values():
        for record in entry["versions"].values():
            for name in ("tsd", "gct", "hybrid", "scores"):
                if name in record:
                    assert (root / record[name]).is_file(), record[name]


def test_single_process_writers_unaffected_by_stress_shape(tmp_path):
    """The stress scenario, minus concurrency: the same op sequence in
    one process yields the same invariants (guards against the test
    passing only because of scheduling accidents)."""
    from repro.core.tsd import TSDIndex
    from repro.service.snapshot import scores_to_payload

    store = IndexStore(tmp_path / "store")
    shared = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
    tsd = TSDIndex.build(shared)
    scores = scores_to_payload({3: ({0: 1}, [(0, 1)])})
    for i in range(ITERATIONS):
        version = store.put(shared, tsd=tsd)
        store.put_scores(shared, scores, key=version.key)
        if i % 3 == 0:
            store.compact()
    assert store.current(shared).version == ITERATIONS
    assert store.load(shared).tsd is not None
