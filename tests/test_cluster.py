"""Tests for the process-sharded serving cluster.

The acceptance contract of the subsystem:

* **Placement is deterministic.**  The consistent-hash
  :class:`ShardMap` assigns the same names to the same workers across
  instances, runs, and processes (no ``hash()`` randomisation), pins
  override it explicitly, and resizing moves only a minority of names.
* **Answer preservation.**  A ``top_r`` answer through the cluster
  frontend is byte-identical (vertices, scores) to a single-process
  :class:`DiversityRouter` over the same graphs.
* **Fault isolation + recovery.**  Killing one worker 503s (with
  ``Retry-After``) exactly that worker's graphs — never another
  worker's — and the supervised respawn replays its registrations,
  warm from its own store root.
* **Fan-out endpoints** (``/graphs``, ``/stats``, ``/compact``,
  ``/healthz``) merge every live worker's JSON.
"""

import http.client
import json
import os
import subprocess
import sys
import time

import pytest

from repro.errors import ClusterError, InvalidParameterError, ServerError
from repro.graph.graph import Graph
from repro.graph.io import write_edge_list
from repro.core.online import online_search
from repro.cluster import ShardMap, ShardedCluster
from repro.server import DiversityRouter, ServerClient

GRID = [(k, r) for k in (2, 3, 4, 5) for r in (1, 3, 10)]


def _ranked(result):
    return [(entry.vertex, entry.score) for entry in result.entries]


def _two_cliques() -> Graph:
    g = Graph()
    a = [f"a{i}" for i in range(5)]
    b = [f"b{i}" for i in range(4)]
    for clique in (a, b):
        for i in range(len(clique)):
            for j in range(i + 1, len(clique)):
                g.add_edge(clique[i], clique[j])
    return g


def _wheel(n: int = 12) -> Graph:
    """A hub on an n-cycle: hub score 1 at k=3, spokes in one context."""
    g = Graph()
    for i in range(n):
        g.add_edge("hub", f"rim{i}")
        g.add_edge(f"rim{i}", f"rim{(i + 1) % n}")
    return g


def _grid_graph() -> Graph:
    g = Graph()
    for row in range(4):
        for col in range(4):
            if col + 1 < 4:
                g.add_edge((row, col), (row, col + 1))
            if row + 1 < 4:
                g.add_edge((row, col), (row + 1, col))
            if row + 1 < 4 and col + 1 < 4:
                g.add_edge((row, col), (row + 1, col + 1))
    return g


#: Three named graphs pinned across two workers, so worker 0's death
#: must leave "beta" (worker 1) serving.
GRAPHS = {"alpha": _two_cliques, "beta": _wheel, "gamma": _grid_graph}
PINS = {"alpha": 0, "beta": 1, "gamma": 0}


@pytest.fixture(scope="module")
def cluster():
    """A 2-worker cluster with supervision off — death tests stage
    recovery by hand (restart_dead_workers) to stay deterministic."""
    cluster = ShardedCluster(workers=2, pins=PINS, supervise=False,
                             restart_interval=0.2)
    cluster.start(port=0)
    try:
        for name, factory in GRAPHS.items():
            cluster.add_graph(name, graph=factory())
        yield cluster
    finally:
        cluster.stop()


@pytest.fixture(scope="module")
def cluster_client(cluster):
    client = ServerClient(cluster.url)
    yield client
    client.close()


# ----------------------------------------------------------------------
# ShardMap
# ----------------------------------------------------------------------
class TestShardMap:
    NAMES = [f"graph-{i}" for i in range(200)]

    def test_same_names_same_workers_across_instances(self):
        first = ShardMap(workers=4).assignments(self.NAMES)
        second = ShardMap(workers=4).assignments(self.NAMES)
        assert first == second
        assert all(0 <= slot < 4 for slot in first.values())

    def test_assignment_is_stable_across_processes(self):
        """The map must not lean on hash() randomisation: a fresh
        interpreter with a different PYTHONHASHSEED routes identically."""
        script = (
            "import json, sys\n"
            "from repro.cluster import ShardMap\n"
            "names = [f'graph-{i}' for i in range(50)]\n"
            "print(json.dumps(ShardMap(workers=3).assignments(names)))\n")
        env = dict(os.environ, PYTHONHASHSEED="12345",
                   PYTHONPATH=os.pathsep.join(
                       [str(__import__('pathlib').Path(
                           __file__).resolve().parents[1] / 'src')]
                       + os.environ.get("PYTHONPATH", "").split(os.pathsep)))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        remote = json.loads(out.stdout)
        local = ShardMap(workers=3).assignments([f"graph-{i}"
                                                 for i in range(50)])
        assert remote == local

    def test_every_worker_gets_a_share(self):
        assignments = ShardMap(workers=4).assignments(self.NAMES)
        loads = [list(assignments.values()).count(slot) for slot in range(4)]
        assert all(load > 0 for load in loads)

    def test_pin_overrides_and_unpin_restores(self):
        shard_map = ShardMap(workers=4)
        ring_owner = shard_map.owner("whale")
        target = (ring_owner + 1) % 4
        shard_map.pin("whale", target)
        assert shard_map.owner("whale") == target
        assert shard_map.pins == {"whale": target}
        shard_map.unpin("whale")
        assert shard_map.owner("whale") == ring_owner

    def test_pin_to_missing_worker_rejected(self):
        shard_map = ShardMap(workers=2)
        with pytest.raises(InvalidParameterError):
            shard_map.pin("whale", 2)
        with pytest.raises(InvalidParameterError):
            ShardMap(workers=2, pins={"whale": 7})

    def test_resize_moves_a_minority_of_names(self):
        shard_map = ShardMap(workers=4)
        before = shard_map.assignments(self.NAMES)
        moved = shard_map.resize(5, names=self.NAMES)
        after = shard_map.assignments(self.NAMES)
        # Consistency: an expected 1/5 of names move; a modulo map
        # would move ~4/5.  Allow generous slack over the expectation.
        assert 0 < len(moved) <= len(self.NAMES) * 0.45
        for name in self.NAMES:
            if name not in moved:
                assert after[name] == before[name], name
        for name, (old, new) in moved.items():
            assert before[name] == old and after[name] == new

    def test_resize_drops_pins_to_vanished_workers(self):
        shard_map = ShardMap(workers=4, pins={"whale": 3})
        shard_map.resize(2, names=["whale"])
        assert shard_map.pins == {}
        assert 0 <= shard_map.owner("whale") < 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            ShardMap(workers=0)
        with pytest.raises(InvalidParameterError):
            ShardMap(workers=2, replicas=0)
        with pytest.raises(InvalidParameterError):
            ShardMap(workers=2).resize(0)


# ----------------------------------------------------------------------
# Cluster answers vs the single-process router
# ----------------------------------------------------------------------
class TestClusterAnswers:
    def test_top_r_byte_identical_to_in_process_router(self, cluster,
                                                       cluster_client):
        """The acceptance bar: cluster wire answers == a single-process
        DiversityRouter over the same graphs, byte for byte."""
        router = DiversityRouter()
        for name, factory in GRAPHS.items():
            router.add_graph(name, factory())
        for name in GRAPHS:
            for k, r in GRID:
                wire = cluster_client.top_r(name, k=k, r=r)
                local = router.top_r(name, k, r, collect_contexts=False)
                assert json.dumps(wire["vertices"]) == \
                    json.dumps(local.vertices), (name, k, r)
                assert json.dumps(wire["scores"]) == \
                    json.dumps(local.scores), (name, k, r)

    def test_score_and_contexts_round_trip(self, cluster_client):
        graph = _two_cliques()
        reference = online_search(graph, 3, 2)
        assert cluster_client.score("alpha", "a0", 3) == \
            reference.entries[0].score
        wire = cluster_client.top_r("alpha", k=3, r=2, contexts=True)
        for wire_entry, local_entry in zip(wire["entries"],
                                           reference.entries):
            assert wire_entry["vertex"] == local_entry.vertex
            assert [frozenset(c) for c in wire_entry["contexts"]] == \
                [frozenset(c) for c in local_entry.contexts]

    def test_error_statuses_relay_from_workers(self, cluster_client):
        cases = [
            (404, lambda: cluster_client.top_r("ghost", k=3, r=1)),
            (400, lambda: cluster_client.top_r("alpha", k=1, r=1)),
            (400, lambda: cluster_client.score("alpha", "nope", 3)),
            (404, lambda: cluster_client._request("GET", "/no/such")),
        ]
        for status, call in cases:
            with pytest.raises(ServerError) as excinfo:
                call()
            assert excinfo.value.status == status

    def test_updates_proxy_to_the_owning_worker(self, cluster,
                                                cluster_client):
        report = cluster_client.apply_updates(
            "gamma", [("insert", [0, 0], [2, 2])])
        assert report["num_updates"] == 1
        mutated = _grid_graph()
        mutated.add_edge((0, 0), (2, 2))
        expected = online_search(mutated, 3, 5)
        wire = cluster_client.top_r("gamma", k=3, r=5)
        assert [tuple(v) for v in wire["vertices"]] == \
            [tuple(v) for v in expected.vertices]
        # Other graphs (other worker or same) are untouched.
        assert cluster_client.top_r("beta", k=3, r=5)["vertices"] == \
            online_search(_wheel(), 3, 5).vertices

    def test_registration_by_path(self, tmp_path, cluster, cluster_client):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        path = tmp_path / "delta.txt"
        write_edge_list(graph, path)
        answer = cluster.add_graph("delta", path=path)
        assert answer["vertices"] == 4
        assert cluster_client.top_r("delta", k=3, r=2)["vertices"] == \
            online_search(graph, 3, 2).vertices

    def test_add_graph_validation(self, cluster):
        with pytest.raises(InvalidParameterError):
            cluster.add_graph("alpha", graph=_two_cliques())  # duplicate
        with pytest.raises(InvalidParameterError):
            cluster.add_graph("has space", graph=_two_cliques())
        with pytest.raises(InvalidParameterError):
            cluster.add_graph("both", graph=_two_cliques(), path="x.txt")
        with pytest.raises(InvalidParameterError):
            cluster.add_graph("neither")

    def test_unstarted_cluster_refuses_use(self):
        idle = ShardedCluster(workers=1, supervise=False)
        with pytest.raises(ClusterError):
            idle.add_graph("g", graph=_two_cliques())
        with pytest.raises(ClusterError):
            idle.frontend_port
        with pytest.raises(ClusterError):
            ShardedCluster(workers=0)


# ----------------------------------------------------------------------
# Fan-out endpoints
# ----------------------------------------------------------------------
class TestFanOut:
    def test_healthz_aggregates_the_fleet(self, cluster_client):
        health = cluster_client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["workers_alive"] == 2
        assert health["graphs"] >= len(GRAPHS)

    def test_graphs_merged_and_sorted(self, cluster_client):
        listing = cluster_client.graphs()
        names = [entry["name"] for entry in listing]
        assert names == sorted(names)
        assert set(GRAPHS) <= set(names)

    def test_stats_sums_worker_counters(self, cluster, cluster_client):
        for name in GRAPHS:
            cluster_client.top_r(name, k=3, r=1)
        stats = cluster_client.stats()
        assert set(GRAPHS) <= set(stats["graphs"])
        assert len(stats["workers"]) == 2
        assert stats["queries_total"] == \
            sum(w["queries_total"] for w in stats["workers"])
        assert stats["queries_total"] >= len(GRAPHS)
        assert stats["workers_down"] == []

    def test_compact_fans_out_and_merges_reports(self, cluster_client):
        cluster_client.apply_updates("alpha", [("delete", "b2", "b3")])
        cluster_client.apply_updates("alpha", [("insert", "b2", "b3")])
        report = cluster_client.compact()
        assert report["workers_compacted"] == 2
        assert report["removed_versions"] >= 1
        assert report["kept_versions"] >= len(GRAPHS)

    def test_cluster_topology_endpoint(self, cluster, cluster_client):
        topology = cluster_client._request("GET", "/cluster")
        assert [w["slot"] for w in topology["workers"]] == [0, 1]
        placement = {name: slot
                     for slot, w in enumerate(topology["workers"])
                     for name in w["graphs"]}
        for name in GRAPHS:
            assert placement[name] == cluster.owner(name) == PINS[name]
        assert topology["pins"] == PINS


# ----------------------------------------------------------------------
# Worker death, 503s, and supervised recovery
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def _retry_after(self, cluster, name):
        """Raw request so the Retry-After header is observable."""
        connection = http.client.HTTPConnection(
            "127.0.0.1", cluster.frontend_port, timeout=10)
        try:
            connection.request("GET", f"/graphs/{name}/top_r?k=3&r=1")
            response = connection.getresponse()
            return response.status, response.getheader("Retry-After"), \
                json.loads(response.read())
        finally:
            connection.close()

    def test_death_503_isolation_and_manual_recovery(self, cluster,
                                                     cluster_client):
        """Kill worker 0: its graphs 503 with Retry-After, worker 1's
        graph keeps answering, and restart_dead_workers() replays the
        registrations warm from the worker's own store root."""
        before = {name: cluster_client.top_r(name, k=3, r=5)
                  for name in GRAPHS}
        cluster.kill_worker(0)

        status, retry_after, body = self._retry_after(cluster, "alpha")
        assert status == 503
        assert retry_after is not None and int(retry_after) >= 1
        assert "worker 0" in body["error"]
        # The surviving worker's graph never drops.
        wire = cluster_client.top_r("beta", k=3, r=5)
        assert wire["vertices"] == before["beta"]["vertices"]
        # Fan-outs degrade instead of failing — and say so.
        health = cluster_client.healthz()
        assert health["status"] == "degraded"
        assert health["workers_down"] == [0]
        listing = cluster_client._request("GET", "/graphs")
        assert listing["workers_down"] == [0]
        assert "beta" in {entry["name"] for entry in listing["graphs"]}

        restarted = cluster.restart_dead_workers()
        assert restarted == [0]
        for name in GRAPHS:
            wire = cluster_client.top_r(name, k=3, r=5)
            assert json.dumps(wire["vertices"]) == \
                json.dumps(before[name]["vertices"]), name
        # Respawn warm-started from the worker's own store root.
        assert cluster_client.graph_stats("alpha")["warm_started"]
        assert cluster_client.healthz()["status"] == "ok"

    def test_kill_requires_a_live_worker(self, cluster):
        with pytest.raises(ClusterError):
            cluster.kill_worker(0) and cluster.kill_worker(0)

    def test_supervised_respawn_recovers_without_intervention(self):
        """The end-to-end promise: with supervision on, a killed worker
        comes back (registrations replayed) within the restart window."""
        graph = _two_cliques()
        with ShardedCluster(workers=2, pins={"solo": 1}, supervise=True,
                            restart_interval=0.1).start(port=0) as cluster:
            cluster.add_graph("solo", graph=graph)
            client = ServerClient(cluster.url)
            expected = online_search(graph, 3, 5).vertices
            assert client.top_r("solo", k=3, r=5)["vertices"] == expected
            cluster.kill_worker(1)
            deadline = time.time() + 30
            while time.time() < deadline:
                try:
                    wire = client.top_r("solo", k=3, r=5)
                    break
                except ServerError as exc:
                    assert exc.status in (0, 503)
                    time.sleep(0.05)
            else:
                pytest.fail("supervisor never brought worker 1 back")
            assert wire["vertices"] == expected
            client.close()
