"""Tests for the service layer: store, snapshot, updates, service.

The acceptance contract of the subsystem:

* **Warm-start correctness + payoff** — an engine or service started
  from an :class:`IndexStore` returns rank-identical answers to a cold
  engine across a seeded ``(k, r)`` grid, with *zero* index builds
  recorded.
* **Fine-grained invalidation** — an edge-update batch drops exactly
  the cached thresholds whose scores changed; untouched thresholds keep
  serving from cache (``search_space == 0``).
* **Snapshot isolation** — readers never see a half-applied update, and
  concurrent reads during an update are safe.
"""

import json
import random
import threading

import pytest

from repro.errors import GraphError, InvalidParameterError, StoreError
from repro.graph.graph import Graph
from repro.core.online import online_search
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher
from repro.engine import QueryEngine
from repro.service import (
    DiversityService,
    IndexStore,
    Snapshot,
    apply_batch,
    delete,
    graph_fingerprint,
    insert,
)

GRID = [(k, r) for k in (2, 3, 4, 5) for r in (1, 3, 10)]


def _ranked(result):
    return [(entry.vertex, entry.score) for entry in result.entries]


def _random_graph(n, p, seed):
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def _two_cliques() -> Graph:
    """A 5-clique and a disjoint 4-clique — score profiles split by k.

    Every 5-clique member's ego is a 4-clique (trussness 4): score 1
    for k in 2..4.  Every 4-clique member's ego is a triangle
    (trussness 3): score 1 for k in 2..3.  Deleting one 4-clique edge
    demotes the other members' egos to trussness 2, changing scores at
    k=3 only — the fine-grained invalidation fixture.
    """
    g = Graph()
    a = [f"a{i}" for i in range(5)]
    b = [f"b{i}" for i in range(4)]
    for clique in (a, b):
        for i in range(len(clique)):
            for j in range(i + 1, len(clique)):
                g.add_edge(clique[i], clique[j])
    return g


# ----------------------------------------------------------------------
# IndexStore
# ----------------------------------------------------------------------
class TestGraphFingerprint:
    def test_stable_under_copy(self):
        g = _random_graph(30, 0.3, 7)
        assert graph_fingerprint(g) == graph_fingerprint(g.copy())
        assert graph_fingerprint(g) == graph_fingerprint(g.copy().copy())

    def test_sensitive_to_edges_and_order(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        h = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        assert graph_fingerprint(g) != graph_fingerprint(h)
        # Same edges, different vertex insertion order: different
        # content — the canonical ranking contract depends on order.
        g2 = Graph(vertices=[2, 1, 0], edges=[(0, 1), (1, 2)])
        assert graph_fingerprint(g) != graph_fingerprint(g2)


class TestIndexStore:
    def test_put_load_round_trip(self, figure1, tmp_path):
        store = IndexStore(tmp_path / "store")
        tsd = TSDIndex.build(figure1)
        version = store.put(figure1, tsd=tsd, gct=GCTIndex.compress(tsd),
                            hybrid=HybridSearcher.precompute(figure1,
                                                             index=tsd))
        assert version.version == 1
        assert version.artifact_names == ["tsd", "gct", "hybrid"]
        loaded = IndexStore(tmp_path / "store").load(figure1)
        assert loaded.loaded_names == ["tsd", "gct", "hybrid"]
        assert loaded.tsd.score("v", 4) == 3
        assert loaded.gct.score("v", 4) == 3

    def test_unknown_graph_raises(self, figure1, tmp_path):
        store = IndexStore(tmp_path / "store")
        assert not store.has(figure1)
        with pytest.raises(StoreError):
            store.current(figure1)

    def test_versions_carry_forward_unchanged_artifacts(self, figure1,
                                                        tmp_path):
        store = IndexStore(tmp_path / "store")
        tsd = TSDIndex.build(figure1)
        v1 = store.put(figure1, tsd=tsd)
        v2 = store.put(figure1, gct=GCTIndex.compress(tsd))
        assert v2.version == 2
        # The tsd artifact was not rewritten: v2 references v1's file.
        assert v2.artifacts["tsd"] == v1.artifacts["tsd"]
        assert v2.artifacts["gct"] != v1.artifacts.get("gct")
        assert [v.version for v in store.versions(v2.key)] == [1, 2]

    def test_empty_version_rejected(self, figure1, tmp_path):
        store = IndexStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.put(figure1)

    def test_corrupt_manifest_rejected(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError):
            IndexStore(root)
        (root / "manifest.json").write_text(json.dumps({"format": "other"}),
                                            encoding="utf-8")
        with pytest.raises(StoreError):
            IndexStore(root)

    def test_artifact_writes_leave_no_tmp_files(self, figure1, tmp_path):
        """Artifacts go through tmp + os.replace (a crash mid-write must
        never leave a torn artifact); nothing temporary survives."""
        store = IndexStore(tmp_path / "store")
        tsd = TSDIndex.build(figure1)
        store.put(figure1, tsd=tsd, gct=GCTIndex.compress(tsd))
        leftovers = [p for p in (tmp_path / "store").rglob("*.tmp")]
        assert leftovers == []
        for artifact in (tmp_path / "store" / "objects").rglob("*.json"):
            json.loads(artifact.read_text(encoding="utf-8"))  # not torn

    def test_two_writers_sharing_a_root_lose_nothing(self, figure1,
                                                     tmp_path):
        """Regression: two IndexStore instances on one root (two
        processes in real life) each held a private manifest, and the
        last write silently dropped the other's versions.  The on-disk
        lock + manifest re-read in put() merges them."""
        other = figure1.copy()
        other.add_edge("v", "second-writer")
        a = IndexStore(tmp_path / "store")
        b = IndexStore(tmp_path / "store")  # stale private manifest
        version_a = a.put(figure1, tsd=TSDIndex.build(figure1))
        version_b = b.put(other, tsd=TSDIndex.build(other))
        merged = IndexStore(tmp_path / "store")
        assert set(merged.keys()) == {version_a.key, version_b.key}
        assert merged.load(figure1).tsd is not None
        assert merged.load(other).tsd is not None

    def test_put_scores_updates_current_version_in_place(self, figure1,
                                                         tmp_path):
        from repro.service import scores_from_payload, scores_to_payload
        store = IndexStore(tmp_path / "store")
        store.put(figure1, tsd=TSDIndex.build(figure1))
        snap = Snapshot.build(figure1)
        snap.top_r(4, 2)
        updated = store.put_scores(figure1,
                                   scores_to_payload(snap.score_entries()))
        assert updated.version == 1  # no new version minted
        assert "scores" in updated.artifacts
        loaded = IndexStore(tmp_path / "store").load(figure1)
        assert sorted(loaded.scores) == [4]
        score_map, ranking = loaded.scores[4]
        assert score_map["v"] == 3
        assert ranking[0] == ("v", 3)
        # An empty cache is not worth a write.
        assert store.put_scores(figure1, scores_to_payload({})) is None

    def test_cross_lineage_previous_link(self, figure1, tmp_path):
        """A content change re-versions: numbering continues from the
        parent and the manifest records the link."""
        store = IndexStore(tmp_path / "store")
        v1 = store.put(figure1, tsd=TSDIndex.build(figure1))
        mutated = figure1.copy()
        mutated.add_edge("v", "brand-new")
        v2 = store.put(mutated, tsd=TSDIndex.build(mutated), previous=v1)
        assert v2.key != v1.key
        assert v2.version == 2
        manifest = json.loads(
            (tmp_path / "store" / "manifest.json").read_text())
        record = manifest["graphs"][v2.key]["versions"]["2"]
        assert record["parent"] == {"key": v1.key, "version": 1}

    def test_no_stale_carry_forward_across_content_change(self, figure1,
                                                          tmp_path):
        """Regression: artifacts computed for different graph content
        must never be carried into a new lineage — a pre-update hybrid
        ranking would silently serve wrong scores."""
        store = IndexStore(tmp_path / "store")
        tsd = TSDIndex.build(figure1)
        v1 = store.put(figure1, tsd=tsd,
                       hybrid=HybridSearcher.precompute(figure1, index=tsd))
        mutated = figure1.copy()
        mutated.remove_edge("x1", "x2")
        v2 = store.put(mutated, tsd=TSDIndex.build(mutated),
                       gct=GCTIndex.build(mutated), previous=v1)
        # Only the supplied artifacts exist: v1's hybrid did not leak.
        assert v2.artifact_names == ["tsd", "gct"]
        assert store.load(mutated).hybrid is None


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_answers_match_online_search(self, figure1):
        snap = Snapshot.build(figure1)
        for k, r in GRID:
            assert _ranked(snap.top_r(k, r)) == \
                _ranked(online_search(figure1, k, r)), (k, r)

    def test_threshold_memoised(self, figure1):
        snap = Snapshot.build(figure1)
        assert snap.top_r(4, 2).search_space == figure1.num_vertices
        assert snap.top_r(4, 5).search_space == 0
        assert snap.cached_thresholds() == [4]

    def test_isolated_from_source_graph_mutation(self, figure1):
        snap = Snapshot.build(figure1)
        before = _ranked(snap.top_r(4, 1))
        figure1.add_edge("v", "intruder")
        assert _ranked(snap.top_r(4, 1)) == before
        assert "intruder" not in snap.graph

    def test_requires_an_index(self, figure1):
        with pytest.raises(InvalidParameterError):
            Snapshot(figure1)

    def test_gct_compressed_when_missing(self, figure1):
        snap = Snapshot(figure1, tsd=TSDIndex.build(figure1))
        assert snap.gct is not None
        assert snap.score("v", 4) == 3

    def test_score_and_contexts(self, figure1):
        snap = Snapshot.build(figure1)
        assert snap.score("v", 4) == 3
        assert len(snap.contexts("v", 4)) == 3
        with pytest.raises(InvalidParameterError):
            snap.score("ghost", 4)
        with pytest.raises(InvalidParameterError):
            snap.score("v", 1)


# ----------------------------------------------------------------------
# Engine warm start (the acceptance grid)
# ----------------------------------------------------------------------
class TestEngineWarmStart:
    @pytest.fixture
    def seeded_store(self, tmp_path):
        graph = _random_graph(25, 0.35, 42)
        store = IndexStore(tmp_path / "store")
        QueryEngine(graph).persist(store)
        return graph, store

    def test_rank_identical_with_zero_builds(self, seeded_store):
        graph, store = seeded_store
        cold = QueryEngine(graph)
        warm = QueryEngine(graph, warm_start=store)
        for method in ("gct", "tsd", "hybrid"):
            for k, r in GRID:
                assert (_ranked(warm.top_r(k, r, method=method))
                        == _ranked(cold.top_r(k, r, method=method))), \
                    (method, k, r)
        stats = warm.stats()
        assert stats.index_build_seconds == {}
        assert stats.warm_loaded == ["tsd", "gct", "hybrid"]
        assert "warm-started:      tsd, gct, hybrid" in stats.summary()

    def test_warm_start_accepts_a_path(self, seeded_store):
        graph, store = seeded_store
        warm = QueryEngine(graph, warm_start=str(store.root))
        assert warm.stats().warm_loaded == ["tsd", "gct", "hybrid"]

    def test_tsd_only_store_compresses_instead_of_rebuilding(self,
                                                             tmp_path):
        """Regression: with only a TSD artifact stored, a GCT query must
        load + compress the stored forests — never re-decompose every
        ego from the graph."""
        graph = _random_graph(25, 0.35, 42)
        store = IndexStore(tmp_path / "store")
        QueryEngine(graph).persist(store, artifacts=("tsd",))
        warm = QueryEngine(graph, warm_start=store)
        result = warm.top_r(3, 5, method="gct")
        assert _ranked(result) == _ranked(online_search(graph, 3, 5))
        stats = warm.stats()
        assert "tsd" not in stats.index_build_seconds  # loaded, not built
        assert "gct" in stats.index_build_seconds      # cheap compress
        # The compress must have come from the stored forests.
        assert warm._tsd is not None

    def test_unknown_graph_falls_back_to_cold(self, tmp_path, figure1):
        engine = QueryEngine(figure1,
                             warm_start=IndexStore(tmp_path / "store"))
        assert engine.stats().warm_loaded == []
        assert _ranked(engine.top_r(4, 1, method="gct")) == \
            _ranked(online_search(figure1, 4, 1))
        assert "gct" in engine.stats().index_build_seconds

    def test_persist_builds_at_most_once(self, figure1, tmp_path):
        engine = QueryEngine(figure1)
        engine.top_r(4, 1, method="gct")
        seconds = dict(engine.stats().index_build_seconds)
        engine.persist(tmp_path / "store", artifacts=("gct",))
        assert engine.stats().index_build_seconds == seconds

    def test_persist_rejects_unknown_artifacts(self, figure1, tmp_path):
        with pytest.raises(InvalidParameterError):
            QueryEngine(figure1).persist(tmp_path / "store",
                                         artifacts=("gct", "quantum"))

    def test_snapshot_handoff_carries_cache(self, figure1):
        engine = QueryEngine(figure1)
        engine.top_r(4, 2, method="gct")
        snap = engine.snapshot()
        assert snap.cached_thresholds() == [4]
        assert snap.top_r(4, 1).search_space == 0
        # One-way hand-off: engine invalidation cannot hurt the snapshot.
        engine.invalidate()
        assert _ranked(snap.top_r(4, 1)) == \
            _ranked(online_search(figure1, 4, 1))


# ----------------------------------------------------------------------
# Live updates
# ----------------------------------------------------------------------
class TestApplyBatch:
    def test_matches_fresh_build_after_mixed_batch(self):
        graph = _random_graph(14, 0.4, 3)
        snap = Snapshot.build(graph)
        batch = [delete(*next(iter(graph.edges()))), insert(0, 13),
                 insert(1, 12)]
        # Drop duplicates of existing edges from the synthetic batch.
        batch = [u for u in batch
                 if u.op == "delete" or not graph.has_edge(u.u, u.v)]
        nxt, report = apply_batch(snap, batch)
        expected = graph.copy()
        for update in batch:
            if update.op == "insert":
                expected.add_edge(update.u, update.v)
            else:
                expected.remove_edge(update.u, update.v)
        assert nxt.graph == expected
        for k, r in GRID:
            assert _ranked(nxt.top_r(k, r)) == \
                _ranked(online_search(expected, k, r)), (k, r)

    def test_repaired_indexes_structurally_fresh(self):
        """Affected-vertex repair must equal a from-scratch build, not
        merely answer queries identically."""
        graph = _random_graph(12, 0.5, 9)
        snap = Snapshot.build(graph)
        u, v = next(iter(graph.edges()))
        nxt, _ = apply_batch(snap, [delete(u, v)])
        fresh = GCTIndex.build(nxt.graph)
        assert nxt.gct.vertices == fresh.vertices
        for w in nxt.graph.vertices():
            assert nxt.gct.supernodes(w) == fresh.supernodes(w), w
            assert nxt.gct.superedges(w) == fresh.superedges(w), w

    def test_only_affected_thresholds_invalidated(self):
        graph = _two_cliques()
        snap = Snapshot.build(graph)
        for k in (2, 3, 4):
            snap.top_r(k, 9)
        assert snap.cached_thresholds() == [2, 3, 4]
        nxt, report = apply_batch(snap, [delete("b2", "b3")])
        # The deletion demotes 4-clique egos from trussness 3 to 2:
        # scores change at k=3 only.
        assert report.invalidated_thresholds == (3,)
        assert report.retained_thresholds == (2, 4)
        assert not report.vertex_set_changed
        assert set(report.affected_vertices) == {"b0", "b1", "b2", "b3"}
        # Retained thresholds keep serving from cache...
        assert nxt.top_r(2, 9).search_space == 0
        assert nxt.top_r(4, 9).search_space == 0
        # ...the invalidated one recomputes, and every answer is exact.
        assert nxt.top_r(3, 9).search_space == nxt.graph.num_vertices
        for k in (2, 3, 4):
            assert _ranked(nxt.top_r(k, 9)) == \
                _ranked(online_search(nxt.graph, k, 9)), k

    def test_new_vertex_drops_every_threshold(self):
        graph = _two_cliques()
        snap = Snapshot.build(graph)
        snap.top_r(2, 3)
        nxt, report = apply_batch(snap, [insert("a0", "newcomer")])
        assert report.vertex_set_changed
        assert report.invalidated_thresholds == (2,)
        assert nxt.cached_thresholds() == []
        assert _ranked(nxt.top_r(2, 10)) == \
            _ranked(online_search(nxt.graph, 2, 10))

    def test_input_snapshot_untouched(self):
        graph = _two_cliques()
        snap = Snapshot.build(graph)
        before = _ranked(snap.top_r(3, 9))
        apply_batch(snap, [delete("b2", "b3")])
        assert _ranked(snap.top_r(3, 9)) == before
        assert snap.graph.has_edge("b2", "b3")

    def test_bad_updates_rejected(self, triangle):
        snap = Snapshot.build(triangle)
        with pytest.raises(GraphError):
            apply_batch(snap, [insert(0, 1)])      # already present
        with pytest.raises(InvalidParameterError):
            apply_batch(snap, [("teleport", 0, 1)])
        with pytest.raises(GraphError):
            apply_batch(snap, [insert(0, 0)])      # self-loop

    def test_tuples_accepted(self, triangle):
        snap = Snapshot.build(triangle)
        nxt, report = apply_batch(snap, [("insert", 2, 3),
                                         ("delete", 0, 2)])
        assert report.num_updates == 2
        assert nxt.graph.has_edge(2, 3) and not nxt.graph.has_edge(0, 2)


# ----------------------------------------------------------------------
# DiversityService
# ----------------------------------------------------------------------
class TestDiversityService:
    def test_cold_start_persists_for_next_warm_start(self, tmp_path):
        graph = _random_graph(15, 0.4, 5)
        store = IndexStore(tmp_path / "store")
        first = DiversityService.start(graph, store=store)
        assert not first.warm_started
        second = DiversityService.start(graph, store=store)
        assert second.warm_started
        for k, r in GRID:
            assert _ranked(second.top_r(k, r)) == \
                _ranked(online_search(graph, k, r)), (k, r)

    def test_warm_requires_known_graph(self, figure1, tmp_path):
        with pytest.raises(StoreError):
            DiversityService.warm(figure1, IndexStore(tmp_path / "store"))

    def test_updates_re_version_the_store(self, tmp_path):
        graph = _two_cliques()
        store = IndexStore(tmp_path / "store")
        service = DiversityService.start(graph, store=store)
        assert service.snapshot.version == 1
        report = service.apply_updates([delete("b2", "b3")])
        assert report.num_updates == 1
        assert service.snapshot.version == 2
        # The store can now warm-start a service on the *updated* graph.
        mutated = service.snapshot.graph
        revived = DiversityService.warm(mutated, store)
        for k, r in GRID:
            assert _ranked(revived.top_r(k, r)) == \
                _ranked(online_search(mutated, k, r)), (k, r)

    def test_readers_see_before_or_after_never_between(self):
        """Concurrent top_r during an update returns either the old or
        the new snapshot's exact answer — snapshot isolation."""
        graph = _two_cliques()
        service = DiversityService.start(graph)
        old = _ranked(service.top_r(3, 9))
        new_graph = graph.copy()
        new_graph.remove_edge("b2", "b3")
        new = _ranked(online_search(new_graph, 3, 9))

        answers, errors = [], []

        def reader():
            try:
                for _ in range(50):
                    answers.append(_ranked(service.top_r(3, 9)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        service.apply_updates([delete("b2", "b3")])
        for t in threads:
            t.join()
        assert not errors
        assert set(map(tuple, answers)) <= {tuple(old), tuple(new)}
        assert _ranked(service.top_r(3, 9)) == new

    def test_stats_summary(self, figure1):
        service = DiversityService.start(figure1)
        service.top_r(4, 1)
        service.apply_updates([insert("v", "w-new")])
        text = service.stats_summary()
        assert "queries served:    1" in text
        assert "updates applied:   1" in text
        assert "update batches:" in text
        assert len(service.update_reports()) == 1

    def test_score_and_contexts_pass_through(self, figure1):
        service = DiversityService.start(figure1)
        assert service.score("v", 4) == 3
        assert len(service.contexts("v", 4)) == 3

    def test_contexts_counted_in_stats_ledger(self, figure1):
        """Regression: contexts() never went through _count_queries, so
        the ledger undercounted served queries relative to top_r/score."""
        service = DiversityService.start(figure1)
        service.top_r(4, 1)
        service.score("v", 4)
        service.contexts("v", 4)
        service.contexts("v", 3)
        assert service.stats_payload()["queries"] == 4
        assert "queries served:    4" in service.stats_summary()

    def test_version_of_swallows_only_store_errors(self, figure1,
                                                   tmp_path, monkeypatch):
        """Regression: _version_of caught *all* exceptions, silently
        dropping cross-lineage parent links on real store corruption.
        StoreError (no lineage) stays handled; anything else propagates."""
        store = IndexStore(tmp_path / "store")
        service = DiversityService.start(figure1, store=store)

        monkeypatch.setattr(store, "current",
                            lambda *a, **kw: (_ for _ in ()).throw(
                                StoreError("lineage compacted away")))
        report = service.apply_updates([insert("v", "w-new")])
        assert report.num_updates == 1  # handled: link-less re-version

        monkeypatch.setattr(store, "current",
                            lambda *a, **kw: (_ for _ in ()).throw(
                                OSError("disk on fire")))
        with pytest.raises(OSError):
            service.apply_updates([insert("v", "w-newer")])


# ----------------------------------------------------------------------
# Snapshot immutability from outside
# ----------------------------------------------------------------------
class TestSnapshotGraphIsolation:
    def test_graph_property_hands_out_a_defensive_copy(self, figure1):
        """Regression: Snapshot.graph returned the snapshot's private
        copy, so a caller mutating it corrupted the "immutable"
        snapshot (and its content-hash store key)."""
        snap = Snapshot.build(figure1)
        before = _ranked(snap.top_r(4, 3))
        fingerprint = graph_fingerprint(snap.graph)
        leaked = snap.graph
        leaked.add_edge("v", "vandal")
        leaked.remove_edge("x1", "x2")
        assert "vandal" not in snap.graph
        assert snap.graph.has_edge("x1", "x2")
        assert _ranked(snap.top_r(4, 3)) == before
        assert graph_fingerprint(snap.graph) == fingerprint
        assert snap.num_vertices == snap.graph.num_vertices
        assert snap.num_edges == snap.graph.num_edges


# ----------------------------------------------------------------------
# Store compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_reclaims_superseded_versions_of_a_multi_update_lineage(
            self, tmp_path):
        """The acceptance bar: ≥1 stale version reclaimed on a
        multi-update lineage, with warm starts intact afterwards."""
        graph = _two_cliques()
        store = IndexStore(tmp_path / "store")
        service = DiversityService.start(graph, store=store)
        service.apply_updates([delete("b2", "b3")])
        service.apply_updates([insert("b2", "b3"), insert("a0", "b0")])
        assert len(store.keys()) == 3  # one lineage per content change

        report = store.compact()
        assert report.removed_versions >= 2
        assert len(report.removed_keys) == 2
        assert report.reclaimed_bytes > 0
        assert report.kept_versions == 1

        # The surviving head still warm-starts from a fresh process.
        final = service.snapshot.graph
        revived = DiversityService.warm(final, IndexStore(tmp_path / "store"))
        for k, r in GRID:
            assert _ranked(revived.top_r(k, r)) == \
                _ranked(online_search(final, k, r)), (k, r)

    def test_never_deletes_artifacts_carried_forward_into_a_head(
            self, figure1, tmp_path):
        """A head's record may reference files physically stored under a
        pruned version's directory; refcounting must keep them."""
        store = IndexStore(tmp_path / "store")
        tsd = TSDIndex.build(figure1)
        v1 = store.put(figure1, tsd=tsd)
        v2 = store.put(figure1, gct=GCTIndex.compress(tsd))
        assert v2.artifacts["tsd"] == v1.artifacts["tsd"]  # carried forward

        report = store.compact()
        assert report.removed_versions == 1  # v1's record
        assert (tmp_path / "store" / v1.artifacts["tsd"]).exists()
        loaded = IndexStore(tmp_path / "store").load(figure1)
        assert loaded.tsd.score("v", 4) == 3
        assert loaded.gct.score("v", 4) == 3

    def test_strips_parent_links_to_pruned_versions(self, figure1,
                                                    tmp_path):
        store = IndexStore(tmp_path / "store")
        v1 = store.put(figure1, tsd=TSDIndex.build(figure1))
        mutated = figure1.copy()
        mutated.add_edge("v", "brand-new")
        store.put(mutated, tsd=TSDIndex.build(mutated), previous=v1)
        store.compact()
        manifest = json.loads(
            (tmp_path / "store" / "manifest.json").read_text())
        assert v1.key not in manifest["graphs"]
        (record,) = [rec
                     for entry in manifest["graphs"].values()
                     for rec in entry["versions"].values()]
        assert "parent" not in record

    def test_compacting_an_empty_or_single_version_store_is_a_noop(
            self, figure1, tmp_path):
        store = IndexStore(tmp_path / "store")
        assert store.compact().removed_versions == 0
        store.put(figure1, tsd=TSDIndex.build(figure1))
        report = store.compact()
        assert report.removed_versions == 0
        assert report.kept_versions == 1
        assert store.load(figure1).tsd is not None

    def test_report_summary_and_payload(self, figure1, tmp_path):
        store = IndexStore(tmp_path / "store")
        tsd = TSDIndex.build(figure1)
        store.put(figure1, tsd=tsd)
        store.put(figure1, gct=GCTIndex.compress(tsd))
        report = store.compact()
        assert "1 version(s)" in report.summary()
        assert report.to_payload()["removed_versions"] == 1


# ----------------------------------------------------------------------
# Persisted score caches
# ----------------------------------------------------------------------
class TestPersistedScores:
    def test_hot_thresholds_survive_a_warm_restart(self, tmp_path):
        """The tentpole storage claim: persisted score caches re-seed on
        warm start, so hot thresholds restart warm (search_space 0)."""
        graph = _random_graph(20, 0.35, 13)
        store = IndexStore(tmp_path / "store")
        first = DiversityService.start(graph, store=store)
        expected = {k: _ranked(first.top_r(k, 9)) for k in (3, 4)}
        assert first.persist_scores() == [3, 4]

        revived = DiversityService.start(graph,
                                         store=IndexStore(tmp_path / "store"))
        assert revived.warm_started
        assert revived.snapshot.cached_thresholds() == [3, 4]
        for k in (3, 4):
            result = revived.top_r(k, 9)
            assert result.search_space == 0  # served from the seeded cache
            assert _ranked(result) == expected[k]
        # Un-persisted thresholds still compute exactly.
        assert _ranked(revived.top_r(5, 9)) == \
            _ranked(online_search(graph, 5, 9))

    def test_persist_scores_requires_a_store(self, figure1):
        service = DiversityService.start(figure1)
        with pytest.raises(StoreError):
            service.persist_scores()

    def test_update_re_version_carries_retained_scores_to_disk(
            self, tmp_path):
        """apply_updates persists the surviving cache entries with the
        new version, so a restart after an update is warm for them."""
        graph = _two_cliques()
        store = IndexStore(tmp_path / "store")
        service = DiversityService.start(graph, store=store)
        for k in (2, 3, 4):
            service.top_r(k, 9)
        service.apply_updates([delete("b2", "b3")])  # drops k=3 only

        mutated = service.snapshot.graph
        revived = DiversityService.warm(mutated,
                                        IndexStore(tmp_path / "store"))
        assert revived.snapshot.cached_thresholds() == [2, 4]
        assert revived.top_r(2, 9).search_space == 0
        for k in (2, 3, 4):
            assert _ranked(revived.top_r(k, 9)) == \
                _ranked(online_search(mutated, k, 9)), k

    def test_scores_payload_round_trip(self):
        from repro.service import scores_from_payload, scores_to_payload
        snap = Snapshot.build(_two_cliques())
        snap.top_r(3, 4)
        entries = snap.score_entries()
        restored = scores_from_payload(
            json.loads(json.dumps(scores_to_payload(entries))))
        assert sorted(restored) == sorted(entries)
        for k, (score_map, ranking) in entries.items():
            assert restored[k][0] == score_map
            assert restored[k][1] == ranking
        with pytest.raises(InvalidParameterError):
            scores_from_payload({"format": "something-else"})
