"""Tests for the statistical analysis helpers."""

import pytest

from repro.errors import InvalidParameterError
from repro.analysis import (
    summarize_scores,
    diversity_contagion_correlation,
    compare_selections,
)


class TestSummarize:
    def test_basic(self):
        summary = summarize_scores({1: 0, 2: 2, 3: 2, 4: 5})
        assert summary.count == 4
        assert summary.nonzero == 3
        assert summary.maximum == 5
        assert summary.mean == pytest.approx(2.25)
        assert summary.histogram == {0: 1, 2: 2, 5: 1}
        assert summary.nonzero_fraction == pytest.approx(0.75)

    def test_empty(self):
        summary = summarize_scores({})
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.nonzero_fraction == 0.0


class TestCorrelation:
    def test_perfect_positive(self):
        scores = {i: i for i in range(1, 11)}
        activation = {i: i / 10.0 for i in range(1, 11)}
        result = diversity_contagion_correlation(scores, activation)
        assert result.spearman_rho == pytest.approx(1.0)
        assert result.is_positive
        assert result.is_significant()
        assert result.sample_size == 10

    def test_negative(self):
        scores = {i: i for i in range(1, 11)}
        activation = {i: 1.0 - i / 10.0 for i in range(1, 11)}
        result = diversity_contagion_correlation(scores, activation)
        assert result.spearman_rho == pytest.approx(-1.0)
        assert not result.is_positive

    def test_zero_score_exclusion(self):
        scores = {1: 0, 2: 0, 3: 1, 4: 2, 5: 3, 6: 4}
        activation = {v: v / 10 for v in scores}
        full = diversity_contagion_correlation(scores, activation)
        positive_only = diversity_contagion_correlation(
            scores, activation, include_zero_scores=False)
        assert positive_only.sample_size == 4
        assert full.sample_size == 6

    def test_too_few_points(self):
        with pytest.raises(InvalidParameterError):
            diversity_contagion_correlation({1: 1, 2: 2}, {1: 0.1, 2: 0.2})

    def test_constant_variable_rejected(self):
        scores = {i: 1 for i in range(10)}
        activation = {i: i / 10 for i in range(10)}
        with pytest.raises(InvalidParameterError):
            diversity_contagion_correlation(scores, activation)

    def test_disjoint_keys_rejected(self):
        with pytest.raises(InvalidParameterError):
            diversity_contagion_correlation({1: 1}, {2: 0.5})


class TestCompareSelections:
    def test_ordering(self):
        activation = {1: 0.9, 2: 0.5, 3: 0.1, 4: 0.2}
        ranking = compare_selections(activation, {
            "good": [1, 2],
            "bad": [3, 4],
        })
        assert ranking[0][0] == "good"
        assert ranking[0][1] == pytest.approx(0.7)
        assert ranking[1][1] == pytest.approx(0.15)

    def test_missing_vertices_skipped(self):
        ranking = compare_selections({1: 1.0}, {"m": [1, 99]})
        assert ranking == [("m", 1.0)]

    def test_empty_selection(self):
        assert compare_selections({1: 1.0}, {"m": []}) == [("m", 0.0)]
