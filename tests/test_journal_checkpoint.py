"""Journal checkpointing: bounded recovery for long-lived clusters.

PR 9's recovery replayed every graph's full update journal from
sequence 0 out of an unbounded in-memory list — recovery time and
frontend RSS grew with total update history.  These tests pin the fix:

* **Bounded journal, bounded replay.**  After K×window acked batches,
  the frontend retains at most one window of bodies, and a respawn
  replays only the retained suffix — the checkpointed prefix is folded
  into the graph's effective registration, whose fingerprint lands the
  worker on the checkpointed store chain tip.
* **Truncation drives the resync contract.**  A feed consumer that
  sleeps past a checkpoint's truncation sees ``complete=False`` and
  must full-resync; consumers at the floor replay the suffix whole.
* **Rankings stay oracle-identical across truncation** — folding is a
  pure refactoring of the replay script, never a semantic change.
* **Deregistration drops every per-graph residue** (journal record,
  write gate, worker feed, shard pin) — previously a slow leak.
"""

import json
import threading
import time

import pytest

from repro.cluster import ShardedCluster
from repro.errors import ClusterError, ServerError
from repro.graph.graph import Graph
from repro.replication import replicate_store
from repro.server import ServerClient
from repro.service.service import DiversityService

SEED = 20210416  # match the chaos suite: one schedule, replayed exactly


def _clique(n: int = 5) -> Graph:
    g = Graph()
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(f"c{i}", f"c{j}")
    return g


def _chain_batch(i: int):
    """Batch ``i``: one fresh edge hanging a chain off the clique."""
    head = "c0" if i == 0 else f"n{i - 1}"
    return [("insert", head, f"n{i}")]


def _oracle(batches):
    service = DiversityService.cold(_clique())
    for batch in batches:
        service.apply_updates(list(batch))
    return service


def _answer(client: ServerClient, name: str):
    payload = client.top_r(name, k=3, r=5)
    return payload["vertices"], payload["scores"]


def _oracle_answer(service: DiversityService):
    result = service.top_r(3, 5)
    return result.vertices, result.scores


class TestBoundedJournal:
    """K×window batches: memory stays O(window), replay ≤ one window."""

    WINDOW = 8
    ROUNDS = 27  # 3 full windows + a retained tail of 3

    def test_respawn_replays_at_most_one_window(self):
        fleet = ShardedCluster(workers=1, pins={"alpha": 0},
                               store_codec="bin", supervise=False,
                               journal_window=self.WINDOW)
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0)
            fleet.add_graph("alpha", graph=_clique())
            batches = [_chain_batch(i) for i in range(self.ROUNDS)]
            max_body = max(len(json.dumps({"updates": b}).encode())
                           for b in batches)
            for i, batch in enumerate(batches):
                client.apply_updates("alpha", batch)
                # The retained journal never exceeds the window, and
                # its byte accounting tracks the retained bodies only.
                assert fleet.journal_length("alpha") <= self.WINDOW
                assert fleet.journal_total("alpha") == i + 1
                journal = fleet.journal_payload()["graphs"]["alpha"]
                assert journal["bytes_retained"] \
                    <= self.WINDOW * (max_body + 32)

            retained = fleet.journal_length("alpha")
            assert retained == self.ROUNDS % self.WINDOW  # 3, not 27
            fleet.kill_worker(0)
            assert fleet.restart_dead_workers() == [0]

            # The respawned worker's feed counts the batches actually
            # replayed into it: the retained suffix, not the history.
            replayed = client.update_feed("alpha")["last_seq"]
            assert replayed == retained <= self.WINDOW

            # And the recovered rankings are oracle-identical: folding
            # changed the replay script, never the served answers.
            oracle = _oracle(batches)
            assert _answer(client, "alpha") == _oracle_answer(oracle)
            assert client.graph_stats("alpha")["warm_started"] is True

            # /stats surfaces the truncated journal.
            journal = client.stats()["journal"]
            assert journal["window"] == self.WINDOW
            entry = journal["graphs"]["alpha"]
            assert entry["total"] == self.ROUNDS
            assert entry["entries"] == retained
            assert entry["checkpointed"] == self.ROUNDS - retained
            assert entry["checkpoint_version"] is not None
            assert entry["checkpoint_key"] is not None
            client.close()
        finally:
            fleet.stop()

    def test_move_after_checkpoint_stays_oracle_identical(self):
        fleet = ShardedCluster(workers=2, pins={"alpha": 0},
                               store_codec="bin", supervise=False,
                               journal_window=2)
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0)
            fleet.add_graph("alpha", graph=_clique())
            batches = [_chain_batch(i) for i in range(5)]
            for batch in batches:
                client.apply_updates("alpha", batch)
            assert fleet.journal_length("alpha") < 5  # checkpointed

            outcome = fleet.move_graph("alpha", 1, drain_seconds=0.05)
            assert outcome["moved"] and fleet.owner("alpha") == 1
            oracle = _oracle(batches)
            assert _answer(client, "alpha") == _oracle_answer(oracle)

            # Post-move writes keep journaling (and folding) normally.
            extra = _chain_batch(5)
            client.apply_updates("alpha", extra)
            assert fleet.journal_total("alpha") == 6
            oracle = _oracle(batches + [extra])
            assert _answer(client, "alpha") == _oracle_answer(oracle)
            client.close()
        finally:
            fleet.stop()


class TestTruncationResync:
    """The chaos leg: a consumer sleeps past a checkpoint's truncation
    and must take the ``complete=False`` full-resync path."""

    def test_sleeping_consumer_forced_to_full_resync(self):
        fleet = ShardedCluster(workers=1, pins={"alpha": 0},
                               store_codec="bin", supervise=False,
                               followers=1, replication_interval=900.0,
                               journal_window=4)
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0)
            fleet.add_graph("alpha", graph=_clique())
            batches = [_chain_batch(i) for i in range(6)]
            client.apply_updates("alpha", batches[0])
            client.apply_updates("alpha", batches[1])

            # The consumer tails the feed, then falls asleep at seq 2.
            tail = client.update_feed("alpha", since=0)
            assert tail["complete"] and tail["last_seq"] == 2
            asleep_at = tail["last_seq"]

            # While it sleeps: more batches land, replication ships
            # them durably, and the checkpoint truncates both the
            # frontend journal and the worker's feed floor.
            for batch in batches[2:]:
                client.apply_updates("alpha", batch)
            fleet.replicate_followers()
            assert fleet.last_replication_error is None
            assert fleet.journal_length("alpha") == 0
            assert fleet.journal_total("alpha") == 6

            # Waking up: the feed no longer reaches back to seq 2 —
            # the contract says full resync, not silent gap-skipping.
            woke = client.update_feed("alpha", since=asleep_at)
            assert woke["complete"] is False

            # The resync path (re-read the served state whole) agrees
            # with an oracle that applied every acked batch.
            oracle = _oracle(batches)
            assert _answer(client, "alpha") == _oracle_answer(oracle)

            # A consumer at the floor is unaffected.
            at_floor = client.update_feed("alpha",
                                          since=woke["last_seq"])
            assert at_floor["complete"] and at_floor["entries"] == []
            client.close()
        finally:
            fleet.stop()

    def test_long_poll_laggard_woken_by_truncation(self):
        fleet = ShardedCluster(workers=1, pins={"alpha": 0},
                               store_codec="bin", supervise=False,
                               followers=1, replication_interval=900.0,
                               journal_window=2)
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0)
            poller = ServerClient(fleet.url, timeout=30.0)
            fleet.add_graph("alpha", graph=_clique())
            for i in range(3):
                client.apply_updates("alpha", _chain_batch(i))

            results = []

            def poll():  # parked: seq 3 is the feed's head right now
                results.append(poller.update_feed("alpha", since=3,
                                                  timeout=10))

            thread = threading.Thread(target=poll)
            thread.start()
            time.sleep(0.2)
            # Replication + checkpoint truncate the worker feed; the
            # parked long-poller must not sleep through its own
            # obsolescence... but a floor at 3 does not strand it:
            # only a *later* append or a floor past 3 wakes it.
            fleet.replicate_followers()
            client.apply_updates("alpha", _chain_batch(3))
            thread.join(timeout=10)
            assert not thread.is_alive()
            answer = results[0]
            assert answer["last_seq"] == 4
            assert [e["seq"] for e in answer["entries"]] == [4]
            client.close()
            poller.close()
        finally:
            fleet.stop()


class TestRemoveGraph:
    """Deregistration drops the journal record, write gate, worker
    registration, and shard pin — nothing per-graph leaks."""

    def test_remove_drops_all_frontend_state(self):
        fleet = ShardedCluster(workers=2, pins={"alpha": 0},
                               supervise=False)
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0, retries=0)
            fleet.add_graph("alpha", graph=_clique())
            client.apply_updates("alpha", _chain_batch(0))
            assert fleet.journal_total("alpha") == 1
            assert "alpha" in fleet._write_gates

            answer = fleet.remove_graph("alpha")
            assert answer["removed"] and answer["worker"] == 0
            assert fleet.graphs() == []
            assert fleet.journal_total("alpha") == 0
            assert "alpha" not in fleet._write_gates
            assert "alpha" not in fleet._journal
            assert "alpha" not in fleet.shard_map.pins
            with pytest.raises(ServerError) as excinfo:
                client.top_r("alpha", k=3, r=5)
            assert excinfo.value.status == 404

            # A respawn never resurrects it, and a re-add starts clean.
            fleet.kill_worker(fleet.owner("alpha"))
            fleet.restart_dead_workers()
            with pytest.raises(ServerError) as excinfo:
                client.top_r("alpha", k=3, r=5)
            assert excinfo.value.status == 404
            fleet.add_graph("alpha", graph=_clique())
            assert _answer(client, "alpha") == \
                _oracle_answer(_oracle([]))
            client.close()
        finally:
            fleet.stop()

    def test_remove_unknown_graph_raises(self):
        fleet = ShardedCluster(workers=1, supervise=False)
        fleet.start(port=0)
        try:
            with pytest.raises(ClusterError):
                fleet.remove_graph("ghost")
        finally:
            fleet.stop()


class TestNewestReplicaRestore:
    """With several followers at different ages, a lost primary is
    restored from the *newest* replica, not the lowest index."""

    def test_restore_prefers_the_freshest_follower(self):
        fleet = ShardedCluster(workers=1, pins={"alpha": 0},
                               store_codec="bin", supervise=False,
                               followers=2, replication_interval=900.0,
                               journal_window=0)
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0)
            fleet.add_graph("alpha", graph=_clique())
            primary = fleet.store_root / "worker0"

            # replica0 syncs early (stale), replica1 after more writes
            # (fresh) — index order would wrongly prefer replica0.
            client.apply_updates("alpha", _chain_batch(0))
            replicate_store(primary, fleet.replica_root(0, 0))
            client.apply_updates("alpha", _chain_batch(1))
            client.apply_updates("alpha", _chain_batch(2))
            replicate_store(primary, fleet.replica_root(0, 1))

            fleet.destroy_worker_store(0)
            assert fleet.restart_dead_workers() == [0]
            note = fleet.last_restore_note or ""
            assert "replica1" in note, note
            oracle = _oracle([_chain_batch(i) for i in range(3)])
            assert _answer(client, "alpha") == _oracle_answer(oracle)
            client.close()
        finally:
            fleet.stop()
