"""Tests for the Hybrid method (Exp-4 competitor)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.core.hybrid import HybridSearcher
from repro.core.online import online_search
from repro.core.diversity import structural_diversity

from tests.conftest import dense_graph_strategy


class TestHybrid:
    def test_paper_example(self, figure1):
        hybrid = HybridSearcher.precompute(figure1)
        result = hybrid.top_r(4, 1)
        assert result.vertices == ["v"]
        assert result.scores == [3]
        assert result.method == "hybrid"

    def test_contexts_computed_online(self, figure1):
        hybrid = HybridSearcher.precompute(figure1)
        result = hybrid.top_r(4, 1)
        assert len(result.entries[0].contexts) == 3

    def test_search_space_is_r(self, figure1):
        """Hybrid's cost driver: one online context pass per answer."""
        hybrid = HybridSearcher.precompute(figure1)
        assert hybrid.top_r(4, 1).search_space == 1
        assert hybrid.top_r(2, 5).search_space == 5

    def test_search_space_counts_actual_context_calls(self, figure1):
        """Regression: search_space must count social_contexts calls,
        not answer length — zero with collect_contexts=False, zero for
        all-zero answers beyond max_k, and only positive-score entries
        otherwise."""
        hybrid = HybridSearcher.precompute(figure1)
        assert hybrid.top_r(4, 5, collect_contexts=False).search_space == 0
        assert hybrid.top_r(99, 3).search_space == 0
        result = hybrid.top_r(4, figure1.num_vertices)
        positives = sum(1 for s in result.scores if s > 0)
        assert result.search_space == positives
        assert positives < len(result.entries)

    def test_k_above_max_returns_zeros(self, figure1):
        hybrid = HybridSearcher.precompute(figure1)
        result = hybrid.top_r(99, 3)
        assert result.scores == [0, 0, 0]

    def test_max_k(self, figure1):
        hybrid = HybridSearcher.precompute(figure1)
        assert hybrid.max_k == 4

    def test_r_clamped_like_other_methods(self, figure1):
        result = HybridSearcher.precompute(figure1).top_r(4, 999)
        assert result.r == figure1.num_vertices
        assert len(result.entries) == figure1.num_vertices

    def test_validation(self, figure1):
        hybrid = HybridSearcher.precompute(figure1)
        with pytest.raises(InvalidParameterError):
            hybrid.top_r(1, 1)
        with pytest.raises(InvalidParameterError):
            hybrid.top_r(3, 0)

    @given(dense_graph_strategy(), st.sampled_from([2, 3, 4]),
           st.sampled_from([1, 3, 6]))
    @settings(max_examples=20)
    def test_matches_baseline_scores(self, g, k, r):
        hybrid = HybridSearcher.precompute(g)
        expected = sorted(online_search(g, k, r).scores, reverse=True)
        got = sorted(hybrid.top_r(k, r).scores, reverse=True)
        assert got == expected

    @given(dense_graph_strategy())
    @settings(max_examples=15)
    def test_claimed_scores_correct(self, g):
        hybrid = HybridSearcher.precompute(g)
        for entry in hybrid.top_r(3, 4).entries:
            assert entry.score == structural_diversity(g, entry.vertex, 3)
