"""Chaos tests: replicated failover under seeded fault injection.

Every schedule here is driven by a :class:`FaultInjector` seeded with
``SEED`` — which worker dies next, where a byte flips, how long a kill
is delayed all replay deterministically, so a red run reproduces
byte-for-byte instead of going "flaky, reran, green".

The acceptance claims exercised:

* **Rolling restarts lose nothing.**  With supervision and one
  follower per worker, every worker killed once under live retrying
  traffic produces zero escaped failures and zero wrong answers —
  respawned workers warm-start and replay the acked update journal
  before they are published, so a served answer is never stale.
* **Shard moves are zero-503.**  A drain/double-serve ``move_graph``
  under live **non-retrying** traffic never surfaces a 5xx.
* **A lost disk recovers from the replica.**  A worker whose primary
  store root is destroyed warm-starts from its follower copy (no
  access to the dead worker's disk) and serves the as-last-served
  rankings; a *corrupt* replica is refused, the worker cold-rebuilds
  (slow but never wrong), and the next sync pass repairs the replica.
* **No half-applied version ever publishes.**  A worker SIGKILLed at a
  seeded random point around an update batch leaves a store whose
  manifest always parses, and post-recovery rankings equal an
  in-process oracle that applied exactly the *acknowledged* batches.
"""

import json
import random
import threading
import time

import pytest

from repro.cluster import ShardedCluster
from repro.errors import ClusterError, ServerError
from repro.graph.graph import Graph
from repro.replication import FaultInjector, corrupt_file, \
    read_store_manifest, verify_artifact
from repro.server import ServerClient
from repro.service.service import DiversityService

SEED = 20210416  # one schedule, replayed exactly, every run


def _two_cliques() -> Graph:
    g = Graph()
    a = [f"a{i}" for i in range(5)]
    b = [f"b{i}" for i in range(4)]
    for clique in (a, b):
        for i in range(len(clique)):
            for j in range(i + 1, len(clique)):
                g.add_edge(clique[i], clique[j])
    return g


def _wheel(n: int = 12) -> Graph:
    g = Graph()
    for i in range(n):
        g.add_edge("hub", f"rim{i}")
        g.add_edge(f"rim{i}", f"rim{(i + 1) % n}")
    return g


GRAPHS = {"alpha": _two_cliques, "beta": _wheel}
PINS = {"alpha": 0, "beta": 1}

#: One journaled update batch per graph, applied before the chaos so
#: recovery must restore *as last served*, not merely *as registered*.
BATCHES = {
    "alpha": [("insert", "a0", "b0"), ("insert", "a1", "b1")],
    "beta": [("insert", "rim0", "rim6")],
}


def _answer(client: ServerClient, name: str):
    payload = client.top_r(name, k=3, r=5)
    return payload["vertices"], payload["scores"]


def _oracle(name: str, batches) -> DiversityService:
    """The in-process ground truth: base graph + exactly ``batches``."""
    service = DiversityService.cold(GRAPHS[name]())
    for batch in batches:
        service.apply_updates(batch)
    return service


def _oracle_answer(service: DiversityService):
    result = service.top_r(3, 5)
    return result.vertices, result.scores


def _wait_healthy(url: str, respawns_at_least: int = 0,
                  deadline: float = 30.0):
    """Poll the frontend until every worker answers again."""
    probe = ServerClient(url, timeout=5.0)
    try:
        cutoff = time.monotonic() + deadline
        while time.monotonic() < cutoff:
            try:
                health = probe.healthz()
            except ServerError:
                time.sleep(0.05)
                continue
            if health["status"] == "ok" \
                    and sum(health["respawns"]) >= respawns_at_least:
                return health
            time.sleep(0.05)
        raise AssertionError(f"fleet did not recover within {deadline}s")
    finally:
        probe.close()


class _Reader(threading.Thread):
    """Hammers one graph's top-r; records any escaped failure or any
    answer that differs from the expected rankings."""

    def __init__(self, url: str, name: str, expected, retries: int):
        super().__init__(daemon=True)
        self.client = ServerClient(url, timeout=10.0, retries=retries,
                                   retry_backoff=0.02)
        self.name = name
        self.expected = expected
        self.failures = []
        self.served = 0
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            try:
                got = _answer(self.client, self.name)
            except ServerError as exc:
                self.failures.append(
                    f"{self.name}: status {exc.status}: {exc}")
                if len(self.failures) > 5:
                    return  # stop flooding; the test already failed
                continue
            self.served += 1
            if got != self.expected:
                self.failures.append(
                    f"{self.name}: wrong answer {got!r} "
                    f"!= {self.expected!r}")
                return

    def stop(self):
        self._halt.set()
        self.join(timeout=30)
        self.client.close()


class TestRollingRestartAndMove:
    """The headline chaos schedule: every worker killed once under
    retrying traffic, then a live shard move under non-retrying
    traffic — zero escaped failures, rankings byte-identical to the
    in-process oracle throughout."""

    def test_rolling_restart_then_zero_503_move(self):
        fleet = ShardedCluster(workers=2, pins=PINS, store_codec="bin",
                               supervise=True, restart_interval=0.1,
                               followers=1, replication_interval=0.1)
        fleet.start(port=0)
        readers = []
        try:
            client = ServerClient(fleet.url, timeout=10.0, retries=40,
                                  retry_backoff=0.02)
            for name, factory in GRAPHS.items():
                fleet.add_graph(name, graph=factory())
                client.apply_updates(name, BATCHES[name])
            expected = {name: _answer(client, name) for name in GRAPHS}
            for name in GRAPHS:
                oracle = _oracle(name, [BATCHES[name]])
                assert expected[name] == _oracle_answer(oracle), name

            # Live retrying traffic on every graph for the whole ride.
            readers = [_Reader(fleet.url, name, expected[name],
                               retries=60) for name in GRAPHS]
            for reader in readers:
                reader.start()

            fi = FaultInjector(fleet, SEED)
            killed = 0
            for slot in fi.rolling_restart_order():
                fi.kill_worker(slot)
                killed += 1
                _wait_healthy(fleet.url, respawns_at_least=killed)
            assert killed == 2, fi.log

            # The zero-503 move: non-retrying traffic may not see a
            # single failure while "alpha" changes hands.
            source = fleet.owner("alpha")
            target = 1 - source
            mover = _Reader(fleet.url, "alpha", expected["alpha"],
                            retries=0)
            mover.start()
            time.sleep(0.1)  # let the non-retrying reader get going
            outcome = fleet.move_graph("alpha", target,
                                       drain_seconds=0.3)
            time.sleep(0.2)  # traffic after the flip + deregistration
            mover.stop()
            assert outcome["moved"] and outcome["target"] == target
            assert fleet.owner("alpha") == target
            assert mover.failures == [], "\n".join(
                mover.failures + fi.log)
            assert mover.served > 0

            for reader in readers:
                reader.stop()
            escaped = [f for reader in readers for f in reader.failures]
            assert escaped == [], "\n".join(escaped + fi.log)
            assert all(reader.served > 0 for reader in readers)

            # Writes work against the new owner, and the fleet's final
            # rankings match the oracle byte-for-byte.
            extra = [("insert", "a2", "b2")]
            client.apply_updates("alpha", extra)
            finals = {"alpha": _oracle("alpha", [BATCHES["alpha"], extra]),
                      "beta": _oracle("beta", [BATCHES["beta"]])}
            for name, oracle in finals.items():
                assert json.dumps(_answer(client, name)) == \
                    json.dumps(_oracle_answer(oracle)), name
            # Both acked batches were journaled; replication passes may
            # already have checkpointed a durable prefix away, so the
            # retained suffix is only bounded above.
            assert fleet.journal_total("alpha") == 2
            assert fleet.journal_length("alpha") <= 2

            # Satellite: supervision surfaced through /healthz + /stats.
            health = client.healthz()
            assert sum(health["respawns"]) >= 2
            assert health["status"] == "ok"
            stats = client.stats()
            supervision = stats["supervision"]
            assert supervision["followers"] == 1
            assert supervision["respawns_total"] >= 2
            journal = stats["journal"]["graphs"]["alpha"]
            assert journal["total"] == 2
            assert journal["entries"] + journal["checkpointed"] == 2
            client.close()
        finally:
            for reader in readers:
                if reader.is_alive():  # pragma: no cover - on failure
                    reader.stop()
            fleet.stop()


class TestReplicaFailover:
    """A destroyed primary store root recovers from the follower copy
    alone — and a corrupt follower is refused, never trusted."""

    def _fleet(self, journal_window=128):
        return ShardedCluster(workers=1, pins={"alpha": 0},
                              store_codec="bin", supervise=False,
                              followers=1, replication_interval=900.0,
                              journal_window=journal_window)

    def test_warm_failover_from_replica(self):
        fleet = self._fleet()
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0)
            fleet.add_graph("alpha", graph=_two_cliques())
            client.apply_updates("alpha", BATCHES["alpha"])
            client.apply_updates("alpha", [("insert", "a3", "b3")])
            reports = fleet.replicate_followers()
            assert fleet.last_replication_error is None
            assert reports[0]["files_full"] + reports[0]["files_delta"] > 0

            fi = FaultInjector(fleet, SEED)
            slot = fi.destroy_store(0)
            assert slot == 0
            # The dead worker's disk is gone; recovery has only the
            # replica to work with.
            with pytest.raises(Exception):
                read_store_manifest(fleet.store_root / "worker0")
            assert fleet.restart_dead_workers() == [0]
            assert "restored" in (fleet.last_restore_note or "")

            stats = client.graph_stats("alpha")
            assert stats["warm_started"] is True
            oracle = _oracle("alpha", [BATCHES["alpha"],
                                       [("insert", "a3", "b3")]])
            assert _answer(client, "alpha") == _oracle_answer(oracle)
            assert sum(client.healthz()["respawns"]) == 1
            client.close()
        finally:
            fleet.stop()

    def test_corrupt_replica_refused_then_repaired(self):
        # Checkpointing off: the repair-in-place half of this test
        # needs the respawn to replay the *original* registration +
        # full journal, whose canonical rebuild converges to the same
        # version chain (and relpaths) the corrupt replica holds.
        fleet = self._fleet(journal_window=0)
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0)
            fleet.add_graph("alpha", graph=_two_cliques())
            client.apply_updates("alpha", BATCHES["alpha"])
            fleet.replicate_followers()

            fi = FaultInjector(fleet, SEED)
            note = fi.corrupt_replica(0, mode="flip")
            assert note is not None
            # One flipped byte can be *healable* (delta assembly
            # re-derives base-resident regions and verifies the
            # result), so rot every artifact: now no restore path can
            # produce verified bytes and the replica must be refused.
            replica = fleet.replica_root(0, 0)
            for i, path in enumerate(sorted(
                    replica.glob("objects/**/*.bin"))):
                corrupt_file(path, seed=SEED + i, mode="flip")
            fi.destroy_store(0)
            assert fleet.restart_dead_workers() == [0]
            # The poisoned replica was refused: cold rebuild, not a
            # corrupt warm start.  Slow, but never wrong.
            assert client.graph_stats("alpha")["warm_started"] is False
            oracle = _oracle("alpha", [BATCHES["alpha"]])
            assert _answer(client, "alpha") == _oracle_answer(oracle)

            # The canonical rebuild converges byte-identically, so the
            # next sync pass repairs the replica in place.
            report = fleet.replicate_followers()[0]
            assert report["files_repaired"] >= 1
            assert all(verify_artifact(path)
                       for path in replica.glob("objects/**/*.bin"))
        finally:
            fleet.stop()


class TestKillDuringUpdate:
    """Property-random (seeded): SIGKILL the worker at a random point
    around an update batch, every leg.  No half-applied version may
    ever publish: the manifest always parses, and recovered rankings
    equal an oracle that applied exactly the *acked* batches."""

    LEGS = 5

    def test_acked_batches_define_the_recovered_state(self):
        rng = random.Random(SEED)
        fleet = ShardedCluster(workers=1, pins={"alpha": 0},
                               store_codec="bin", supervise=False)
        fleet.start(port=0)
        try:
            client = ServerClient(fleet.url, timeout=10.0)
            fleet.add_graph("alpha", graph=_two_cliques())
            oracle = DiversityService.cold(_two_cliques())
            acked = 0
            for leg in range(self.LEGS):
                batch = [("insert", f"x{leg}", "a0"),
                         ("insert", f"x{leg}", "a1")]
                delay = rng.uniform(0.0, 0.02)

                def _kill(pause=delay):
                    time.sleep(pause)
                    try:
                        fleet.kill_worker(0)
                    except ClusterError:
                        pass  # already dead this leg

                killer = threading.Thread(target=_kill, daemon=True)
                killer.start()
                try:
                    client.apply_updates("alpha", batch)
                except ServerError:
                    pass  # unacked: the oracle must NOT apply it
                else:
                    oracle.apply_updates(batch)
                    acked += 1
                killer.join(timeout=30)
                # Whatever instant the kill landed at, the store's
                # manifest is a complete, parseable publish.
                read_store_manifest(fleet.store_root / "worker0")
                cutoff = time.monotonic() + 30
                while fleet.client_for(0) is None:
                    fleet.restart_dead_workers()
                    if time.monotonic() > cutoff:  # pragma: no cover
                        raise AssertionError("worker never respawned")
                    time.sleep(0.02)
                assert _answer(client, "alpha") == \
                    _oracle_answer(oracle), \
                    f"leg {leg}: diverged from the acked-batch oracle"
            # The journal holds exactly the acked stream — that is what
            # every future respawn will replay.
            assert fleet.journal_length("alpha") == acked
            assert acked >= 1  # the schedule must exercise the ack path
            client.close()
        finally:
            fleet.stop()
