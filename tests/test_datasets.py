"""Tests for datasets: paper graphs, generators, registry, DBLP analogue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.datasets.paper import (
    figure1_graph,
    figure1_ego_vertices,
    figure2_h1_graph,
    figure18_graph,
)
from repro.datasets.synthetic import (
    barabasi_albert,
    powerlaw_cluster,
    erdos_renyi,
    gnm_random,
    watts_strogatz,
    stochastic_block_model,
    planted_context_graph,
    add_planted_cliques,
    power_law_graph,
)
from repro.datasets.registry import (
    dataset_names,
    dataset_spec,
    load_dataset,
    paper_table1,
)
from repro.datasets.dblp import (
    dblp_like_network,
    TRUSS_HUB,
    COMP_HUB,
    CORE_HUB,
)
from repro.graph.traversal import is_connected


class TestPaperGraphs:
    def test_figure1_size(self):
        g = figure1_graph()
        assert g.num_vertices == 17  # Example 2 counts 17 vertices

    def test_figure1_ego_list(self):
        g = figure1_graph()
        assert set(figure1_ego_vertices()) == set(g.neighbors("v"))
        assert len(figure1_ego_vertices()) == 14

    def test_h1_shape(self):
        h1 = figure2_h1_graph()
        assert h1.num_vertices == 8
        assert h1.num_edges == 14

    def test_figure18_shape(self):
        g = figure18_graph()
        assert g.num_vertices == 9
        assert g.num_edges == 3 + 3 * 5  # triangle + three K4 completions

    def test_figure18_trussness(self):
        from repro.truss.decomposition import truss_decomposition
        tau = truss_decomposition(figure18_graph())
        assert set(tau.values()) == {4}


class TestGenerators:
    def test_ba_deterministic(self):
        assert barabasi_albert(50, 3, seed=1) == barabasi_albert(50, 3, seed=1)

    def test_ba_edge_count(self):
        g = barabasi_albert(100, 3, seed=2)
        # m(m+1)/2 seed-clique edges + 3 per additional vertex.
        assert g.num_edges == 6 + 3 * (100 - 4)
        assert g.num_vertices == 100

    def test_ba_validation(self):
        with pytest.raises(InvalidParameterError):
            barabasi_albert(5, 5)
        with pytest.raises(InvalidParameterError):
            barabasi_albert(0, 1)

    def test_powerlaw_cluster_triangle_rich(self):
        from repro.graph.triangles import triangle_count
        plain = barabasi_albert(150, 3, seed=3)
        clustered = powerlaw_cluster(150, 3, 0.8, seed=3)
        assert triangle_count(clustered) > triangle_count(plain)

    def test_powerlaw_cluster_validation(self):
        with pytest.raises(InvalidParameterError):
            powerlaw_cluster(10, 2, 1.5)

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=1).num_edges == 45

    def test_erdos_renyi_expected_density(self):
        g = erdos_renyi(200, 0.05, seed=4)
        expected = 0.05 * 199 * 100  # p * C(200, 2)
        assert 0.6 * expected <= g.num_edges <= 1.4 * expected

    def test_gnm_exact_edges(self):
        g = gnm_random(30, 50, seed=5)
        assert g.num_edges == 50
        with pytest.raises(InvalidParameterError):
            gnm_random(4, 100)

    def test_watts_strogatz(self):
        g = watts_strogatz(40, 4, 0.1, seed=6)
        assert g.num_vertices == 40
        assert g.num_edges >= 40  # ring edges mostly preserved
        with pytest.raises(InvalidParameterError):
            watts_strogatz(10, 3, 0.1)

    def test_sbm_blocks_denser_inside(self):
        g = stochastic_block_model([20, 20], 0.5, 0.02, seed=7)
        inside = sum(1 for u, v in g.edges()
                     if (u < 20) == (v < 20))
        outside = g.num_edges - inside
        assert inside > outside

    def test_planted_context_graph_truth(self):
        from repro.core.diversity import structural_diversity
        g = planted_context_graph(num_contexts=5, context_size=4, seed=8)
        assert structural_diversity(g, "ego", 3) == 5

    def test_planted_validation(self):
        with pytest.raises(InvalidParameterError):
            planted_context_graph(num_contexts=0)

    def test_add_planted_cliques(self):
        base = erdos_renyi(30, 0.05, seed=9)
        overlay = add_planted_cliques(base, [8], seed=10)
        from repro.truss.decomposition import max_trussness
        assert max_trussness(overlay) >= 8
        assert base.num_edges < overlay.num_edges  # input untouched

    def test_add_planted_cliques_validation(self):
        with pytest.raises(InvalidParameterError):
            add_planted_cliques(erdos_renyi(5, 0.1, seed=1), [10])

    def test_power_law_graph_density(self):
        g = power_law_graph(400, edges_per_vertex=5, seed=11)
        assert 4.0 <= g.num_edges / g.num_vertices <= 5.5

    @given(st.integers(20, 60), st.integers(2, 4), st.integers(0, 99))
    @settings(max_examples=10)
    def test_powerlaw_cluster_connected(self, n, m, seed):
        assert is_connected(powerlaw_cluster(n, m, 0.4, seed=seed))


class TestRegistry:
    def test_names(self):
        names = dataset_names()
        assert len(names) == 8
        assert "orkut" in names and "wiki-vote" in names

    def test_unknown_dataset(self):
        with pytest.raises(InvalidParameterError):
            dataset_spec("nope")

    def test_load_cached(self):
        a = load_dataset("wiki-vote")
        b = load_dataset("wiki-vote")
        assert a is b

    def test_paper_stats_recorded(self):
        table = paper_table1()
        assert table["orkut"][0] == 3_100_000
        assert len(table) == 8

    def test_all_datasets_generate(self):
        for name in dataset_names():
            g = load_dataset(name)
            assert g.num_vertices > 100
            assert g.num_edges > g.num_vertices


class TestDBLP:
    @pytest.fixture(scope="class")
    def dblp(self):
        return dblp_like_network(seed=7)

    def test_deterministic(self):
        assert (dblp_like_network(seed=7).num_edges
                == dblp_like_network(seed=7).num_edges)

    def test_truss_hub_wins_truss_div(self, dblp):
        from repro.core.gct import GCTIndex
        index = GCTIndex.build(dblp)
        result = index.top_r(5, 1)
        assert result.vertices == [TRUSS_HUB]
        assert result.scores == [6]  # six research groups (Exp-10)

    def test_comp_hub_wins_comp_div(self, dblp):
        from repro.models import CompDivModel
        result = CompDivModel().top_r(dblp, 5, 1)
        assert result.vertices == [COMP_HUB]
        assert result.scores == [8]  # Table 5: |SC| = 8 for Comp-Div

    def test_core_hub_wins_core_div(self, dblp):
        from repro.models import CoreDivModel
        result = CoreDivModel().top_r(dblp, 5, 1)
        assert result.vertices == [CORE_HUB]
        assert result.scores == [3]  # Table 5: |SC| = 3 for Core-Div

    def test_truss_hub_has_densest_ego(self, dblp):
        """Table 5: the Truss-Div ego-network has the highest density."""
        from repro.graph.egonet import ego_network
        densities = {}
        for hub in (TRUSS_HUB, COMP_HUB, CORE_HUB):
            ego = ego_network(dblp, hub)
            densities[hub] = ego.num_edges / ego.num_vertices
        assert densities[TRUSS_HUB] == max(densities.values())
