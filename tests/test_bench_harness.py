"""Tests for the experiment harness (reporting + runners)."""

import pytest

from repro.bench.reporting import format_table, format_series, speedup
from repro.bench.runner import (
    METHOD_NAMES,
    measure,
    run_method,
    tsd_index,
    gct_index,
)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 1], ["b", 123_456]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "123,456" in text

    def test_format_table_none_renders_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text

    def test_float_rendering(self):
        text = format_table(["x"], [[0.00012], [12.5], [12345.6]])
        assert "0.00012" in text
        assert "12.500" in text
        assert "12,346" in text

    def test_format_series(self):
        text = format_series("fig", "k", {"TSD": [1, 2], "GCT": [3, 4]},
                             x_values=[2, 3])
        assert "fig" in text
        assert "TSD" in text and "GCT" in text

    def test_series_ragged_columns(self):
        text = format_series("fig", "k", {"a": [1]}, x_values=[2, 3])
        assert "-" in text  # missing point rendered as dash

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) is None


class TestRunner:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            run_method("nope", "wiki-vote", 3, 1)

    def test_all_methods_agree_on_wiki_vote(self):
        results = {m: run_method(m, "wiki-vote", 3, 5, collect_contexts=False)
                   for m in METHOD_NAMES}
        score_sets = {tuple(sorted(r.scores, reverse=True))
                      for r in results.values()}
        assert len(score_sets) == 1

    def test_measure_records_fields(self):
        m = measure("TSD", "wiki-vote", 3, 5)
        assert m.method == "TSD"
        assert m.seconds >= 0.0
        assert m.search_space > 0
        assert len(m.top_scores) <= 5

    def test_indexes_cached(self):
        assert tsd_index("wiki-vote") is tsd_index("wiki-vote")
        assert gct_index("wiki-vote") is gct_index("wiki-vote")
