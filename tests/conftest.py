"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph
from repro.datasets.paper import figure1_graph, figure2_h1_graph, figure18_graph
from repro.datasets.synthetic import planted_context_graph, powerlaw_cluster

# Property tests run graph algorithms per example; relax the deadline
# and trim the example count so the suite stays fast but meaningful.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Fixtures: canonical small graphs
# ----------------------------------------------------------------------
@pytest.fixture
def triangle() -> Graph:
    return Graph(edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def k4() -> Graph:
    return complete_graph(4)


@pytest.fixture
def path4() -> Graph:
    return Graph(edges=[(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def figure1() -> Graph:
    return figure1_graph()


@pytest.fixture
def h1() -> Graph:
    return figure2_h1_graph()


@pytest.fixture
def figure18() -> Graph:
    return figure18_graph()


@pytest.fixture
def planted() -> Graph:
    """3 cliques of 5 around "ego": score 3 for 3 <= k <= 5."""
    return planted_context_graph(num_contexts=3, context_size=5,
                                 num_bridges=1, extra_neighbors=2, seed=3)


@pytest.fixture
def medium_graph() -> Graph:
    """A triangle-rich power-law graph big enough to exercise pruning."""
    return powerlaw_cluster(120, 4, 0.5, seed=11)


# ----------------------------------------------------------------------
# Graph construction helpers
# ----------------------------------------------------------------------
def complete_graph(n: int) -> Graph:
    g = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def cycle_graph(n: int) -> Graph:
    return Graph(edges=[(i, (i + 1) % n) for i in range(n)])


def random_graph(n: int, p: float, seed: int) -> Graph:
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def graph_strategy(draw, min_vertices: int = 1, max_vertices: int = 12,
                   max_extra_density: float = 1.0):
    """Random simple graphs that shrink towards small sparse ones."""
    n = draw(st.integers(min_vertices, max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if not possible:
        return Graph(vertices=range(n))
    edges = draw(st.lists(st.sampled_from(possible),
                          max_size=int(len(possible) * max_extra_density)))
    return Graph(edges=edges, vertices=range(n))


@st.composite
def dense_graph_strategy(draw, min_vertices: int = 4, max_vertices: int = 10):
    """Graphs biased towards triangles (interesting trussness)."""
    n = draw(st.integers(min_vertices, max_vertices))
    seed = draw(st.integers(0, 10_000))
    p = draw(st.sampled_from([0.3, 0.5, 0.7]))
    return random_graph(n, p, seed)
