"""Build-equivalence properties of the :mod:`repro.build` pipeline.

The contract under test: every build strategy — legacy per-vertex,
serial shared-pass, and true multi-process — produces indexes whose
payloads are byte-identical (modulo the wall-clock build profile), and
the ``compress``-equals-``build`` invariant survives parallelism.
"""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.build import (
    MODE_PARALLEL,
    MODE_PER_VERTEX,
    MODE_SERIAL,
    BuildPlan,
    ParallelIndexBuilder,
    build_indexes,
    repair_forests,
)
from repro.service.snapshot import Snapshot
from repro.service.updates import apply_batch, insert, delete
from repro.engine import EngineConfig, QueryEngine
from repro.datasets.paper import figure1_graph
from repro.datasets.synthetic import (
    erdos_renyi,
    power_law_graph,
    powerlaw_cluster,
)


def payload_bytes(index) -> bytes:
    """Byte form of an index payload, build profile stripped (the one
    wall-clock-dependent field)."""
    return json.dumps(index.to_payload(include_profile=False),
                      sort_keys=False).encode()


def forced(jobs: int) -> BuildPlan:
    """A plan that really spawns ``jobs`` workers, bypassing the
    small-graph and CPU-budget downgrades — the point of these tests is
    to exercise the pool even on tiny graphs and 1-CPU CI runners."""
    return BuildPlan(MODE_PARALLEL, jobs, "forced by test")


def random_graphs():
    yield figure1_graph()
    yield Graph()                                    # empty
    yield Graph(vertices=[0, 1, 2])                  # edgeless
    yield Graph(edges=[(0, 1)])                      # single edge
    yield Graph(edges=[(0, 1), (1, 2), (0, 2)])      # one triangle
    for seed in (1, 2, 3):
        yield erdos_renyi(60, 0.12, seed=seed)
        yield powerlaw_cluster(120, 3, 0.6, seed=seed)
    yield power_law_graph(400, 5, seed=9)
    # Non-integer, insertion-order-sensitive labels.
    yield Graph(edges=[("b", "a"), ("a", "c"), ("b", "c"), ("c", "d"),
                       ("d", "b"), ("a", "d"), ("x", "y")])


class TestTSDBuildEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_matches_serial(self, jobs):
        for graph in random_graphs():
            serial = TSDIndex.build(graph)
            parallel = TSDIndex.build(graph, jobs=jobs, plan=forced(jobs))
            assert payload_bytes(parallel) == payload_bytes(serial)

    def test_shared_serial_matches_per_vertex(self):
        for graph in random_graphs():
            assert (payload_bytes(TSDIndex.build(graph, jobs=1))
                    == payload_bytes(TSDIndex.build(graph)))

    def test_public_jobs_api_matches_serial(self):
        # Whatever plan jobs=2 resolves to on this machine, the payload
        # must not change.
        graph = powerlaw_cluster(150, 3, 0.5, seed=4)
        assert (payload_bytes(TSDIndex.build(graph, jobs=2))
                == payload_bytes(TSDIndex.build(graph)))

    def test_parallel_build_profile_present(self):
        graph = powerlaw_cluster(100, 3, 0.5, seed=1)
        index = TSDIndex.build(graph, plan=forced(2))
        profile = index.build_profile
        assert profile is not None
        assert profile.total_seconds >= 0.0


class TestGCTBuildEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_matches_serial(self, jobs):
        for graph in random_graphs():
            serial = GCTIndex.build(graph)
            parallel = GCTIndex.build(graph, jobs=jobs, plan=forced(jobs))
            assert payload_bytes(parallel) == payload_bytes(serial)

    def test_shared_serial_matches_legacy(self):
        for graph in random_graphs():
            assert (payload_bytes(GCTIndex.build(graph, jobs=1))
                    == payload_bytes(GCTIndex.build(graph)))

    def test_compress_of_parallel_tsd_matches_build(self):
        # The PR 1 invariant must survive parallelism: compressing a
        # parallel-built TSD still equals a from-scratch GCT build.
        for graph in random_graphs():
            parallel_tsd = TSDIndex.build(graph, plan=forced(2))
            assert (payload_bytes(GCTIndex.compress(parallel_tsd))
                    == payload_bytes(GCTIndex.build(graph)))


class TestBuildBoth:
    def test_shares_one_decomposition(self):
        for graph in random_graphs():
            tsd, gct = build_indexes(graph, plan=forced(2))
            assert payload_bytes(tsd) == payload_bytes(TSDIndex.build(graph))
            serial_tsd = TSDIndex.build(graph)
            assert (payload_bytes(gct)
                    == payload_bytes(GCTIndex.compress(serial_tsd)))

    def test_per_vertex_plan_falls_back(self):
        graph = figure1_graph()
        tsd, gct = build_indexes(graph, jobs=None)
        assert payload_bytes(tsd) == payload_bytes(TSDIndex.build(graph))
        assert gct.build_profile is None  # compress never has one

    def test_builder_caches_extraction(self):
        builder = ParallelIndexBuilder(powerlaw_cluster(80, 3, 0.5, seed=2),
                                       jobs=1)
        tsd = builder.build_tsd()
        gct = builder.build_gct()
        # Same extraction seconds reported by both profiles — one pass.
        assert (tsd.build_profile.extraction_seconds
                == gct.build_profile.extraction_seconds)


class TestBuildPlan:
    def test_jobs_none_is_per_vertex(self):
        assert BuildPlan.decide(10**6, jobs=None).mode == MODE_PER_VERTEX

    def test_jobs_one_is_serial(self):
        assert BuildPlan.decide(10**6, jobs=1).mode == MODE_SERIAL

    def test_small_graph_never_spawns(self):
        plan = BuildPlan.decide(500, jobs=8, cpu_budget=8)
        assert plan.mode == MODE_SERIAL
        assert plan.jobs == 1

    def test_clamped_to_cpu_budget(self):
        plan = BuildPlan.decide(10**6, jobs=16, cpu_budget=4)
        assert plan.mode == MODE_PARALLEL
        assert plan.jobs == 4

    def test_one_cpu_downgrades_to_serial(self):
        assert BuildPlan.decide(10**6, jobs=4, cpu_budget=1).mode == MODE_SERIAL

    def test_auto_uses_budget(self):
        plan = BuildPlan.decide(10**6, jobs=0, cpu_budget=3)
        assert plan.mode == MODE_PARALLEL
        assert plan.jobs == 3

    def test_negative_jobs_rejected(self):
        with pytest.raises(InvalidParameterError):
            BuildPlan.decide(100, jobs=-1)

    def test_invalid_plans_rejected(self):
        with pytest.raises(InvalidParameterError):
            BuildPlan("bogus", 1, "?")
        with pytest.raises(InvalidParameterError):
            BuildPlan(MODE_SERIAL, 2, "serial cannot have 2 jobs")
        with pytest.raises(InvalidParameterError):
            BuildPlan(MODE_PARALLEL, 0, "no workers")

    def test_builder_rejects_per_vertex_plan(self):
        with pytest.raises(InvalidParameterError):
            ParallelIndexBuilder(figure1_graph(),
                                 plan=BuildPlan.decide(10, jobs=None))


class TestRepairForests:
    def test_matches_serial_repair(self):
        graph = powerlaw_cluster(120, 3, 0.6, seed=5)
        targets = list(graph.vertices())[:30]
        serial = repair_forests(graph, targets)            # jobs=None
        pooled = repair_forests(graph, targets, plan=forced(2))
        assert pooled == serial

    def test_skips_vertices_not_in_graph(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        forests = repair_forests(graph, [0, 99])
        assert set(forests) == {0}


class TestUpdatePathEquivalence:
    def test_apply_batch_parallel_matches_serial(self):
        graph = powerlaw_cluster(100, 3, 0.6, seed=6)
        base = Snapshot.build(graph)
        vertices = list(graph.vertices())
        updates = [insert("n1", vertices[0]), insert("n1", vertices[1]),
                   insert(vertices[0], "n2"),
                   delete(*next(iter(graph.edges())))]
        serial_next, serial_report = apply_batch(base, updates)
        pooled_next, pooled_report = apply_batch(base, updates, jobs=2)
        assert (payload_bytes(pooled_next.tsd)
                == payload_bytes(serial_next.tsd))
        assert (payload_bytes(pooled_next.gct)
                == payload_bytes(serial_next.gct))
        assert (pooled_report.affected_vertices
                == serial_report.affected_vertices)
        assert pooled_report.rebuilt_forests == serial_report.rebuilt_forests


class TestEngineAndServiceJobs:
    def test_engine_build_jobs_rank_identical(self):
        graph = powerlaw_cluster(90, 3, 0.5, seed=7)
        default = QueryEngine(graph)
        legacy = QueryEngine(graph, EngineConfig(build_jobs=None))
        queries = [(3, 5), (4, 5), (5, 3)]
        for a, b in zip(default.top_r_many(queries),
                        legacy.top_r_many(queries)):
            assert a.vertices == b.vertices
            assert a.scores == b.scores
        assert (payload_bytes(default.tsd_index)
                == payload_bytes(legacy.tsd_index))

    def test_snapshot_build_jobs_identical(self):
        graph = powerlaw_cluster(90, 3, 0.5, seed=8)
        auto = Snapshot.build(graph)            # jobs=0 auto (default)
        legacy = Snapshot.build(graph, jobs=None)
        assert payload_bytes(auto.tsd) == payload_bytes(legacy.tsd)
        assert payload_bytes(auto.gct) == payload_bytes(legacy.gct)
