"""Tests for the replication subsystem: store sync, update feeds,
lock liveness, and client retries.

The acceptance contract:

* **Follower sync is byte-faithful and cheap.**  A replicated root
  serves the same artifacts (checksum-verified); delta re-versions
  ship as byte ranges, unchanged files ship as nothing, and corrupt
  replica bytes are *repaired* while corrupt source bytes are
  *refused*.
* **The update feed is a replayable journal.**  Entries come back in
  apply order with the exact wire updates; replaying them onto the
  registered base graph reproduces the served rankings.
* **The store's writer lock never wedges.**  A writer killed holding
  the lock — flock or the pid-file fallback — does not block the next
  writer.
* **Client retries are idempotent-only, bounded, and deterministic.**
"""

import json
import os
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

import repro.service.lock as lock_module
from repro.core.online import online_search
from repro.errors import ServerError, StoreError
from repro.graph.graph import Graph
from repro.replication import (
    HungSocket,
    UpdateFeed,
    corrupt_file,
    read_store_manifest,
    replicate_store,
    verify_artifact,
)
from repro.replication.feed import entry_from_payload
from repro.server import DiversityRouter, ServerClient
from repro.server.client import _retry_jitter
from repro.server.http import serve
from repro.service.lock import StoreLock, pid_alive, read_owner
from repro.service.service import DiversityService
from repro.service.store import IndexStore

SRC = str(Path(__file__).resolve().parents[1] / "src")


def _clique_with_tail(n: int = 5) -> Graph:
    g = Graph()
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(f"c{i}", f"c{j}")
    g.add_edge("c0", "tail0")
    g.add_edge("tail0", "tail1")
    return g


def _ranked(graph: Graph, k: int = 3, r: int = 5):
    result = online_search(graph, k, r)
    return [(e.vertex, e.score) for e in result.entries]


# ----------------------------------------------------------------------
# StoreLock: liveness across dead writers
# ----------------------------------------------------------------------
class TestStoreLock:
    HOLD_SCRIPT = """
import sys, time
{patch}
from repro.service.lock import StoreLock
lock = StoreLock({path!r})
lock.acquire()
print("LOCKED", flush=True)
time.sleep(60)
"""

    def _hold_in_subprocess(self, path, pidfile: bool):
        patch = ("import repro.service.lock as L; L.fcntl = None"
                 if pidfile else "")
        script = self.HOLD_SCRIPT.format(patch=patch, path=str(path))
        env = dict(os.environ, PYTHONPATH=SRC)
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, text=True, env=env)
        assert process.stdout.readline().strip() == "LOCKED"
        return process

    def test_flock_released_when_writer_killed(self, tmp_path):
        """SIGKILL a real process holding the flock: the kernel frees
        it, so the next writer acquires promptly."""
        path = tmp_path / ".lock"
        holder = self._hold_in_subprocess(path, pidfile=False)
        try:
            assert read_owner(path) == holder.pid
            holder.kill()
            holder.wait(timeout=10)
            with StoreLock(path, timeout=10):
                assert read_owner(path) == os.getpid()
        finally:
            if holder.poll() is None:  # pragma: no cover - cleanup
                holder.kill()

    def test_pidfile_stale_lock_broken(self, tmp_path, monkeypatch):
        """Without fcntl, a lock whose recorded owner is dead is broken
        instead of blocking forever."""
        monkeypatch.setattr(lock_module, "fcntl", None)
        path = tmp_path / ".lock"
        holder = self._hold_in_subprocess(path, pidfile=True)
        try:
            assert read_owner(path) == holder.pid
            assert pid_alive(holder.pid)
            holder.kill()
            holder.wait(timeout=10)
            assert not pid_alive(holder.pid)
            with StoreLock(path, timeout=10):
                pass  # broke the stale lock instead of timing out
        finally:
            if holder.poll() is None:  # pragma: no cover - cleanup
                holder.kill()

    def test_pidfile_live_holder_times_out(self, tmp_path, monkeypatch):
        monkeypatch.setattr(lock_module, "fcntl", None)
        path = tmp_path / ".lock"
        with StoreLock(path):
            waiter = StoreLock(path, timeout=0.2)
            with pytest.raises(StoreError) as excinfo:
                waiter.acquire()
            assert "alive" in str(excinfo.value)

    def test_store_put_survives_killed_writer(self, tmp_path):
        """The satellite's end-to-end shape: a writer process dies
        holding the store's lock mid-put; the next put succeeds."""
        root = tmp_path / "store"
        graph = _clique_with_tail()
        DiversityService.cold(graph, store=IndexStore(root))
        holder = self._hold_in_subprocess(root / ".lock", pidfile=False)
        try:
            holder.kill()
            holder.wait(timeout=10)
            service = DiversityService.start(graph, store=IndexStore(root))
            report = service.apply_updates([("insert", "tail1", "tail2")])
            assert report.num_updates == 1
        finally:
            if holder.poll() is None:  # pragma: no cover - cleanup
                holder.kill()

    def test_owner_parsing_and_liveness(self, tmp_path):
        path = tmp_path / ".lock"
        assert read_owner(path) is None
        path.write_text("garbage")
        assert read_owner(path) is None
        path.write_text("-4\n")
        assert read_owner(path) is None
        assert not pid_alive(0)
        assert not pid_alive(-1)
        lock = StoreLock(path)
        lock.acquire()
        with pytest.raises(StoreError):
            lock.acquire()  # double-acquire by one instance
        lock.release()
        lock.release()  # idempotent


# ----------------------------------------------------------------------
# Store replication
# ----------------------------------------------------------------------
@pytest.fixture()
def replicated(tmp_path):
    """A binary-codec source store with a live-update delta chain, one
    sync'd follower, and the serving service."""
    source = tmp_path / "primary"
    follower = tmp_path / "replica"
    graph = _clique_with_tail()
    service = DiversityService.cold(graph, store=IndexStore(source,
                                                            codec="bin"))
    service.apply_updates([("insert", "tail1", "tail2")])
    service.apply_updates([("insert", "tail2", "c1")])
    report = replicate_store(source, follower)
    return source, follower, service, report


class TestReplicateStore:
    def _artifact_files(self, root: Path):
        return sorted(p.relative_to(root)
                      for p in root.glob("objects/**/*") if p.is_file())

    def test_first_pass_ships_everything_byte_identical(self, replicated):
        source, follower, _, report = replicated
        assert report.files_full + report.files_delta > 0
        assert report.files_repaired == 0
        files = self._artifact_files(source)
        assert self._artifact_files(follower) == files
        for relpath in files:
            assert (follower / relpath).read_bytes() == \
                (source / relpath).read_bytes(), relpath
        assert read_store_manifest(follower)["graphs"] == \
            read_store_manifest(source)["graphs"]

    def test_delta_reversion_ships_as_byte_ranges(self, replicated):
        source, follower, service, _ = replicated
        service.apply_updates([("insert", "tail2", "c2")])
        report = replicate_store(source, follower)
        # The patched binary artifacts arrive as header + dict + heap
        # tail, reusing follower-local bytes — not as full copies.
        assert report.files_delta >= 1
        assert report.bytes_reused > 0
        for relpath in self._artifact_files(source):
            assert (follower / relpath).read_bytes() == \
                (source / relpath).read_bytes(), relpath

    def test_idempotent_pass_ships_nothing(self, replicated):
        source, follower, _, _ = replicated
        report = replicate_store(source, follower)
        assert report.files_synced == 0
        assert report.files_skipped > 0
        assert report.bytes_shipped == 0

    def test_follower_warm_starts_the_lineage(self, replicated):
        _, follower, _, _ = replicated
        base = _clique_with_tail()
        warm = DiversityService.warm(base, IndexStore(follower,
                                                      codec="bin"))
        assert warm.warm_started
        result = warm.top_r(3, 5)
        assert [(e.vertex, e.score) for e in result.entries] == \
            _ranked(base)

    @pytest.mark.parametrize("mode", ["flip", "truncate"])
    def test_corrupt_replica_detected_and_repaired(self, replicated,
                                                   mode):
        source, follower, _, _ = replicated
        victim = sorted(follower.glob("objects/**/*.bin"))[0]
        corrupt_file(victim, seed=7, mode=mode)
        assert not verify_artifact(victim)
        report = replicate_store(source, follower)
        assert report.files_repaired >= 1
        assert verify_artifact(victim)

    def test_corrupt_source_refused(self, replicated, tmp_path):
        source, _, _, _ = replicated
        victim = sorted(source.glob("objects/**/*.bin"))[0]
        corrupt_file(victim, seed=7, mode="flip")
        with pytest.raises(StoreError) as excinfo:
            replicate_store(source, tmp_path / "fresh")
        assert "refusing" in str(excinfo.value)

    def test_merge_keeps_the_followers_own_lineages(self, tmp_path):
        a_root, b_root, c_root = (tmp_path / name
                                  for name in ("a", "b", "c"))
        DiversityService.cold(_clique_with_tail(),
                              store=IndexStore(a_root, codec="bin"))
        other = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        DiversityService.cold(other, store=IndexStore(b_root, codec="bin"))
        replicate_store(a_root, c_root)
        replicate_store(b_root, c_root, merge=True)
        merged = set(read_store_manifest(c_root)["graphs"])
        assert merged == set(read_store_manifest(a_root)["graphs"]) \
            | set(read_store_manifest(b_root)["graphs"])
        # Without merge, the mirror is exact: A's lineage goes away.
        replicate_store(b_root, c_root)
        assert set(read_store_manifest(c_root)["graphs"]) == \
            set(read_store_manifest(b_root)["graphs"])

    def test_validation_errors(self, replicated, tmp_path):
        source, _, _, _ = replicated
        with pytest.raises(StoreError):
            read_store_manifest(tmp_path / "nowhere")
        with pytest.raises(StoreError):
            replicate_store(tmp_path / "nowhere", tmp_path / "f")
        with pytest.raises(StoreError):
            replicate_store(source, tmp_path / "f", keys=["nope"])

    def test_throttle_sees_every_file(self, replicated, tmp_path):
        source, _, _, _ = replicated
        seen = []
        replicate_store(source, tmp_path / "throttled",
                        throttle=seen.append)
        assert set(seen) == {str(p) for p in
                             self._artifact_files(source)}


# ----------------------------------------------------------------------
# UpdateFeed semantics
# ----------------------------------------------------------------------
class TestUpdateFeed:
    def test_append_since_and_order(self):
        feed = UpdateFeed()
        feed.append("g", [("insert", 1, 2)], version=1)
        feed.append("g", [("delete", 1, 2)], version=2)
        feed.append("other", [("insert", 9, 9)])
        entries, last, complete = feed.since("g", 0)
        assert [e.seq for e in entries] == [1, 2]
        assert [e.updates for e in entries] == \
            [(("insert", 1, 2),), (("delete", 1, 2),)]
        assert (last, complete) == (2, True)
        entries, last, complete = feed.since("g", 2)
        assert entries == [] and last == 2 and complete

    def test_capacity_overflow_marks_incomplete(self):
        feed = UpdateFeed(capacity=2)
        for i in range(5):
            feed.append("g", [("insert", i, i + 1)])
        entries, last, complete = feed.since("g", 0)
        assert [e.seq for e in entries] == [4, 5]
        assert last == 5
        assert not complete  # seqs 1-3 dropped: replay would gap
        _, _, complete = feed.since("g", 3)
        assert complete  # the floor: everything after 3 is present

    def test_wait_wakes_on_append(self):
        feed = UpdateFeed()
        results = []

        def poll():
            results.append(feed.wait("g", 0, timeout=10))

        thread = threading.Thread(target=poll)
        thread.start()
        time.sleep(0.05)
        feed.append("g", [("insert", 1, 2)])
        thread.join(timeout=10)
        assert not thread.is_alive()
        entries, last, complete = results[0]
        assert [e.seq for e in entries] == [1] and last == 1 and complete

    def test_wait_times_out_empty(self):
        feed = UpdateFeed()
        started = time.monotonic()
        entries, last, complete = feed.wait("g", 0, timeout=0.1)
        assert time.monotonic() - started < 5
        assert entries == [] and last == 0 and complete

    def test_payload_round_trip_with_tuple_labels(self):
        feed = UpdateFeed()
        entry = feed.append("g", [("insert", (0, 1), (2, 3))],
                            version=4, report={"num_updates": 1})
        wire = json.loads(json.dumps(entry.to_payload()))
        decoded = entry_from_payload(wire)
        assert decoded.updates == (("insert", (0, 1), (2, 3)),)
        assert decoded.seq == 1 and decoded.version == 4

    def test_payload_version_coerced_to_int(self):
        # Hand-rolled clients may send the version as a JSON string;
        # checkpoint floor comparisons must never mix str and int.
        wire = {"seq": "3", "graph": "g",
                "updates": [["insert", 1, 2]], "version": "7"}
        decoded = entry_from_payload(wire)
        assert decoded.version == 7 and isinstance(decoded.version, int)
        assert decoded.seq == 3 and isinstance(decoded.seq, int)
        absent = entry_from_payload(
            {"seq": 1, "graph": "g", "updates": []})
        assert absent.version is None

    def test_drop_forgets_the_graph(self):
        feed = UpdateFeed()
        feed.append("g", [("insert", 1, 2)])
        feed.drop("g")
        assert feed.since("g", 0) == ([], 0, True)
        with pytest.raises(ValueError):
            UpdateFeed(capacity=0)

    def test_truncate_raises_floor_and_flags_laggards(self):
        feed = UpdateFeed()
        for i in range(5):
            feed.append("g", [("insert", i, i + 1)], version=i + 1)
        assert feed.truncate("g", 3) == 3
        entries, last, complete = feed.since("g", 3)
        assert [e.seq for e in entries] == [4, 5]
        assert last == 5 and complete  # at the floor: suffix is whole
        # A consumer that slept past the truncation point must resync.
        _, _, complete = feed.since("g", 1)
        assert not complete
        # Idempotent: re-truncating at or below the floor drops nothing.
        assert feed.truncate("g", 3) == 0
        assert feed.truncate("missing", 10) == 0

    def test_truncate_wakes_parked_laggard(self):
        feed = UpdateFeed()
        for i in range(3):
            feed.append("g", [("insert", i, i + 1)])
        results = []

        def poll():
            results.append(feed.wait("g", 3, timeout=10))

        thread = threading.Thread(target=poll)
        thread.start()
        time.sleep(0.05)
        feed.truncate("g", 3)
        feed.append("g", [("insert", 9, 10)])
        thread.join(timeout=10)
        assert not thread.is_alive()
        entries, last, complete = results[0]
        assert [e.seq for e in entries] == [4] and last == 4 and complete

    def test_truncate_version_maps_to_seq_prefix(self):
        feed = UpdateFeed()
        feed.append("g", [("insert", 0, 1)], version=5)
        feed.append("g", [("insert", 1, 2)], version=6)
        feed.append("g", [("insert", 2, 3)], version=9)
        assert feed.truncate_version("g", 6) == 2
        entries, _, complete = feed.since("g", 2)
        assert [e.version for e in entries] == [9] and complete
        _, _, complete = feed.since("g", 0)
        assert not complete  # below the raised floor
        assert feed.truncate_version("g", 4) == 0
        assert feed.truncate_version("ghost", 99) == 0
        # Entries without a version are never folded by version.
        feed.append("h", [("insert", 1, 2)])
        assert feed.truncate_version("h", 99) == 0


# ----------------------------------------------------------------------
# The feed endpoint, end to end
# ----------------------------------------------------------------------
@pytest.fixture()
def served_router():
    router = DiversityRouter()
    router.add_graph("g", _clique_with_tail())
    server = serve(router, port=0)
    client = ServerClient(f"http://127.0.0.1:{server.server_port}")
    yield router, client
    client.close()
    server.shutdown()


class TestFeedEndpoint:
    def test_feed_replays_to_the_served_rankings(self, served_router):
        _, client = served_router
        batches = [[("insert", "tail1", "tail2")],
                   [("insert", "tail2", "c1"), ("delete", "c0", "tail0")]]
        for batch in batches:
            client.apply_updates("g", batch)
        answer = client.update_feed("g")
        assert answer["complete"] and answer["last_seq"] == 2
        entries = [entry_from_payload(e) for e in answer["entries"]]
        assert [e.seq for e in entries] == [1, 2]
        assert [e.version for e in entries] == [1, 2]  # snapshot versions
        # Replaying the feed onto the registered base graph reproduces
        # exactly what the server now serves — the recovery contract.
        oracle = _clique_with_tail()
        replayed = DiversityService.cold(oracle)
        for entry in entries:
            replayed.apply_updates(list(entry.updates))
        wire = client.top_r("g", k=3, r=5)
        local = replayed.top_r(3, 5)
        assert json.dumps(wire["vertices"]) == \
            json.dumps(local.vertices)
        assert json.dumps(wire["scores"]) == json.dumps(local.scores)

    def test_since_filters_and_reports(self, served_router):
        _, client = served_router
        client.apply_updates("g", [("insert", "tail1", "tail2")])
        client.apply_updates("g", [("insert", "tail2", "tail3")])
        answer = client.update_feed("g", since=1)
        assert [e["seq"] for e in answer["entries"]] == [2]
        assert answer["since"] == 1 and answer["last_seq"] == 2

    def test_long_poll_wakes_on_update(self, served_router):
        _, client = served_router
        applier = threading.Timer(
            0.2, client.apply_updates,
            args=("g", [("insert", "tail1", "tail2")]))
        applier.start()
        started = time.monotonic()
        answer = client.update_feed("g", since=0, timeout=10)
        elapsed = time.monotonic() - started
        applier.join()
        assert [e["seq"] for e in answer["entries"]] == [1]
        assert elapsed < 10  # woke on the append, not the timeout

    def test_unknown_graph_and_bad_params(self, served_router):
        _, client = served_router
        with pytest.raises(ServerError) as excinfo:
            client.update_feed("ghost")
        assert excinfo.value.status == 404
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/graphs/g/updates/feed",
                            params={"timeout": "soon"})
        assert excinfo.value.status == 400

    def test_truncate_endpoint_drives_the_resync_path(self, served_router):
        _, client = served_router
        acks = [client.apply_updates("g", [("insert", "tail1", "tail2")]),
                client.apply_updates("g", [("insert", "tail2", "c1")])]
        # The ack carries the post-apply store coordinates the cluster
        # journals for checkpointing (no store here, so key is None).
        assert [a["version"] for a in acks] == [1, 2]
        assert all("key" in a for a in acks)
        answer = client.truncate_feed("g", version=acks[0]["version"])
        assert answer["dropped"] == 1 and answer["last_seq"] == 2
        # A consumer polling from before the truncation must resync;
        # one at the floor still replays the suffix completely.
        assert client.update_feed("g", since=0)["complete"] is False
        tail = client.update_feed("g", since=1)
        assert tail["complete"] and [e["seq"] for e in tail["entries"]] == [2]
        # Explicit-seq form, and the validation errors.
        assert client.truncate_feed("g", seq=2)["dropped"] == 1
        with pytest.raises(ServerError) as excinfo:
            client.truncate_feed("ghost", version=1)
        assert excinfo.value.status == 404
        with pytest.raises(ServerError) as excinfo:
            client.truncate_feed("g")
        assert excinfo.value.status == 400

    def test_remove_graph_drops_feed_and_unhooks(self, served_router):
        router, client = served_router
        client.apply_updates("g", [("insert", "tail1", "tail2")])
        assert router.feed.last_seq("g") == 1
        service = router.remove_graph("g")
        assert router.feed.last_seq("g") == 0
        assert service.update_listener is None
        service.apply_updates([("insert", "tail2", "tail3")])
        assert router.feed.last_seq("g") == 0  # standalone use: silent


# ----------------------------------------------------------------------
# Client retries, deadlines, and the hung-socket fault
# ----------------------------------------------------------------------
class _FlakyHandler(BaseHTTPRequestHandler):
    def log_message(self, *args):  # noqa: A002
        pass

    def _answer(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        self.server.hits += 1
        if self.server.hits <= self.server.fail_first:
            status, body = 503, b'{"error": "respawning"}'
        else:
            status, body = 200, b'{"ok": true}'
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _answer
    do_POST = _answer


@pytest.fixture()
def flaky_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    server.hits = 0
    server.fail_first = 0
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()


class TestClientRetries:
    def test_get_retries_through_503s(self, flaky_server):
        flaky_server.fail_first = 2
        client = ServerClient(f"http://127.0.0.1:{flaky_server.server_port}",
                              retries=4, retry_backoff=0.01)
        assert client._request("GET", "/anything") == {"ok": True}
        assert flaky_server.hits == 3
        client.close()

    def test_retries_exhausted_surface_the_503(self, flaky_server):
        flaky_server.fail_first = 100
        client = ServerClient(f"http://127.0.0.1:{flaky_server.server_port}",
                              retries=2, retry_backoff=0.01)
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/anything")
        assert excinfo.value.status == 503
        assert flaky_server.hits == 3  # 1 + 2 retries, not more
        client.close()

    def test_post_never_retries(self, flaky_server):
        """A write that 503s must not be re-sent: the server may have
        been mid-apply, and a re-send could double-apply a batch."""
        flaky_server.fail_first = 1
        client = ServerClient(f"http://127.0.0.1:{flaky_server.server_port}",
                              retries=5, retry_backoff=0.01)
        with pytest.raises(ServerError):
            client._request("POST", "/anything", body={"x": 1})
        assert flaky_server.hits == 1
        client.close()

    def test_deadline_bounds_a_hung_socket(self):
        """The nastiest failure: a server that accepts and goes silent.
        The per-attempt socket timeout plus the deadline bound the
        total wait — the client never hangs."""
        with HungSocket() as hung:
            client = ServerClient(hung.url, timeout=0.3, retries=10,
                                  retry_backoff=0.05, deadline=1.5)
            started = time.monotonic()
            with pytest.raises(ServerError) as excinfo:
                client._request("GET", "/healthz")
            elapsed = time.monotonic() - started
            assert excinfo.value.status == 0
            assert elapsed < 10  # bounded, nowhere near 10 x 0.3 + pauses
            client.close()

    def test_jitter_is_deterministic_and_bounded(self):
        values = {_retry_jitter("/graphs/g/top_r", attempt)
                  for attempt in range(16)}
        assert len(values) == 16  # distinct per attempt
        assert all(0.0 <= v < 1.0 for v in values)
        assert _retry_jitter("/x", 3) == _retry_jitter("/x", 3)

    def test_connection_refused_retries_then_raises(self):
        probe = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
        port = probe.server_port
        probe.server_close()  # nothing listens here now
        client = ServerClient(f"http://127.0.0.1:{port}", retries=2,
                              retry_backoff=0.01)
        with pytest.raises(ServerError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        client.close()
