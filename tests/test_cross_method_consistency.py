"""The canonical ranking contract: identical ranked lists everywhere.

Every search method — and the query engine on top of them — must return
the *same ranked vertex list* for the same query, ties included:
descending score, ties broken by graph insertion order
(:mod:`repro.core.results`).  Score multisets are not enough; the
planner swaps methods freely, so a tie resolved differently per method
would make answers flap under load.

The regression class pins the historical bug: TSD's bound-ordered scan
used to resolve boundary ties in *bound* order while the baseline used
insertion order, so ``top_r`` could return different equally-scored
vertices per method.
"""

import random

import pytest

from repro.graph.graph import Graph
from repro.core.online import online_search
from repro.core.bound import bound_search
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher
from repro.engine import QueryEngine


def _ranked(result):
    return [(entry.vertex, entry.score) for entry in result.entries]


def _all_results(graph, k, r, tsd=None, gct=None, hybrid=None):
    tsd = tsd or TSDIndex.build(graph)
    gct = gct or GCTIndex.build(graph)
    hybrid = hybrid or HybridSearcher.precompute(graph, index=tsd)
    return [
        online_search(graph, k, r),
        bound_search(graph, k, r),
        tsd.top_r(k, r),
        gct.top_r(k, r),
        hybrid.top_r(k, r),
    ]


def tie_heavy_graph() -> Graph:
    """Many disjoint k-cliques: every clique owner scores exactly 1.

    The insertion order of the owners is deliberately *unrelated* to
    any bound order (all bounds tie too), so any method that leaks its
    scan order into tie-breaking returns a different vertex list.
    """
    g = Graph()
    # Insert owners first in a scrambled order so insertion order is
    # pinned and distinct from clique construction order.
    owners = [f"owner{i}" for i in (4, 0, 6, 2, 5, 1, 3, 7)]
    for owner in owners:
        g.add_vertex(owner)
    for i, owner in enumerate(owners):
        members = [f"m{i}_{j}" for j in range(3)]
        clique = [owner] + members
        for a in range(len(clique)):
            for b in range(a + 1, len(clique)):
                g.add_edge(clique[a], clique[b])
    return g


class TestTieRegression:
    """Boundary ties must resolve identically in every method."""

    def test_all_methods_agree_on_ties(self):
        g = tie_heavy_graph()
        tsd = TSDIndex.build(g)
        gct = GCTIndex.build(g)
        hybrid = HybridSearcher.precompute(g, index=tsd)
        for k in (2, 3, 4):
            for r in (1, 2, 3, 5, 8, 11):
                results = _all_results(g, k, r, tsd, gct, hybrid)
                expected = _ranked(results[0])
                for result in results[1:]:
                    assert _ranked(result) == expected, \
                        (result.method, k, r)

    def test_ties_resolve_by_insertion_order(self):
        """The selected tied vertices are the earliest-inserted ones."""
        g = tie_heavy_graph()
        insertion = list(g.vertices())
        baseline = online_search(g, 4, 3)
        tsd = TSDIndex.build(g).top_r(4, 3)
        assert tsd.vertices == baseline.vertices
        # Every answer scores the (tied) top score, and the winners are
        # exactly the earliest-inserted vertices achieving it.
        top_score = baseline.scores[0]
        assert baseline.scores == [top_score] * 3
        index = GCTIndex.build(g)
        earliest_with_top = [v for v in insertion
                             if index.score(v, 4) == top_score]
        assert baseline.vertices == earliest_with_top[:3]

    def test_compress_equals_build_structurally(self):
        """Satellite regression: GCTIndex.compress must produce the
        same supernode member tuples and superedges as GCTIndex.build,
        not just the same query answers."""
        g = tie_heavy_graph()
        built = GCTIndex.build(g)
        compressed = GCTIndex.compress(TSDIndex.build(g))
        assert compressed.vertices == built.vertices
        for v in g.vertices():
            assert compressed.supernodes(v) == built.supernodes(v), v
            assert compressed.superedges(v) == built.superedges(v), v


class TestPersistenceRoundTrip:
    """save → load → serve stays inside the canonical contract.

    The service layer's warm start rests on this: an index that went
    through disk must answer every query rank-identically to the index
    that was built in memory (and to the online baseline), and its
    build profile must survive the trip.
    """

    KRS = [(k, r) for k in (2, 3, 4) for r in (1, 3, 8, 20)]

    def test_tsd_round_trip_rank_identical(self, tmp_path):
        g = tie_heavy_graph()
        built = TSDIndex.build(g)
        built.save(tmp_path / "tsd.json")
        loaded = TSDIndex.load(tmp_path / "tsd.json")
        for k, r in self.KRS:
            expected = _ranked(online_search(g, k, r))
            assert _ranked(loaded.top_r(k, r)) == expected, (k, r)
            assert _ranked(built.top_r(k, r)) == expected, (k, r)

    def test_gct_round_trip_rank_identical(self, tmp_path):
        g = tie_heavy_graph()
        built = GCTIndex.build(g)
        built.save(tmp_path / "gct.json")
        loaded = GCTIndex.load(tmp_path / "gct.json")
        for k, r in self.KRS:
            expected = _ranked(online_search(g, k, r))
            assert _ranked(loaded.top_r(k, r)) == expected, (k, r)
            assert _ranked(built.top_r(k, r)) == expected, (k, r)

    def test_hybrid_round_trip_rank_identical(self, tmp_path):
        g = tie_heavy_graph()
        built = HybridSearcher.precompute(g)
        built.save(tmp_path / "hybrid.json")
        loaded = HybridSearcher.load(g, tmp_path / "hybrid.json")
        for k, r in self.KRS:
            expected = _ranked(online_search(g, k, r))
            assert _ranked(loaded.top_r(k, r)) == expected, (k, r)

    def test_build_profiles_survive(self, tmp_path):
        g = tie_heavy_graph()
        for cls, name in ((TSDIndex, "tsd.json"), (GCTIndex, "gct.json")):
            built = cls.build(g)
            assert built.build_profile is not None
            built.save(tmp_path / name)
            loaded = cls.load(tmp_path / name)
            assert loaded.build_profile is not None
            assert (loaded.build_profile.total_seconds
                    == built.build_profile.total_seconds), name

    def test_hybrid_rejects_mismatched_graph(self, tmp_path):
        from repro.errors import IndexFormatError
        g = tie_heavy_graph()
        HybridSearcher.precompute(g).save(tmp_path / "hybrid.json")
        other = Graph(edges=[(0, 1), (1, 2)])
        with pytest.raises(IndexFormatError):
            HybridSearcher.load(other, tmp_path / "hybrid.json")

    def test_binary_store_round_trip_rank_identical(self, tmp_path):
        """The mmap-backed lazy indexes of a ``codec="bin"`` store obey
        the canonical contract query-for-query against the online
        baseline and the JSON store."""
        from repro.service.store import IndexStore
        g = tie_heavy_graph()
        tsd = TSDIndex.build(g)
        gct = GCTIndex.build(g)
        json_store = IndexStore(tmp_path / "json")
        bin_store = IndexStore(tmp_path / "bin", codec="bin")
        json_store.put(g, tsd=tsd, gct=gct)
        bin_store.put(g, tsd=tsd, gct=gct)
        json_loaded = json_store.load(g)
        bin_loaded = bin_store.load(g)
        for k, r in self.KRS:
            expected = _ranked(online_search(g, k, r))
            assert _ranked(json_loaded.tsd.top_r(k, r)) == expected
            assert _ranked(bin_loaded.tsd.top_r(k, r)) == expected, (k, r)
            assert _ranked(json_loaded.gct.top_r(k, r)) == expected
            assert _ranked(bin_loaded.gct.top_r(k, r)) == expected, (k, r)


def _random_graph(n, p, seed):
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


GRID_GRAPHS = [(n, p, seed)
               for n in (6, 10, 15) for p in (0.3, 0.5, 0.8)
               for seed in (1, 2)]


class TestPropertySweep:
    """Seeded random graphs × (k, r) grid: the planner's invariant."""

    @pytest.mark.parametrize("n,p,seed", GRID_GRAPHS)
    def test_identical_ranked_lists(self, n, p, seed):
        g = _random_graph(n, p, seed)
        tsd = TSDIndex.build(g)
        gct = GCTIndex.build(g)
        hybrid = HybridSearcher.precompute(g, index=tsd)
        for k in (2, 3, 4, 5):
            for r in (1, 2, 4, n):
                results = _all_results(g, k, r, tsd, gct, hybrid)
                expected = _ranked(results[0])
                for result in results[1:]:
                    assert _ranked(result) == expected, \
                        (result.method, k, r, n, p, seed)

    @pytest.mark.parametrize("n,p,seed", GRID_GRAPHS[:6])
    def test_engine_auto_matches_methods(self, n, p, seed):
        g = _random_graph(n, p, seed)
        engine = QueryEngine(g)
        for k in (2, 3, 4):
            for r in (1, 3, n):
                expected = _ranked(online_search(g, k, r))
                got = _ranked(engine.top_r(k, r, method="auto"))
                assert got == expected, (k, r, n, p, seed)

    @pytest.mark.parametrize("n,p,seed", GRID_GRAPHS[:4])
    def test_contexts_agree_across_methods(self, n, p, seed):
        g = _random_graph(n, p, seed)
        for k in (2, 3):
            results = _all_results(g, k, 3)
            expected = [set(e.contexts) for e in results[0].entries]
            for result in results[1:]:
                got = [set(e.contexts) for e in result.entries]
                assert got == expected, (result.method, k)
