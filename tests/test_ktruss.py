"""Tests for k-truss extraction and maximal connected k-trusses."""

import pytest
from hypothesis import given

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.truss.decomposition import truss_decomposition
from repro.truss.ktruss import (
    k_truss_edges,
    k_truss_subgraph,
    maximal_connected_k_trusses,
    count_maximal_connected_k_trusses,
    is_k_truss,
)

from tests.conftest import graph_strategy, complete_graph
from tests.helpers import nx_ktruss_edges


class TestKTrussSubgraph:
    def test_invalid_k(self, triangle):
        with pytest.raises(InvalidParameterError):
            k_truss_subgraph(triangle, 1)

    def test_k2_is_whole_graph(self, figure1):
        sub = k_truss_subgraph(figure1, 2)
        assert sub.num_edges == figure1.num_edges

    def test_k_above_max_is_empty(self, triangle):
        assert k_truss_subgraph(triangle, 4).num_edges == 0

    def test_h1_4truss_splits(self, h1):
        sub = k_truss_subgraph(h1, 4)
        assert sub.num_edges == 12
        assert not sub.has_edge("x2", "y1")

    @given(graph_strategy())
    def test_matches_networkx(self, g):
        tau = truss_decomposition(g)
        for k in (3, 4, 5):
            ours = {frozenset(e) for e in k_truss_edges(tau, k)}
            assert ours == nx_ktruss_edges(g, k)

    @given(graph_strategy())
    def test_nested(self, g):
        """(k+1)-truss is a subgraph of the k-truss."""
        tau = truss_decomposition(g)
        for k in (2, 3, 4):
            higher = set(k_truss_edges(tau, k + 1))
            lower = set(k_truss_edges(tau, k))
            assert higher <= lower

    @given(graph_strategy())
    def test_ktruss_is_ktruss(self, g):
        """The k-truss satisfies its own defining predicate."""
        tau = truss_decomposition(g)
        for k in (3, 4):
            sub = k_truss_subgraph(g, k, tau)
            assert is_k_truss(sub, k)


class TestMaximalConnected:
    def test_paper_h1(self, h1):
        trusses = maximal_connected_k_trusses(h1, 4)
        as_sets = {frozenset(t) for t in trusses}
        assert as_sets == {
            frozenset({"x1", "x2", "x3", "x4"}),
            frozenset({"y1", "y2", "y3", "y4"})}

    def test_h1_at_3_is_one(self, h1):
        assert count_maximal_connected_k_trusses(h1, 3) == 1

    def test_count_matches_list(self, figure1):
        for k in (2, 3, 4, 5):
            assert (count_maximal_connected_k_trusses(figure1, k)
                    == len(maximal_connected_k_trusses(figure1, k)))

    def test_empty_graph(self):
        assert maximal_connected_k_trusses(Graph(), 3) == []

    @given(graph_strategy())
    def test_each_component_at_least_k_vertices(self, g):
        """A maximal connected k-truss spans at least k vertices
        (the fact behind the Lemma 2 bound)."""
        for k in (3, 4):
            for component in maximal_connected_k_trusses(g, k):
                assert len(component) >= k

    def test_is_k_truss_validation(self, triangle, path4):
        assert is_k_truss(triangle, 3)
        assert not is_k_truss(triangle, 4)
        assert is_k_truss(path4, 2)
        assert not is_k_truss(path4, 3)
        assert is_k_truss(Graph(), 5)
        assert is_k_truss(complete_graph(6), 6)
