"""Command-line interface: ``repro <subcommand>``.

Subcommands mirror the library's main entry points so the system is
usable without writing Python:

* ``repro stats GRAPH``                 — Table-1 statistics of a graph file
* ``repro topr GRAPH -k 4 -r 10``      — top-r structural diversity search
  (``--method auto`` lets the engine's cost-based planner choose)
* ``repro engine-stats GRAPH``         — run a workload through the
  query engine; report planner decisions, cache hits, index builds
* ``repro score GRAPH VERTEX -k 4``    — one vertex's score and contexts
* ``repro build-index GRAPH OUT``      — persist a TSD or GCT index
* ``repro query-index INDEX -k 4``     — top-r from a persisted index
* ``repro serve-build GRAPH STORE``    — build all index artifacts into a
  versioned :class:`~repro.service.store.IndexStore`
* ``repro serve-warm GRAPH STORE``     — serve a workload warm from the
  store (zero index builds), optionally applying live edge updates
* ``repro serve --http 8080 --graph name=g.txt``
                                       — HTTP JSON API over one or more
  named graphs (multi-graph routing, live updates, store compaction);
  ``--workers N`` shards the graphs across N supervised worker
  processes behind a consistent-hash router tier
* ``repro replicate SRC DST``          — one follower-sync pass: mirror
  an index-store root into a replica root (binary re-versions ship as
  checksum-verified byte-range deltas); ``repro serve --workers N
  --replicas M`` runs the same sync continuously per worker
* ``repro convert-index STORE --to bin`` — migrate a store's tsd/gct
  artifacts between the json and bin codecs in place
* ``repro store-inspect PATH``         — a ``.bin`` artifact's header and
  layout stats, or a store root's catalogue
* ``repro sparsify GRAPH OUT -k 4``    — write the reduced graph
* ``repro generate NAME OUT``          — write a registry dataset
* ``repro communities GRAPH VERTEX``   — k-truss community search
* ``repro dot GRAPH VERTEX OUT``       — ego-network + contexts as DOT

Graphs are SNAP-style edge lists (``#`` comments, whitespace separated,
integer ids) unless the path ends in ``.json``.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.graph.graph import Graph
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    read_json_graph,
    write_json_graph,
)
from repro.graph.stats import compute_stats, GraphStats
from repro.core.sparsify import sparsify_with_stats
from repro.core.diversity import diversity_and_contexts
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.community.tcp import TCPIndex
from repro.datasets.registry import dataset_names, load_dataset
from repro.engine import ENGINE_METHODS, EngineConfig, QueryEngine
from repro.errors import IndexFormatError


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    """The shared ``--jobs`` flag of every index-building subcommand."""
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="index-build workers: 0 auto-plans (shared-pass build, "
             "worker pool only when the graph is large and CPUs are "
             "spare), 1 forces the serial shared pass, N>=2 requests N "
             "worker processes, -1 keeps the legacy per-vertex build "
             "(default: %(default)s)")


def _jobs_value(args: argparse.Namespace):
    """CLI ``--jobs`` to library ``jobs``: ``-1`` means ``None``."""
    return None if args.jobs < 0 else args.jobs


def _add_codec_flag(parser: argparse.ArgumentParser) -> None:
    """The shared ``--codec`` flag of the store-writing subcommands."""
    from repro.storage.codec import codec_names
    parser.add_argument(
        "--codec", choices=codec_names(), default="json",
        help="artifact codec for new tsd/gct writes: 'json' keeps the "
             "original whole-payload files, 'bin' writes the paged "
             "binary format (mmap zero-copy warm starts) "
             "(default: %(default)s)")


def _load_graph(path: str) -> Graph:
    if path.endswith(".json"):
        return read_json_graph(path)
    return read_edge_list(path)


def _parse_vertex(raw: str) -> object:
    """Vertex labels on the CLI: integers when they look like integers."""
    try:
        return int(raw)
    except ValueError:
        return raw


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    stats = compute_stats(graph, name=Path(args.graph).stem,
                          include_ego_trussness=not args.fast)
    print(GraphStats.header())
    print(stats.as_row())
    return 0


def _cmd_topr(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    engine = QueryEngine(graph, EngineConfig(build_jobs=_jobs_value(args)))
    result = engine.top_r(args.k, args.r, method=args.method)
    if args.method == "auto":
        for decision in engine.stats().decisions:
            print(f"planner: {decision.method} — {decision.reason}")
    print(result.summary())
    for entry in result.entries:
        print(f"  {entry.vertex!r}: score={entry.score}")
        if args.contexts:
            for context in entry.contexts:
                print(f"    context: {sorted(map(repr, context))}")
    return 0


def _parse_query_list(raw: str) -> List[tuple]:
    """Parse a ``k:r,k:r,...`` workload specification (``r`` defaults
    to 10 when a pair is given as just ``k:`` or ``k``)."""
    from repro.errors import InvalidParameterError
    queries = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        k_text, _, r_text = part.partition(":")
        try:
            queries.append((int(k_text), int(r_text or "10")))
        except ValueError:
            raise InvalidParameterError(
                f"bad workload item {part!r}: expected k:r with integer "
                "k and r (e.g. --queries '3:10,4:5')") from None
    return queries


def _cmd_engine_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    engine = QueryEngine(graph)
    queries = _parse_query_list(args.queries)
    results = engine.top_r_many(queries, method=args.method)
    for (k, r), result in zip(queries, results):
        print(result.summary())
    print()
    print(engine.stats().summary())
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    vertex = _parse_vertex(args.vertex)
    score, contexts = diversity_and_contexts(graph, vertex, args.k)
    print(f"score({vertex!r}, k={args.k}) = {score}")
    for context in contexts:
        print(f"  context: {sorted(map(repr, context))}")
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    jobs = _jobs_value(args)
    if args.type == "tsd":
        index = TSDIndex.build(graph, jobs=jobs)
    else:
        index = GCTIndex.build(graph, jobs=jobs)
    index.save(args.out)
    profile = index.build_profile
    print(f"{args.type.upper()}-index of {graph.num_vertices} vertices "
          f"written to {args.out} "
          f"({index.payload_slots():,} slots, "
          f"built in {profile.total_seconds:.3f}s)")
    return 0


def _cmd_query_index(args: argparse.Namespace) -> int:
    path = args.index
    try:
        index = TSDIndex.load(path)
    except (IndexFormatError, ValueError):  # fall through to GCT format
        index = GCTIndex.load(path)
    result = index.top_r(args.k, args.r)
    print(result.summary())
    for entry in result.entries:
        print(f"  {entry.vertex!r}: score={entry.score}")
    return 0


def _cmd_serve_build(args: argparse.Namespace) -> int:
    from repro.service import IndexStore
    graph = _load_graph(args.graph)
    store = IndexStore(args.store, codec=args.codec)
    engine = QueryEngine(graph, EngineConfig(build_jobs=_jobs_value(args)))
    artifacts = [name.strip() for name in args.artifacts.split(",")
                 if name.strip()]
    version = engine.persist(store, artifacts=artifacts)
    build_seconds = sum(engine.stats().index_build_seconds.values())
    print(f"stored {', '.join(version.artifact_names)} for graph "
          f"{version.key[:12]}… as v{version.version} in {args.store} "
          f"(built in {build_seconds:.3f}s)")
    return 0


def _parse_update_list(raw: str) -> List[tuple]:
    """Parse an ``op:u:v,op:u:v,...`` update batch (``+u:v`` inserts,
    ``-u:v`` deletes, or the spelled-out op names)."""
    from repro.errors import InvalidParameterError
    ops = {"insert": "insert", "+": "insert", "delete": "delete", "-": "delete"}
    updates = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        if part[0] in "+-":
            op_text, rest = part[0], part[1:]
        else:
            op_text, _, rest = part.partition(":")
        u_text, sep, v_text = rest.partition(":")
        if op_text not in ops or not sep:
            raise InvalidParameterError(
                f"bad update item {part!r}: expected op:u:v with op one of "
                "insert/delete (or +u:v / -u:v)")
        updates.append((ops[op_text], _parse_vertex(u_text),
                        _parse_vertex(v_text)))
    return updates


def _cmd_serve_warm(args: argparse.Namespace) -> int:
    from repro.service import DiversityService, IndexStore
    graph = _load_graph(args.graph)
    store = IndexStore(args.store)
    if not store.has(graph):
        print(f"error: {args.store} has no stored indexes for this graph's "
              "content; run `repro serve-build` first", file=sys.stderr)
        return 1
    service = DiversityService.warm(graph, store)
    queries = _parse_query_list(args.queries)
    for result in service.top_r_many(queries):
        print(result.summary())
    if args.updates:
        report = service.apply_updates(_parse_update_list(args.updates))
        print(report.summary())
        for result in service.top_r_many(queries):
            print(result.summary())
    print()
    print(service.stats_summary())
    return 0


def _parse_graph_specs(specs: List[str]) -> Optional[List[tuple]]:
    """``NAME=PATH`` pairs, or ``None`` on a malformed spec."""
    pairs = []
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not path:
            print(f"error: bad --graph {spec!r}: expected NAME=PATH",
                  file=sys.stderr)
            return None
        pairs.append((name, path))
    return pairs


def _cmd_serve_cluster(args: argparse.Namespace, pairs: List[tuple]) -> int:
    """``repro serve --workers N``: the process-sharded cluster path."""
    from repro.cluster import ShardedCluster
    cluster = ShardedCluster(args.workers, store_root=args.store or None,
                             build_jobs=_jobs_value(args),
                             store_codec=args.codec, host=args.host,
                             followers=args.replicas,
                             quiet=args.quiet)
    cluster.start(port=args.http)
    try:
        for name, path in pairs:
            answer = cluster.add_graph(name, path=path)
            print(f"graph {name!r}: |V|={answer['vertices']:,} "
                  f"|E|={answer['edges']:,} "
                  f"({'warm' if answer['warm_started'] else 'cold'} start, "
                  f"worker {cluster.owner(name)})")
        base = cluster.url
        replicas = (f", {args.replicas} follower cop"
                    f"{'y' if args.replicas == 1 else 'ies'} per worker"
                    if args.replicas else "")
        print(f"serving {len(pairs)} graph(s) on {base} "
              f"across {args.workers} worker process(es){replicas}")
        print(f"  GET  {base}/graphs/<name>/top_r?k=4&r=10")
        print(f"  GET  {base}/cluster")
        print(f"  GET  {base}/stats")
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        cluster.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import DiversityRouter, serve
    from repro.service import IndexStore
    store = (IndexStore(args.store, codec=args.codec)
             if args.store else None)
    if not args.graph:
        print("error: register at least one graph with --graph NAME=PATH",
              file=sys.stderr)
        return 1
    pairs = _parse_graph_specs(args.graph)
    if pairs is None:
        return 1
    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}",
              file=sys.stderr)
        return 1
    if args.replicas < 0:
        print(f"error: --replicas must be >= 0, got {args.replicas}",
              file=sys.stderr)
        return 1
    if args.replicas and args.workers == 0:
        print("error: --replicas needs the process-sharded cluster; "
              "pass --workers N as well", file=sys.stderr)
        return 1
    if args.workers > 0:
        return _cmd_serve_cluster(args, pairs)
    router = DiversityRouter(store=store, build_jobs=_jobs_value(args))
    for name, path in pairs:
        service = router.add_graph(name, _load_graph(path))
        snapshot = service.snapshot
        print(f"graph {name!r}: |V|={snapshot.num_vertices:,} "
              f"|E|={snapshot.num_edges:,} "
              f"({'warm' if service.warm_started else 'cold'} start, "
              f"v{snapshot.version})")
    server = serve(router, port=args.http, host=args.host,
                   quiet=args.quiet, in_thread=True)
    base = f"http://{args.host}:{server.server_port}"
    print(f"serving {len(router)} graph(s) on {base}")
    print(f"  GET  {base}/healthz")
    print(f"  GET  {base}/graphs")
    print(f"  GET  {base}/graphs/<name>/top_r?k=4&r=10&contexts=1")
    print(f"  GET  {base}/graphs/<name>/score?v=0&k=4")
    print(f"  POST {base}/graphs/<name>/updates")
    print(f"  POST {base}/graphs/<name>/scores")
    if store is not None:
        print(f"  POST {base}/compact")
    print(f"  GET  {base}/stats")
    try:
        # serve() already runs the accept loop on a daemon thread; park
        # the main thread until the operator interrupts.
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.shutdown()
    return 0


def _cmd_convert_index(args: argparse.Namespace) -> int:
    from repro.service import IndexStore
    store = IndexStore(args.store)
    converted = store.convert(args.to)
    print(f"converted {converted} artifact file(s) in {args.store} "
          f"to the {args.to!r} codec")
    return 0


def _inspect_artifact(path: Path, verify: bool) -> int:
    """``repro store-inspect`` on one ``.bin`` artifact file."""
    from repro.storage import ArtifactReader
    with ArtifactReader(path) as reader:
        stats = reader.stats()
        if verify:
            reader.verify_checksum()
            stats["checksum"] = "ok"
    for field in ("kind", "format_version", "fingerprint", "num_vertices",
                  "records_present", "max_weight", "labels_bytes",
                  "profile_bytes", "dict_bytes", "heap_bytes", "dead_bytes",
                  "file_bytes", "record_bytes_min", "record_bytes_max",
                  "record_bytes_mean", "checksum"):
        if field in stats:
            print(f"{field:>18}: {stats[field]}")
    return 0


def _inspect_store(root: Path) -> int:
    """``repro store-inspect`` on a store root: the manifest catalogue."""
    from repro.service import IndexStore
    store = IndexStore(root)
    keys = store.keys()
    print(f"store {root}: {len(keys)} graph lineage(s), codec "
          f"{store.codec!r} for new writes")
    for key in keys:
        versions = store.versions(key)
        print(f"  {key[:12]}…: {len(versions)} version(s)")
        for version in versions:
            parts = []
            for name in version.artifact_names:
                path = root / version.artifacts[name]
                size = path.stat().st_size if path.is_file() else 0
                parts.append(f"{name}[{version.codec_of(name)}, "
                             f"{size:,}B]")
            print(f"    v{version.version}: {' '.join(parts)}")
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.errors import StoreError
    from repro.replication import replicate_store
    try:
        report = replicate_store(args.source, args.dest,
                                 keys=args.key or None, merge=args.merge)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{args.source} -> {args.dest}")
    print(report.summary())
    return 0


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    from repro.errors import StoreError
    path = Path(args.path)
    try:
        if path.is_file():
            return _inspect_artifact(path, args.verify)
        if (path / "manifest.json").is_file():
            return _inspect_store(path)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"error: {path} is neither a .bin artifact nor an index-store "
          "root", file=sys.stderr)
    return 1


def _cmd_sparsify(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    reduced, stats = sparsify_with_stats(graph, args.k)
    if args.out.endswith(".json"):
        write_json_graph(reduced, args.out)
    else:
        write_edge_list(reduced, args.out)
    print(f"removed {stats.removed_edges:,}/{stats.original_edges:,} edges "
          f"({stats.edge_removal_ratio:.1%}) and "
          f"{stats.removed_vertices:,} isolated vertices; wrote {args.out}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name)
    if args.out.endswith(".json"):
        write_json_graph(graph, args.out)
    else:
        write_edge_list(graph, args.out, header=f"repro dataset {args.name}")
    print(f"{args.name}: |V|={graph.num_vertices:,} |E|={graph.num_edges:,} "
          f"-> {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import summarize_scores
    from repro.core.gct import GCTIndex
    graph = _load_graph(args.graph)
    index = GCTIndex.build(graph)
    summary = summarize_scores(index.scores_for_all(args.k))
    print(f"structural diversity at k={args.k} over "
          f"{summary.count:,} vertices:")
    print(f"  with >=1 social context: {summary.nonzero:,} "
          f"({summary.nonzero_fraction:.1%})")
    print(f"  mean score: {summary.mean:.3f}   max score: {summary.maximum}")
    print("  score histogram:")
    for score, count in summary.histogram.items():
        print(f"    {score:>4}: {count:,}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.viz import ego_network_to_dot, contexts_summary
    graph = _load_graph(args.graph)
    vertex = _parse_vertex(args.vertex)
    dot = ego_network_to_dot(graph, vertex, args.k,
                             include_center=args.center)
    Path(args.out).write_text(dot, encoding="utf-8")
    print(contexts_summary(graph, vertex, args.k))
    print(f"DOT written to {args.out} (render with: dot -Tpng {args.out})")
    return 0


def _cmd_communities(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    vertex = _parse_vertex(args.vertex)
    index = TCPIndex.build(graph)
    communities = index.communities(vertex, args.k)
    print(f"{len(communities)} k-truss communities contain {vertex!r} at k={args.k}")
    for i, community in enumerate(communities):
        print(f"  community {i}: {len(community.vertices)} vertices, "
              f"{len(community.edges)} edges")
        if args.verbose:
            print(f"    {sorted(map(repr, community.vertices))}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import main as lint_main
    argv = list(args.paths) + ["--format", args.format]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Truss-based structural diversity search (ICDE 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="Table-1 statistics of a graph file")
    p.add_argument("graph")
    p.add_argument("--fast", action="store_true",
                   help="skip the expensive tau*_ego column")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("topr", help="top-r structural diversity search")
    p.add_argument("graph")
    p.add_argument("-k", type=int, default=3, help="trussness threshold")
    p.add_argument("-r", type=int, default=10, help="answer size")
    p.add_argument("--method", choices=list(ENGINE_METHODS), default="gct",
                   help="search method; 'auto' lets the cost-based "
                        "planner choose")
    p.add_argument("--contexts", action="store_true",
                   help="print the social contexts of each answer vertex")
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_topr)

    p = sub.add_parser("engine-stats",
                       help="run a workload through the query engine and "
                            "report planner decisions and cache stats")
    p.add_argument("graph")
    p.add_argument("--queries", default="3:10,4:10,3:5,5:10,4:3",
                   help="workload as comma-separated k:r pairs "
                        "(default: %(default)s)")
    p.add_argument("--method", choices=list(ENGINE_METHODS), default="auto")
    p.set_defaults(func=_cmd_engine_stats)

    p = sub.add_parser("score", help="score and contexts of one vertex")
    p.add_argument("graph")
    p.add_argument("vertex")
    p.add_argument("-k", type=int, default=3)
    p.set_defaults(func=_cmd_score)

    p = sub.add_parser("build-index", help="build and persist an index")
    p.add_argument("graph")
    p.add_argument("out")
    p.add_argument("--type", choices=["tsd", "gct"], default="gct")
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_build_index)

    p = sub.add_parser("query-index", help="top-r from a persisted index")
    p.add_argument("index")
    p.add_argument("-k", type=int, default=3)
    p.add_argument("-r", type=int, default=10)
    p.set_defaults(func=_cmd_query_index)

    p = sub.add_parser("serve-build",
                       help="build index artifacts into a versioned store "
                            "for later warm starts")
    p.add_argument("graph")
    p.add_argument("store", help="index-store directory (created if missing)")
    p.add_argument("--artifacts", default="tsd,gct,hybrid",
                   help="comma-separated artifacts to persist "
                        "(default: %(default)s)")
    _add_codec_flag(p)
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_serve_build)

    p = sub.add_parser("serve-warm",
                       help="serve a workload warm from a store — zero "
                            "index builds")
    p.add_argument("graph")
    p.add_argument("store", help="index-store directory")
    p.add_argument("--queries", default="3:10,4:10,3:5,5:10,4:3",
                   help="workload as comma-separated k:r pairs "
                        "(default: %(default)s)")
    p.add_argument("--updates", default="",
                   help="live edge updates applied after the workload, as "
                        "comma-separated +u:v (insert) / -u:v (delete) "
                        "items; the workload is then replayed on the new "
                        "snapshot")
    p.set_defaults(func=_cmd_serve_warm)

    p = sub.add_parser("serve",
                       help="HTTP JSON API over one or more named graphs "
                            "(multi-graph routing, live updates, "
                            "store compaction)")
    p.add_argument("--http", type=int, required=True, metavar="PORT",
                   help="port to listen on (0 binds an ephemeral port)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: %(default)s)")
    p.add_argument("--graph", action="append", default=[],
                   metavar="NAME=PATH",
                   help="register a graph under a name; repeatable")
    p.add_argument("--store", default="",
                   help="shared index-store directory: graphs warm-start "
                        "from it and persist into it (created if missing); "
                        "with --workers, each worker keeps its own root "
                        "under this directory")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="shard graphs across N worker processes behind a "
                        "consistent-hash router tier (supervised restarts, "
                        "per-worker stores); 0 keeps the single-process "
                        "router (default: %(default)s)")
    p.add_argument("--replicas", type=int, default=0, metavar="M",
                   help="follower store copies per worker (needs "
                        "--workers): a background thread keeps M replica "
                        "roots per worker in sync, and a worker whose "
                        "primary store root is lost restores from the "
                        "newest valid replica at respawn "
                        "(default: %(default)s)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-request access logs")
    _add_codec_flag(p)
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("replicate",
                       help="one follower-sync pass: mirror an index "
                            "store root into a replica root (byte-range "
                            "deltas, checksum-verified)")
    p.add_argument("source", help="primary store root (read-only)")
    p.add_argument("dest",
                   help="follower/replica root (created if missing)")
    p.add_argument("--key", action="append", default=[], metavar="KEY",
                   help="restrict the pass to one graph key; repeatable "
                        "(default: every key)")
    p.add_argument("--merge", action="store_true",
                   help="keep the destination's existing lineages for "
                        "keys the source does not carry (default: exact "
                        "mirror of the selection)")
    p.set_defaults(func=_cmd_replicate)

    p = sub.add_parser("convert-index",
                       help="migrate a store's tsd/gct artifacts between "
                            "the json and bin codecs in place")
    p.add_argument("store", help="index-store directory")
    p.add_argument("--to", choices=("json", "bin"), required=True,
                   help="target codec")
    p.set_defaults(func=_cmd_convert_index)

    p = sub.add_parser("store-inspect",
                       help="print a .bin artifact's header and layout "
                            "stats, or a store root's catalogue")
    p.add_argument("path", help="a .bin artifact file or a store root")
    p.add_argument("--verify", action="store_true",
                   help="verify the artifact's payload checksum "
                        "(.bin files only)")
    p.set_defaults(func=_cmd_store_inspect)

    p = sub.add_parser("sparsify", help="write the Property-1 reduced graph")
    p.add_argument("graph")
    p.add_argument("out")
    p.add_argument("-k", type=int, default=3)
    p.set_defaults(func=_cmd_sparsify)

    p = sub.add_parser("generate", help="write a registry dataset to disk")
    p.add_argument("name", choices=dataset_names())
    p.add_argument("out")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("analyze", help="diversity score distribution")
    p.add_argument("graph")
    p.add_argument("-k", type=int, default=4)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("dot", help="export an ego-network with its "
                                   "social contexts as Graphviz DOT")
    p.add_argument("graph")
    p.add_argument("vertex")
    p.add_argument("out")
    p.add_argument("-k", type=int, default=4)
    p.add_argument("--center", action="store_true",
                   help="include the ego vertex and its spokes")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser("communities", help="k-truss community search")
    p.add_argument("graph")
    p.add_argument("vertex")
    p.add_argument("-k", type=int, default=4)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_communities)

    p = sub.add_parser("lint", help="AST-based invariant checks over "
                                    "the repro source (RL001-RL005)")
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files or directories to lint (default: the "
                        "installed repro package source)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--list-rules", action="store_true",
                   help="print each rule and its invariant, then exit")
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``repro`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
