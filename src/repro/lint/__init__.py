"""``repro lint``: AST-based invariant checks for this codebase.

The repo's standing invariants — the canonical ranking contract,
``compress ≡ build``, byte-identical parallel builds — are enforced
dynamically by the test suites, which catch structural bugs only when
a seed happens to trigger one.  This package checks the *structural*
half statically, from source, with a ``file:line`` per finding:

=======  ============================================================
Rule     Invariant guarded
=======  ============================================================
RL001    determinism — no unordered set iteration, unseeded
         randomness, wall-clock or ``hash()`` on payload paths
RL002    lock discipline — guarded shared state mutates under its
         lock; durable file writes are tmp + ``os.replace``
RL003    exception hygiene — no ``except Exception`` / bare
         ``except`` without a justified pragma
RL004    wire schema — HTTP routes, ``ServerClient`` methods and
         response keys cannot drift apart
RL005    ranking contract — ``SearchResult`` construction routes
         through the canonical helpers
=======  ============================================================

Suppress a finding on its line with ``# repro-lint: disable=RL003 --
<justification>``; a suppression that silences nothing (or an RL003
one without a justification) is itself flagged as RL000.

Run it as ``repro lint``, ``make lint`` or ``python -m repro.lint``;
``--format json`` emits a machine-readable report.

Examples
--------
>>> report = lint_sources({"service/x.py": (
...     "def merge(a, b):\\n"
...     "    return [k for k in set(a) | set(b)]\\n")})
>>> [v.rule for v in report.violations]
['RL001']
>>> lint_sources({"service/x.py": (
...     "def merge(a, b):\\n"
...     "    return sorted(set(a) | set(b))\\n")}).clean
True
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.lint.framework import (
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    LintReport,
    Pragma,
    ProjectRule,
    Rule,
    SourceFile,
    Violation,
    parse_pragma,
    run_rules,
)
from repro.lint.reporters import render_json, render_text, report_payload
from repro.lint.rules import all_rules
from repro.lint.runner import collect_sources, default_paths, lint_paths, main

__all__ = [
    "PARSE_ERROR",
    "UNUSED_SUPPRESSION",
    "LintReport",
    "Pragma",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "Violation",
    "all_rules",
    "collect_sources",
    "default_paths",
    "lint_paths",
    "lint_sources",
    "main",
    "parse_pragma",
    "render_json",
    "render_text",
    "report_payload",
    "run_rules",
]


def lint_sources(texts: Dict[str, str],
                 rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint in-memory sources keyed by relative path (tests, tools)."""
    sources = {rel: SourceFile(rel, text) for rel, text in texts.items()}
    return run_rules(sources, list(rules) if rules else all_rules())
