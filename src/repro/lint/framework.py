"""The ``repro lint`` core: rules, violations, pragmas, one-walk dispatch.

The repo's standing invariants (ROADMAP "Standing invariants") are
enforced dynamically by the cross-method and property-random suites —
which catch a nondeterministic set iteration or an unlocked store write
only when a seed happens to trigger it.  Whole bug classes here are
*structural* and detectable from source; this module turns them into
CI failures with a ``file:line``.

Three kinds of pieces:

* :class:`Violation` — one finding, with a stable rule id and location.
* :class:`Rule` / :class:`ProjectRule` — a check.  File rules register
  the AST node types they care about (:attr:`Rule.visits`) and the
  framework walks each file's tree **once**, dispatching every node to
  every interested rule with the ancestor chain attached (so a rule can
  ask "am I inside a ``with self._lock`` block?" without re-walking).
  Project rules see all files at once (the wire-schema cross-check
  needs the server and the client together).
* Pragmas — ``# repro-lint: disable=RL001`` on the offending line
  suppresses that rule there; ``-- text`` after the rule list records
  the justification.  A pragma that suppresses nothing is itself a
  violation (:data:`UNUSED_SUPPRESSION`), so stale annotations cannot
  accumulate.

Examples
--------
>>> pragma = parse_pragma("x = 1  # repro-lint: disable=RL001 -- seeded")
>>> sorted(pragma.rules), pragma.justification
(['RL001'], 'seeded')
>>> parse_pragma("x = 1  # a plain comment") is None
True
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Rule id of the "unused suppression" meta-check.  Not suppressible:
#: a pragma that silences the pragma checker would be unfalsifiable.
UNUSED_SUPPRESSION = "RL000"

#: Rule id under which unparseable files are reported.
PARSE_ERROR = "RL999"

_PRAGMA_PATTERN = re.compile(
    r"#.*?repro-lint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
    r"(?:\s*--\s*(?P<why>.*))?")


@dataclass(frozen=True)
class Violation:
    """One lint finding: rule id, location, human message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of a report line."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_payload(self) -> Dict[str, object]:
        """JSON-able form (the ``--format json`` item shape)."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    @classmethod
    def from_payload(cls, payload: Dict) -> "Violation":
        """Inverse of :meth:`to_payload` (editor/CI consumers round-trip)."""
        return cls(rule=payload["rule"], path=payload["path"],
                   line=int(payload["line"]), col=int(payload["col"]),
                   message=payload["message"])


@dataclass(frozen=True)
class Pragma:
    """One ``# repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset
    justification: str


def parse_pragma(text: str, line: int = 0) -> Optional[Pragma]:
    """The pragma on one source line, or ``None``."""
    match = _PRAGMA_PATTERN.search(text)
    if match is None:
        return None
    rules = frozenset(part.strip() for part in match.group(1).split(","))
    return Pragma(line=line, rules=rules,
                  justification=(match.group("why") or "").strip())


class SourceFile:
    """One parsed file: path, text, AST, and its pragma lines.

    ``rel`` is the path rules scope on (POSIX separators, relative to
    the linted root — e.g. ``service/store.py`` under ``src/repro``)
    and the path violations report.
    """

    def __init__(self, rel: str, text: str,
                 path: Optional[Path] = None) -> None:
        self.rel = rel
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        # Pragmas come from real COMMENT tokens, not a text scan — a
        # docstring *describing* the pragma syntax must not suppress.
        self.pragmas: Dict[int, Pragma] = {}
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(text).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            pragma = parse_pragma(token.string, line=token.start[0])
            if pragma is not None:
                self.pragmas[pragma.line] = pragma
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(text)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc

    @classmethod
    def read(cls, path: Path, rel: str) -> "SourceFile":
        """Load one file from disk."""
        return cls(rel, path.read_text(encoding="utf-8"), path=path)


class Rule:
    """A per-file check, dispatched over one shared AST walk.

    Subclasses set :attr:`id`, :attr:`name`, :attr:`invariant` and
    :attr:`scope`, then either register node interests via
    :attr:`visits` + :meth:`visit`, or override :meth:`check` for
    whole-file logic.  ``visit`` receives the ancestor chain
    (module ... parent), so structural context ("inside which
    function?", "under which ``with``?") is one backwards scan away.
    """

    id: str = "RL???"
    name: str = "unnamed"
    #: One line: which repo invariant this rule guards (README table).
    invariant: str = ""
    #: Relative-path prefixes this rule applies to; empty = every file.
    scope: Tuple[str, ...] = ()
    #: AST node classes :meth:`visit` wants to see.
    visits: Tuple[type, ...] = ()

    def applies_to(self, rel: str) -> bool:
        """Whether this rule runs on the file at ``rel``."""
        if not self.scope:
            return True
        return any(rel == prefix or rel.startswith(prefix)
                   for prefix in self.scope)

    def visit(self, node: ast.AST, ancestors: Sequence[ast.AST],
              source: SourceFile) -> Iterable[Violation]:
        """Handle one node of a registered type; yield violations."""
        return ()

    def check(self, source: SourceFile) -> Iterable[Violation]:
        """Whole-file hook for rules that need no node dispatch."""
        return ()

    def violation(self, source: SourceFile, node: ast.AST,
                  message: str) -> Violation:
        """A :class:`Violation` anchored at ``node``."""
        return Violation(rule=self.id, path=source.rel,
                         line=getattr(node, "lineno", 0),
                         col=getattr(node, "col_offset", 0) + 1,
                         message=message)


class ProjectRule(Rule):
    """A cross-file check: sees every linted file in one call."""

    def check_project(self, sources: Dict[str, SourceFile]
                      ) -> Iterable[Violation]:
        """Check the whole file set; keys are ``rel`` paths."""
        return ()


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run found nothing."""
        return not self.violations

    def sorted(self) -> List[Violation]:
        """Violations in report order: path, then line, then rule."""
        return sorted(self.violations,
                      key=lambda v: (v.path, v.line, v.col, v.rule))


def _dispatch_walk(source: SourceFile, rules: Sequence[Rule]
                   ) -> List[Violation]:
    """One tree walk, every node handed to every interested rule."""
    interested = [rule for rule in rules if rule.visits]
    violations: List[Violation] = []
    if not interested or source.tree is None:
        return violations
    ancestors: List[ast.AST] = []

    def walk(node: ast.AST) -> None:
        for rule in interested:
            if isinstance(node, rule.visits):
                violations.extend(rule.visit(node, ancestors, source))
        ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            walk(child)
        ancestors.pop()

    walk(source.tree)
    return violations


def _apply_pragmas(source: SourceFile, found: List[Violation]
                   ) -> List[Violation]:
    """Drop suppressed violations; flag suppressions that did nothing.

    A pragma suppresses a violation of one of its rules reported on the
    pragma's own line.  Every ``(line, rule)`` pair that suppressed
    nothing becomes an :data:`UNUSED_SUPPRESSION` violation — pragmas
    must pay rent.
    """
    kept: List[Violation] = []
    used: Set[Tuple[int, str]] = set()
    for violation in found:
        pragma = source.pragmas.get(violation.line)
        if pragma is not None and violation.rule in pragma.rules \
                and violation.rule != UNUSED_SUPPRESSION:
            used.add((violation.line, violation.rule))
        else:
            kept.append(violation)
    for line, pragma in source.pragmas.items():
        for rule_id in sorted(pragma.rules):
            if (line, rule_id) not in used:
                kept.append(Violation(
                    rule=UNUSED_SUPPRESSION, path=source.rel, line=line,
                    col=1,
                    message=f"unused suppression: {rule_id} did not fire "
                            f"on this line"))
    return kept


def run_rules(sources: Dict[str, SourceFile], rules: Sequence[Rule]
              ) -> LintReport:
    """Run every rule over every applicable file; apply pragmas.

    ``sources`` maps ``rel`` path to parsed file.  Unparseable files
    report a single :data:`PARSE_ERROR` violation instead of their rule
    findings.
    """
    report = LintReport(files_checked=len(sources))
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    found_by_file: Dict[str, List[Violation]] = {}
    for rel in sorted(sources):
        source = sources[rel]
        if source.parse_error is not None:
            error = source.parse_error
            report.violations.append(Violation(
                rule=PARSE_ERROR, path=rel, line=error.lineno or 0,
                col=(error.offset or 0) or 1,
                message=f"file does not parse: {error.msg}"))
            continue
        applicable = [r for r in file_rules if r.applies_to(rel)]
        found = _dispatch_walk(source, applicable)
        for rule in applicable:
            found.extend(rule.check(source))
        found_by_file[rel] = found
    parseable = {rel: source for rel, source in sources.items()
                 if source.parse_error is None}
    # Project findings join their file's bucket *before* pragmas apply,
    # so a cross-file finding is suppressible like any other.
    for rule in project_rules:
        for violation in rule.check_project(parseable):
            found_by_file.setdefault(violation.path, []).append(violation)
    for rel in sorted(found_by_file):
        source = sources.get(rel)
        if source is None:  # project finding on an unknown path
            report.violations.extend(found_by_file[rel])
            continue
        report.violations.extend(_apply_pragmas(source, found_by_file[rel]))
    report.violations = report.sorted()
    return report


# ----------------------------------------------------------------------
# Shared AST helpers for the concrete rules
# ----------------------------------------------------------------------
def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted-name text of a Name/Attribute chain (``None`` otherwise).

    ``self._store._manifest`` → ``"self._store._manifest"``; anything
    with calls or subscripts inside returns ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def enclosing_function(ancestors: Sequence[ast.AST]
                       ) -> Optional[ast.AST]:
    """The innermost function def on the ancestor chain, if any."""
    for node in reversed(ancestors):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def with_context_names(ancestors: Sequence[ast.AST]) -> Set[str]:
    """Dotted names of every ``with`` context on the ancestor chain.

    ``with self._lock:`` and ``with self._locked():`` both contribute
    ``self._lock`` / ``self._locked`` — the call parentheses are
    stripped, so lock attributes and lock-scope context managers are
    matched the same way.
    """
    names: Set[str] = set()
    for node in ancestors:
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            chain = attr_chain(expr)
            if chain is not None:
                names.add(chain)
    return names
