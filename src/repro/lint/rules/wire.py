"""RL004 — wire-schema drift: server routes ≡ client surface ≡ frontend.

The HTTP wire has three parties that must agree without sharing code:
the worker server (``server/http.py``) registers routes and writes
response keys, :class:`ServerClient` (``server/client.py``) addresses
those routes and reads those keys, and the cluster frontend
(``cluster/frontend.py``) fans out to worker endpoints through client
methods.  Nothing ties them together at runtime — a renamed route or
response key only fails when a test happens to cross that edge.

This project rule parses all three and cross-checks:

* every client endpoint (``self._request(method, path)``) resolves to
  a server route with the same HTTP method (f-string placeholders
  match the server's ``<name>`` path segments);
* every server route is reachable from at least one client method —
  an uncallable endpoint is drift in the other direction;
* every response key the client subscripts out of ``_request(...)``
  is a key the matching server branch actually writes (checked where
  the server responds with a dict literal; computed payloads are
  accepted as open);
* every fan-out endpoint the frontend names (``_FANOUT_GET``) has a
  ``_fan_<name>`` handler, and every ``client.<method>(...)`` call in
  the frontend names a real :class:`ServerClient` method.

The rule keys off relative paths (``server/http.py`` …); projects (and
test fixtures) that lack the files simply skip the parts that need
them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.framework import ProjectRule, SourceFile, Violation

SERVER_REL = "server/http.py"
CLIENT_REL = "server/client.py"
FRONTEND_REL = "cluster/frontend.py"

#: A route pattern: HTTP method + path segments; ``None`` segments are
#: placeholders (``<name>`` on the server, f-string holes on the client).
Route = Tuple[str, Tuple[Optional[str], ...]]


def _const_list(node: ast.AST) -> Optional[List[str]]:
    """The string elements of a literal list, or ``None``."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) \
                or not isinstance(element.value, str):
            return None
        values.append(element.value)
    return values


def _class_method(tree: ast.AST, method: str) -> Optional[ast.FunctionDef]:
    """The first method named ``method`` on any class in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef) \
                        and item.name == method:
                    return item
    return None


def _branch_condition(test: ast.AST) -> Optional[Tuple[str, List[str]]]:
    """Decode ``method == "GET" and segments == [...]`` branch tests."""
    if not isinstance(test, ast.BoolOp) or not isinstance(test.op, ast.And):
        return None
    http_method = None
    segments: Optional[List[str]] = None
    for value in test.values:
        if not isinstance(value, ast.Compare) \
                or len(value.comparators) != 1 \
                or not isinstance(value.left, ast.Name):
            continue
        comparator = value.comparators[0]
        if value.left.id == "method" \
                and isinstance(comparator, ast.Constant):
            http_method = comparator.value
        elif value.left.id in ("segments", "rest"):
            segments = _const_list(comparator)
    if http_method is None or segments is None:
        return None
    return http_method, segments


def _respond_keys(branch: List[ast.stmt]) -> Optional[Set[str]]:
    """Keys of the dict literal a branch passes to ``self._respond``.

    ``None`` means the payload is computed (open schema: key checks are
    skipped for that endpoint).
    """
    for statement in branch:
        for node in ast.walk(statement):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) \
                    or func.attr != "_respond" or len(node.args) < 2:
                continue
            payload = node.args[1]
            if isinstance(payload, ast.Dict):
                keys: Set[str] = set()
                for key in payload.keys:
                    if not isinstance(key, ast.Constant):
                        return None  # **spread or computed key
                    keys.add(key.value)
                return keys
            return None
    return None


class _ServerSurface:
    """Routes and (where literal) response keys of ``server/http.py``."""

    def __init__(self, source: SourceFile) -> None:
        self.routes: Dict[Route, Optional[Set[str]]] = {}
        root = _class_method(source.tree, "_route")
        graph = _class_method(source.tree, "_route_graph")
        if root is not None:
            self._collect(root, prefix=())
        if graph is not None:
            self._collect(graph, prefix=("graphs", None))

    def _collect(self, function: ast.FunctionDef,
                 prefix: Tuple[Optional[str], ...]) -> None:
        for node in ast.walk(function):
            if not isinstance(node, ast.If):
                continue
            decoded = _branch_condition(node.test)
            if decoded is None:
                continue
            http_method, segments = decoded
            route: Route = (http_method, prefix + tuple(segments))
            self.routes[route] = _respond_keys(node.body)

    def match(self, method: str,
              path: Tuple[Optional[str], ...]) -> Optional[Route]:
        """The server route a client path pattern addresses, if any."""
        for (route_method, segments) in self.routes:
            if route_method != method or len(segments) != len(path):
                continue
            if all(expected is None or actual is None or expected == actual
                   for expected, actual in zip(segments, path)):
                return (route_method, segments)
        return None


def _request_endpoint(call: ast.Call) -> Optional[Route]:
    """Decode a ``self._request("GET", <path>)`` call's endpoint."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "_request" \
            or len(call.args) < 2:
        return None
    method_node, path_node = call.args[0], call.args[1]
    if not isinstance(method_node, ast.Constant):
        return None
    segments: List[Optional[str]] = []
    if isinstance(path_node, ast.Constant) \
            and isinstance(path_node.value, str):
        text_parts = [path_node.value]
    elif isinstance(path_node, ast.JoinedStr):
        text_parts = []
        for value in path_node.values:
            if isinstance(value, ast.Constant):
                text_parts.append(str(value.value))
            else:
                text_parts.append("\x00")  # placeholder hole
    else:
        return None
    for part in "".join(text_parts).split("/"):
        if not part:
            continue
        segments.append(None if "\x00" in part else part)
    return (method_node.value, tuple(segments))


class _ClientSurface:
    """Endpoints and response-key reads of each ``ServerClient`` method."""

    def __init__(self, source: SourceFile) -> None:
        #: method name → (endpoint, keys read off the _request result)
        self.methods: Dict[str, Tuple[Route, Set[str]]] = {}
        self.method_names: Set[str] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                self.method_names.add(item.name)
                self._collect(item)

    def _collect(self, function: ast.FunctionDef) -> None:
        endpoint: Optional[Route] = None
        keys: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                decoded = _request_endpoint(node)
                if decoded is not None:
                    endpoint = decoded
            if isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Call) \
                    and _request_endpoint(node.value) is not None \
                    and isinstance(node.slice, ast.Constant):
                keys.add(node.slice.value)
        if endpoint is not None:
            self.methods[function.name] = (endpoint, keys)


class WireSchemaRule(ProjectRule):
    """RL004: the HTTP wire's three parties must agree by construction."""

    id = "RL004"
    name = "wire-schema"
    invariant = ("wire answers stay byte-identical to in-process ones: "
                 "routes, client methods and response keys cannot drift "
                 "apart silently")

    def check_project(self, sources: Dict[str, SourceFile]
                      ) -> Iterable[Violation]:
        server_source = self._find(sources, SERVER_REL)
        client_source = self._find(sources, CLIENT_REL)
        frontend_source = self._find(sources, FRONTEND_REL)
        server = (_ServerSurface(server_source)
                  if server_source is not None else None)
        client = (_ClientSurface(client_source)
                  if client_source is not None else None)
        if server is not None and client is not None:
            yield from self._check_client_against_server(
                client, client_source, server, server_source)
        if frontend_source is not None and client is not None:
            yield from self._check_frontend(frontend_source, client)

    @staticmethod
    def _find(sources: Dict[str, SourceFile],
              suffix: str) -> Optional[SourceFile]:
        for rel, source in sources.items():
            if rel == suffix or rel.endswith("/" + suffix):
                return source
        return None

    # -- client ↔ server ----------------------------------------------
    def _check_client_against_server(self, client: _ClientSurface,
                                     client_source: SourceFile,
                                     server: _ServerSurface,
                                     server_source: SourceFile
                                     ) -> Iterable[Violation]:
        covered: Set[Route] = set()
        for name in sorted(client.methods):
            (method, path), keys = client.methods[name]
            route = server.match(method, path)
            path_text = "/" + "/".join("<*>" if s is None else s
                                       for s in path)
            if route is None:
                anchor = self._method_node(client_source, name)
                yield self.violation(
                    client_source, anchor,
                    f"client method {name}() addresses {method} "
                    f"{path_text}, which no server route serves")
                continue
            covered.add(route)
            server_keys = server.routes[route]
            if server_keys is None:
                continue  # computed payload: open schema
            for key in sorted(keys - server_keys):
                anchor = self._method_node(client_source, name)
                yield self.violation(
                    client_source, anchor,
                    f"client method {name}() reads response key "
                    f"{key!r} that the server's {method} {path_text} "
                    f"branch never writes (it writes "
                    f"{sorted(server_keys)})")
        def route_key(route: Route) -> Tuple[str, Tuple[str, ...]]:
            method, segments = route
            return method, tuple("" if s is None else s for s in segments)

        for route in sorted(server.routes, key=route_key):
            if route in covered:
                continue
            method, segments = route
            path_text = "/" + "/".join("<name>" if s is None else s
                                       for s in segments)
            yield self.violation(
                server_source, server_source.tree,
                f"server route {method} {path_text} has no ServerClient "
                f"method — the typed wire surface drifted")

    @staticmethod
    def _method_node(source: SourceFile, name: str) -> ast.AST:
        found = _class_method(source.tree, name)
        return found if found is not None else source.tree

    # -- frontend ↔ client --------------------------------------------
    def _check_frontend(self, source: SourceFile,
                        client: _ClientSurface) -> Iterable[Violation]:
        fanout: List[str] = []
        handlers: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id == "_FANOUT_GET":
                        fanout = _const_list(node.value) or []
            if isinstance(node, ast.FunctionDef) \
                    and node.name.startswith("_fan_"):
                handlers.add(node.name[len("_fan_"):])
        for name in fanout:
            if name not in handlers:
                yield self.violation(
                    source, source.tree,
                    f"fan-out endpoint {name!r} in _FANOUT_GET has no "
                    f"_fan_{name}() handler")
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "client" \
                    and not func.attr.startswith("_") \
                    and func.attr not in client.method_names:
                yield self.violation(
                    source, node,
                    f"frontend calls client.{func.attr}(), which is not "
                    f"a ServerClient method")
