"""The rule registry: every project invariant check, by id."""

from __future__ import annotations

from typing import List

from repro.lint.framework import Rule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.locking import LockDisciplineRule
from repro.lint.rules.exceptions import ExceptionHygieneRule
from repro.lint.rules.wire import WireSchemaRule
from repro.lint.rules.ranking import RankingContractRule

__all__ = [
    "DeterminismRule",
    "ExceptionHygieneRule",
    "LockDisciplineRule",
    "RankingContractRule",
    "WireSchemaRule",
    "all_rules",
]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [
        DeterminismRule(),
        LockDisciplineRule(),
        ExceptionHygieneRule(),
        WireSchemaRule(),
        RankingContractRule(),
    ]
