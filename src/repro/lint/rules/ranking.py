"""RL005 — ranking-contract routing: top-r answers go through canon.

The canonical ranking contract (ROADMAP, ``repro/core/results.py``)
requires every top-r path — baseline, bound, TSD, GCT, hybrid,
``auto``, snapshot, HTTP wire, cluster wire — to return the identical
ranked vertex list: descending score, ties by graph insertion order.
The contract lives in three helpers (:class:`CanonicalTopR`,
:func:`canonical_zero_fill`, :func:`build_entries`); a method that
assembles a :class:`SearchResult` with its own ad-hoc sort silently
re-introduces the scan-order ties the contract exists to kill.

Two checks in ``core/``, ``engine/``, ``service/``, ``server/``,
``cluster/`` (``core/results.py`` itself and the Section-7 experiment
``models/`` — which document their offer-order ties — are exempt):

* a function that *constructs* ``SearchResult(...)`` must also
  reference a canonical helper (building entries via
  ``build_entries`` or ranking via ``CanonicalTopR`` /
  ``canonical_zero_fill``).  Pure delegators (``return
  snapshot.top_r(...)``) construct nothing and pass freely.
* :class:`TopRCollector` — the offer-order collector — must not be
  used at all on these paths.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.lint.framework import Rule, SourceFile, Violation

_CANONICAL_HELPERS = ("CanonicalTopR", "canonical_zero_fill",
                      "build_entries")


def _referenced_names(function: ast.AST) -> set:
    """Every bare name referenced anywhere in ``function``."""
    return {node.id for node in ast.walk(function)
            if isinstance(node, ast.Name)}


class RankingContractRule(Rule):
    """RL005: ``SearchResult`` construction must route through canon."""

    id = "RL005"
    name = "ranking-contract"
    invariant = ("canonical ranking contract: every top-r path returns "
                 "the identical ranked vertex list (descending score, "
                 "ties by insertion order)")
    scope = ("core/", "engine/", "service/", "server/", "cluster/")
    visits = (ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, rel: str) -> bool:
        if rel == "core/results.py":
            return False  # the contract's own implementation
        return super().applies_to(rel)

    def visit(self, node: ast.AST, ancestors: Sequence[ast.AST],
              source: SourceFile) -> Iterable[Violation]:
        names = _referenced_names(node)
        constructs = any(
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "SearchResult"
            for call in ast.walk(node))
        if "TopRCollector" in names:
            yield self.violation(
                source, node,
                f"{node.name}() uses TopRCollector, whose ties follow "
                f"offer order — use CanonicalTopR (the canonical "
                f"ranking contract)")
        if constructs and not any(helper in names
                                  for helper in _CANONICAL_HELPERS):
            yield self.violation(
                source, node,
                f"{node.name}() constructs a SearchResult without any "
                f"canonical ranking helper (CanonicalTopR / "
                f"canonical_zero_fill / build_entries) — ad-hoc "
                f"rankings break the canonical ranking contract")
