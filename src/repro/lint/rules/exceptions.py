"""RL003 — exception hygiene: no silent catch-alls.

``except Exception`` (or a bare ``except:``) on a serving path eats
the very failures the differential harness exists to surface — a
worker that swallows an :class:`AssertionError` from a broken invariant
keeps serving wrong answers instead of failing loudly.  The library
has a typed hierarchy (:mod:`repro.errors`); handlers catch the
concrete classes they can actually recover from.

The small set of *intentional* catch-alls — the HTTP handler threads
and the cluster supervisor, which must outlive any single bad request
or respawn pass — carry a pragma naming that justification::

    except Exception as exc:  # repro-lint: disable=RL003 -- keep workers alive

A pragma without a justification text is itself flagged: "disabled" is
not a reason.

One shape is exempt outright: a broad handler that ends in a bare
``raise``.  Catch–cleanup–reraise (release a reservation, report the
error through a pipe, then propagate) swallows nothing — the breadth
exists precisely so the cleanup runs for *every* failure.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.lint.framework import (
    UNUSED_SUPPRESSION,
    Rule,
    SourceFile,
    Violation,
)

_BROAD = ("Exception", "BaseException")


def _broad_name(node: ast.AST):
    """The broad class an ``except`` clause names, if any."""
    if node is None:
        return "bare except"
    if isinstance(node, ast.Name) and node.id in _BROAD:
        return node.id
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            found = _broad_name(element)
            if found is not None:
                return found
    return None


def _reraises(node: ast.ExceptHandler) -> bool:
    """Whether the handler body ends by re-raising what it caught.

    A trailing bare ``raise`` — possibly wrapped in ``try/finally`` for
    cleanup — means the handler propagates every exception it sees, so
    its breadth hides nothing.
    """
    last = node.body[-1]
    while isinstance(last, ast.Try) and last.body:
        last = last.body[-1]
    return isinstance(last, ast.Raise) and last.exc is None


class ExceptionHygieneRule(Rule):
    """RL003: ``except Exception`` / bare ``except`` need a stated why."""

    id = "RL003"
    name = "exception-hygiene"
    invariant = ("failures surface typed: broad handlers hide broken "
                 "invariants behind 200s and silent retries")
    visits = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler,
              ancestors: Sequence[ast.AST], source: SourceFile
              ) -> Iterable[Violation]:
        broad = _broad_name(node.type)
        if broad is None or _reraises(node):
            return
        yield self.violation(
            source, node,
            f"broad handler ({broad}): catch the concrete exceptions "
            f"this code can recover from (see repro.errors), or pragma "
            f"it with a justification")
        pragma = source.pragmas.get(node.lineno)
        if pragma is not None and self.id in pragma.rules \
                and not pragma.justification:
            # The RL003 finding above is (legitimately) consumed by the
            # pragma; the missing justification surfaces through the
            # non-suppressible meta-rule instead.
            yield Violation(
                rule=UNUSED_SUPPRESSION, path=source.rel,
                line=node.lineno, col=node.col_offset + 1,
                message=f"suppression of {self.id} ({broad}) has no "
                        f"justification — write `# repro-lint: "
                        f"disable=RL003 -- <why this must catch "
                        f"everything>`")
