"""RL002 — lock discipline: shared state mutates only under its lock.

Guards the store's single-writer contract and the serving tier's
concurrency model (PR 2/3/5): manifest and artifact writes in
``service/store.py`` happen inside ``_locked()`` (flock + in-process
mutex), registry/pool/handle mutations in ``server/`` and ``cluster/``
happen inside their documented lock, and every durable file write goes
through the tmp + ``os.replace`` idiom so a crash never tears a file.

The guarded-state table below is the *explicit* contract: each entry
names a file, the attributes whose mutation needs a lock, and the lock
(or lock-scope context manager) that must be on the ``with`` stack.
New shared state joins the table — or documents why not with a pragma.

Two checks:

* **Guarded writes.**  An assignment, deletion, augmented assignment or
  mutating method call (``append``/``pop``/``add``/…) on a guarded
  ``self.<attr>`` must sit lexically inside ``with self.<lock>`` /
  ``with self.<lock>()`` — or inside the lock-scope provider function
  itself (``_locked`` wraps the flock in ``_write_mutex``).
* **Atomic file writes.**  ``.write_text(...)``, ``.write_bytes(...)``
  and ``open(..., "w"/"a"/"x")`` in the scoped files must share a
  function with an ``os.replace(...)`` call (the tmp-then-rename
  idiom); anything else can leave a torn file for a concurrent reader.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Set, Tuple

from repro.lint.framework import (
    Rule,
    SourceFile,
    Violation,
    attr_chain,
    enclosing_function,
    with_context_names,
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "pop", "popitem", "remove", "discard",
    "add", "clear", "update", "setdefault",
})

#: File modes that write.
_WRITE_MODES = ("w", "a", "x")


@dataclass(frozen=True)
class StateGuard:
    """One file's lock contract."""

    #: ``self.<lock>`` names accepted as the guarding scope.  A name
    #: here also exempts the function *named* after it (the lock-scope
    #: provider's own body, e.g. ``_locked``).
    locks: frozenset
    #: ``self.<attr>`` names whose mutation requires the lock.
    attrs: frozenset = frozenset()
    #: ``self.<method>()`` calls that count as guarded mutations
    #: (e.g. the manifest writer helper).
    calls: frozenset = frozenset()


def _guard(locks: Iterable[str], attrs: Iterable[str] = (),
           calls: Iterable[str] = ()) -> StateGuard:
    return StateGuard(locks=frozenset(locks), attrs=frozenset(attrs),
                      calls=frozenset(calls))


#: rel-path → contract.  The documented concurrency design of each
#: layer, made machine-checkable.
STATE_GUARDS: Dict[str, StateGuard] = {
    "service/store.py": _guard(
        locks=("self._locked", "self._write_mutex"),
        attrs=("_manifest",), calls=("_write_manifest",)),
    "server/router.py": _guard(
        locks=("self._registry_lock",),
        attrs=("_services", "_pending")),
    "server/client.py": _guard(
        locks=("self._pool_lock",), attrs=("_pool",)),
    "cluster/cluster.py": _guard(
        locks=("self._lock", "self._respawn_lock"),
        attrs=("_handles", "_registrations", "_journal",
               "_write_gates", "_respawn_counts",
               "_replication_reports", "_follower_floors")),
    "storage/reader.py": _guard(
        locks=("self._lock",),
        attrs=("_cache", "_labels")),
    "replication/feed.py": _guard(
        locks=("self._cond",),
        attrs=("_entries", "_last", "_floor")),
}


def _written_attrs(node: ast.AST) -> Iterable[Tuple[str, ast.AST]]:
    """``(attr, anchor)`` for every ``self.<attr>`` a statement writes."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = node.targets
    else:
        return
    stack = list(targets)
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
            continue
        if isinstance(target, (ast.Subscript, ast.Starred)):
            target = target.value
        chain = attr_chain(target)
        if chain is not None and chain.startswith("self."):
            yield chain[len("self."):].split(".", 1)[0], target


class LockDisciplineRule(Rule):
    """RL002: guarded-state writes and atomic-file-write idiom."""

    id = "RL002"
    name = "lock-discipline"
    invariant = ("single-writer store and serving tier: shared state "
                 "mutates under its lock; durable writes are "
                 "tmp + os.replace")
    scope = ("service/store.py", "service/lock.py", "server/",
             "cluster/", "storage/", "replication/")
    visits = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete,
              ast.Call)

    def visit(self, node: ast.AST, ancestors: Sequence[ast.AST],
              source: SourceFile) -> Iterable[Violation]:
        guard = STATE_GUARDS.get(source.rel)
        if isinstance(node, ast.Call):
            if guard is not None:
                yield from self._check_guarded_call(node, ancestors,
                                                    source, guard)
            yield from self._check_file_write(node, ancestors, source)
        elif guard is not None:
            yield from self._check_write(node, ancestors, source, guard)

    # -- guarded state -------------------------------------------------
    def _held(self, ancestors: Sequence[ast.AST],
              guard: StateGuard) -> bool:
        function = enclosing_function(ancestors)
        if function is not None and function.name == "__init__":
            return True  # nothing shares the object mid-construction
        if function is not None and \
                any(lock.endswith("." + function.name)
                    for lock in guard.locks):
            return True  # the lock-scope provider's own body
        return bool(with_context_names(ancestors) & set(guard.locks))

    def _check_write(self, node: ast.AST, ancestors: Sequence[ast.AST],
                     source: SourceFile, guard: StateGuard
                     ) -> Iterable[Violation]:
        for attr, anchor in _written_attrs(node):
            if attr not in guard.attrs:
                continue
            if self._held(ancestors, guard):
                continue
            locks = " / ".join(sorted(guard.locks))
            yield self.violation(
                source, anchor,
                f"write to guarded state self.{attr} outside a "
                f"`with {locks}` scope")

    def _check_guarded_call(self, node: ast.Call,
                            ancestors: Sequence[ast.AST],
                            source: SourceFile, guard: StateGuard
                            ) -> Iterable[Violation]:
        chain = attr_chain(node.func)
        if chain is None or not chain.startswith("self."):
            return
        parts = chain.split(".")
        locks = " / ".join(sorted(guard.locks))
        # self.<helper>() that mutates guarded state (manifest writer).
        if len(parts) == 2 and parts[1] in guard.calls \
                and not self._held(ancestors, guard):
            yield self.violation(
                source, node,
                f"call to self.{parts[1]}() mutates guarded state "
                f"outside a `with {locks}` scope")
        # self.<attr>.<mutator>() on a guarded attribute.
        if len(parts) == 3 and parts[1] in guard.attrs \
                and parts[2] in _MUTATORS \
                and not self._held(ancestors, guard):
            yield self.violation(
                source, node,
                f"self.{parts[1]}.{parts[2]}() mutates guarded state "
                f"outside a `with {locks}` scope")

    # -- atomic file writes --------------------------------------------
    def _check_file_write(self, node: ast.Call,
                          ancestors: Sequence[ast.AST],
                          source: SourceFile) -> Iterable[Violation]:
        writer = self._file_write_kind(node)
        if writer is None:
            return
        function = enclosing_function(ancestors)
        if function is not None and self._has_os_replace(function):
            return
        yield self.violation(
            source, node,
            f"{writer} writes a file without the tmp + os.replace() "
            f"idiom in the same function — a crash mid-write leaves a "
            f"torn file for concurrent readers")

    @staticmethod
    def _file_write_kind(node: ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in ("write_text", "write_bytes"):
            return f".{func.attr}()"
        if isinstance(func, ast.Name) and func.id == "open":
            mode = None
            if len(node.args) >= 2 and isinstance(node.args[1],
                                                  ast.Constant):
                mode = node.args[1].value
            for keyword in node.keywords:
                if keyword.arg == "mode" and isinstance(keyword.value,
                                                        ast.Constant):
                    mode = keyword.value.value
            if isinstance(mode, str) and any(flag in mode
                                             for flag in _WRITE_MODES):
                return f"open(..., {mode!r})"
        return None

    @staticmethod
    def _has_os_replace(function: ast.AST) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.Call) \
                    and attr_chain(node.func) == "os.replace":
                return True
        return False
