"""RL001 — determinism: no unordered iteration on payload-building paths.

Guards the **byte-identical parallelism** invariant (ROADMAP): every
build strategy must produce byte-identical index payloads, and the
store keys graphs by a content hash over canonical edge order — so any
iteration whose order depends on set-hash layout, :func:`hash`
randomisation, or wall-clock time can silently fork the bytes between
two runs (the PR-4 ``graph_fingerprint`` instability was exactly an
adjacency-*set* iteration order reaching a hashed blob).

Flagged in ``truss/``, ``build/``, ``core/``, ``service/``:

* ``for``-loops and comprehensions iterating a syntactic set
  expression — a ``set(...)``/``frozenset(...)`` call, a set literal or
  comprehension, or a union/intersection/difference of those (the
  ``set(a) | set(b)`` merge idiom) — unless wrapped in ``sorted(...)``;
* ``list(...)``/``tuple(...)`` materialising such an expression;
* unseeded randomness: ``random.<fn>(...)`` module calls and
  ``random.Random()`` with no seed (seeded ``random.Random(seed)``
  instances are fine — their method calls don't name the module);
* ``time.time()`` (use ``time.perf_counter`` for spans; wall-clock in
  a payload differs per run by construction);
* builtin ``hash(...)`` — PYTHONHASHSEED makes it per-process.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence, Tuple

from repro.lint.framework import Rule, SourceFile, Violation

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_unordered(node: ast.AST) -> bool:
    """Whether ``node`` syntactically builds an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


class DeterminismRule(Rule):
    """RL001: unordered iteration / unseeded entropy on payload paths."""

    id = "RL001"
    name = "determinism"
    invariant = ("byte-identical parallel builds: payload and "
                 "forest-assembly code must iterate deterministically")
    scope = ("truss/", "build/", "core/", "service/")
    visits = (ast.For, ast.comprehension, ast.Call)

    def visit(self, node: ast.AST, ancestors: Sequence[ast.AST],
              source: SourceFile) -> Iterable[Violation]:
        if isinstance(node, ast.For):
            yield from self._check_iterable(node.iter, source,
                                            context="for-loop")
        elif isinstance(node, ast.comprehension):
            yield from self._check_iterable(node.iter, source,
                                            context="comprehension")
        elif isinstance(node, ast.Call):
            yield from self._check_call(node, source)

    def _check_iterable(self, iterable: ast.AST, source: SourceFile,
                        context: str) -> Iterable[Violation]:
        if _is_unordered(iterable):
            yield self.violation(
                source, iterable,
                f"{context} iterates an unordered set expression — "
                f"iteration order is hash-dependent; wrap it in "
                f"sorted(...) with a deterministic key")

    def _check_call(self, node: ast.Call, source: SourceFile
                    ) -> Iterable[Violation]:
        func = node.func
        # list(set(...)) / tuple(set(...)) freeze a hash order.
        if isinstance(func, ast.Name) and func.id in ("list", "tuple") \
                and node.args and _is_unordered(node.args[0]):
            yield self.violation(
                source, node,
                f"{func.id}() materialises an unordered set expression "
                f"in hash order; use sorted(...) instead")
        # Builtin hash(): varies with PYTHONHASHSEED.
        if isinstance(func, ast.Name) and func.id == "hash":
            yield self.violation(
                source, node,
                "builtin hash() is per-process (PYTHONHASHSEED); use "
                "hashlib for content addressing")
        if not isinstance(func, ast.Attribute) \
                or not isinstance(func.value, ast.Name):
            return
        module, attr = func.value.id, func.attr
        if module == "time" and attr == "time":
            yield self.violation(
                source, node,
                "time.time() is wall-clock: it differs per run; use "
                "time.perf_counter() for spans and keep timestamps out "
                "of payloads")
        elif module == "random":
            if attr == "Random" and (node.args or node.keywords):
                return  # seeded random.Random(seed): reproducible
            yield self.violation(
                source, node,
                f"random.{attr}() draws from the unseeded global "
                f"generator; use a seeded random.Random(seed) instance")
