"""``python -m repro.lint`` — what ``make lint`` runs."""

import sys

from repro.lint.runner import main

if __name__ == "__main__":
    sys.exit(main())
