"""File discovery and the ``repro lint`` / ``python -m repro.lint`` entry.

With no path arguments the runner lints the installed ``repro`` package
source itself — the invocation CI and ``make lint`` use — so the check
is runnable from any working directory.  Explicit paths (files or
directories) lint those instead, with rule scoping relative to each
given directory (fixture trees in the test suite rely on this).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.framework import LintReport, Rule, SourceFile, run_rules
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules


def default_paths() -> List[Path]:
    """The package's own source tree (what CI lints)."""
    return [Path(__file__).resolve().parents[1]]


def collect_sources(paths: Sequence[Path]) -> Dict[str, SourceFile]:
    """Parse every ``.py`` file under ``paths`` into a source map.

    For a directory argument, files are keyed (and scoped) by their
    POSIX path relative to that directory; a bare file argument is
    keyed by its name.  Later paths win key collisions — callers lint
    disjoint trees in practice.
    """
    sources: Dict[str, SourceFile] = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                rel = file.relative_to(path).as_posix()
                sources[rel] = SourceFile.read(file, rel)
        else:
            sources[path.name] = SourceFile.read(path, path.name)
    return sources


def lint_paths(paths: Optional[Sequence[Path]] = None,
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint ``paths`` (default: the repro package) with ``rules``
    (default: every registered rule)."""
    sources = collect_sources(paths if paths else default_paths())
    return run_rules(sources, list(rules) if rules else all_rules())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: exit 0 when clean, 1 on any violation."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checks (determinism, lock "
                    "discipline, exception hygiene, wire schema, "
                    "ranking contract)")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint (default: "
                             "the installed repro package source)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="report format (default: %(default)s)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print each rule id, name and the "
                             "invariant it guards, then exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}: {rule.invariant}")
        return 0
    report = lint_paths([Path(p) for p in args.paths] or None)
    if args.fmt == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1
