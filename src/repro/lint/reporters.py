"""Lint output: a human ``file:line:col`` stream, or JSON for tools.

The text form is the compiler-error convention editors and CI log
scrapers already understand; the JSON form round-trips through
:meth:`~repro.lint.framework.Violation.from_payload` so editor plugins
and CI annotators consume findings without parsing prose.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.lint.framework import LintReport


def render_text(report: LintReport) -> str:
    """One line per violation, plus a summary tail."""
    lines = [f"{violation.location()}: [{violation.rule}] "
             f"{violation.message}"
             for violation in report.sorted()]
    noun = "file" if report.files_checked == 1 else "files"
    if report.clean:
        lines.append(f"repro lint: {report.files_checked} {noun} checked, "
                     f"clean")
    else:
        count = len(report.violations)
        noun_v = "violation" if count == 1 else "violations"
        lines.append(f"repro lint: {count} {noun_v} in "
                     f"{report.files_checked} {noun}")
    return "\n".join(lines)


def report_payload(report: LintReport) -> Dict[str, object]:
    """JSON-able form of a whole run."""
    return {
        "files_checked": report.files_checked,
        "clean": report.clean,
        "violations": [violation.to_payload()
                       for violation in report.sorted()],
    }


def render_json(report: LintReport) -> str:
    """The ``--format json`` body (stable key order, 2-space indent)."""
    return json.dumps(report_payload(report), indent=2)
