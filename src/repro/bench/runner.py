"""Shared experiment plumbing for the benchmark suite.

Each ``benchmarks/bench_*.py`` file regenerates one paper table or
figure; the helpers here keep them small: dataset access with process
level caching of expensive indexes, method dispatch by the paper's
method names, and uniform measurement records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.core.online import online_search
from repro.core.bound import bound_search
from repro.core.results import SearchResult
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher
from repro.datasets.registry import load_dataset

#: The method names used across the paper's tables and figures.
METHOD_NAMES = ("baseline", "bound", "TSD", "GCT", "hybrid")


@lru_cache(maxsize=None)
def tsd_index(dataset: str) -> TSDIndex:
    """Process-cached TSD-index of a registry dataset."""
    return TSDIndex.build(load_dataset(dataset))


@lru_cache(maxsize=None)
def gct_index(dataset: str) -> GCTIndex:
    """Process-cached GCT-index of a registry dataset."""
    return GCTIndex.build(load_dataset(dataset))


@lru_cache(maxsize=None)
def hybrid_searcher(dataset: str) -> HybridSearcher:
    """Process-cached Hybrid precomputation for a registry dataset."""
    return HybridSearcher.precompute(load_dataset(dataset),
                                     index=tsd_index(dataset))


def run_method(method: str, dataset: str, k: int, r: int,
               collect_contexts: bool = True) -> SearchResult:
    """Run one of the paper's methods on a registry dataset.

    Index-based methods are charged *query* time only (their indexes are
    cached), matching the paper's separation of construction and query
    costs in Tables 2-3.
    """
    graph = load_dataset(dataset)
    if method == "baseline":
        return online_search(graph, k, r, collect_contexts=collect_contexts)
    if method == "bound":
        return bound_search(graph, k, r, collect_contexts=collect_contexts)
    if method == "TSD":
        return tsd_index(dataset).top_r(k, r, collect_contexts=collect_contexts)
    if method == "GCT":
        return gct_index(dataset).top_r(k, r, collect_contexts=collect_contexts)
    if method == "hybrid":
        return hybrid_searcher(dataset).top_r(k, r,
                                              collect_contexts=collect_contexts)
    raise ValueError(f"unknown method {method!r}; expected one of {METHOD_NAMES}")


@dataclass(frozen=True)
class Measurement:
    """One (method, dataset, k, r) measurement for a table row."""

    method: str
    dataset: str
    k: int
    r: int
    seconds: float
    search_space: int
    top_scores: Tuple[int, ...]


def measure(method: str, dataset: str, k: int, r: int,
            collect_contexts: bool = False) -> Measurement:
    """Run and record one measurement (timing from the result itself)."""
    result = run_method(method, dataset, k, r,
                        collect_contexts=collect_contexts)
    return Measurement(
        method=method, dataset=dataset, k=k, r=r,
        seconds=result.elapsed_seconds or 0.0,
        search_space=result.search_space,
        top_scores=tuple(result.scores[:5]),
    )
