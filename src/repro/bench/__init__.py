"""Experiment harness: reporting and shared runners for benchmarks."""

from repro.bench.reporting import format_table, format_series, speedup
from repro.bench.runner import (
    METHOD_NAMES,
    Measurement,
    measure,
    run_method,
    tsd_index,
    gct_index,
    hybrid_searcher,
)

__all__ = [
    "format_table",
    "format_series",
    "speedup",
    "METHOD_NAMES",
    "Measurement",
    "measure",
    "run_method",
    "tsd_index",
    "gct_index",
    "hybrid_searcher",
]
