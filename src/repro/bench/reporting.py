"""Plain-text reporting for the experiment harness.

The paper's results are tables and line plots.  The harness renders
both as monospace text: :func:`format_table` for table rows and
:func:`format_series` for ``x y1 y2 ...`` plot data (the series a
plotting tool would consume directly).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _render(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}"
        return f"{cell:.5f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None) -> str:
    """Fixed-width table with a header rule, ready to print."""
    rendered = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(
            cell.rjust(widths[i]) if i else cell.ljust(widths[i])
            for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, x_label: str,
                  series: Mapping[str, Sequence[Cell]],
                  x_values: Sequence[Cell]) -> str:
    """Plot data as aligned columns: x plus one column per series.

    This is the textual equivalent of one paper figure panel.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[Cell] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, title=title)


def speedup(slow: float, fast: float) -> Optional[float]:
    """``slow / fast`` guarded against division by ~zero timings."""
    if fast <= 0:
        return None
    return slow / fast
