"""k-core decomposition substrate (Core-Div baseline support)."""

from repro.cores.kcore import (
    core_decomposition,
    k_core_subgraph,
    maximal_connected_k_cores,
    degeneracy_ordering,
)

__all__ = [
    "core_decomposition",
    "k_core_subgraph",
    "maximal_connected_k_cores",
    "degeneracy_ordering",
]
