"""k-core decomposition (substrate for the Core-Div baseline).

The paper's Core-Div competitor [Huang et al., VLDB J. 2015] models a
social context as a maximal connected ``k``-core: a maximal subgraph in
which every vertex has degree ≥ ``k``.  Core numbers are computed with
the standard Batagelj–Zaveršnik bucket peeling in ``O(n + m)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.graph.traversal import connected_components


def core_decomposition(graph: Graph) -> Dict[Vertex, int]:
    """Core number of every vertex (isolated vertices get 0).

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> core_decomposition(g)[0], core_decomposition(g)[3]
    (2, 1)
    """
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    bins: List[Set[Vertex]] = [set() for _ in range(max_degree + 1)]
    for v, d in degrees.items():
        bins[d].add(v)
    core: Dict[Vertex, int] = {}
    cursor = 0
    remaining = graph.num_vertices
    while remaining:
        while cursor <= max_degree and not bins[cursor]:
            cursor += 1
        v = bins[cursor].pop()
        core[v] = cursor
        remaining -= 1
        for u in graph.neighbors(v):
            if u in core:
                continue
            du = degrees[u]
            if du > cursor:
                bins[du].discard(u)
                degrees[u] = du - 1
                bins[du - 1].add(u)
        # Neighbour degrees drop by at most one, never below cursor - 1;
        # stepping back one bin keeps the scan exact.
        if cursor > 0:
            cursor -= 1
    return core


def k_core_subgraph(graph: Graph, k: int,
                    core_numbers: Optional[Dict[Vertex, int]] = None) -> Graph:
    """The ``k``-core: the subgraph induced by vertices with core ≥ ``k``."""
    if k < 0:
        raise InvalidParameterError(f"core threshold k must be >= 0, got {k}")
    if core_numbers is None:
        core_numbers = core_decomposition(graph)
    keep = [v for v, c in core_numbers.items() if c >= k]
    return graph.induced_subgraph(keep)


def maximal_connected_k_cores(graph: Graph, k: int,
                              core_numbers: Optional[Dict[Vertex, int]] = None
                              ) -> List[Set[Vertex]]:
    """Vertex sets of the connected components of the ``k``-core.

    These are the Core-Div social contexts when computed inside an
    ego-network.  For ``k >= 1`` isolated vertices never qualify; for
    ``k == 0`` every vertex (even isolated) forms or joins a component,
    matching the definition of the 0-core as the whole graph.
    """
    if core_numbers is None:
        core_numbers = core_decomposition(graph)
    keep = {v for v, c in core_numbers.items() if c >= k}
    return connected_components(graph, keep)


def degeneracy_ordering(graph: Graph) -> List[Vertex]:
    """Vertices in the order the core peeling removes them.

    The reverse of this order is a degeneracy ordering; exposed for the
    influence-maximisation heuristics which seed from low-peel-order
    (high-core) vertices.
    """
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return []
    max_degree = max(degrees.values())
    bins: List[Set[Vertex]] = [set() for _ in range(max_degree + 1)]
    for v, d in degrees.items():
        bins[d].add(v)
    order: List[Vertex] = []
    removed: Set[Vertex] = set()
    cursor = 0
    while len(order) < graph.num_vertices:
        while cursor <= max_degree and not bins[cursor]:
            cursor += 1
        v = bins[cursor].pop()
        order.append(v)
        removed.add(v)
        for u in graph.neighbors(v):
            if u in removed:
                continue
            du = degrees[u]
            if du > cursor:
                bins[du].discard(u)
                degrees[u] = du - 1
                bins[du - 1].add(u)
        if cursor > 0:
            cursor -= 1
    return order
