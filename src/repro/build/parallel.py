"""The shared-pass, multi-process index build pipeline.

:class:`ParallelIndexBuilder` replaces the per-vertex Algorithm 5 loop
with a three-stage pipeline:

1. **One shared triangle pass** — :func:`~repro.graph.egonet.
   all_ego_edge_id_lists` enumerates every triangle once (degree
   ordering) and emits each vertex's ego edge list on *compact integer
   ids* (insertion positions).  The per-vertex loop touches each
   triangle six times; Algorithm 7's global pass three times; this pass
   once.
2. **Sharded decomposition** — vertices are partitioned into
   size-balanced shards; each shard's ego-networks are truss-decomposed
   (bitmap peeling, with closed-form shortcuts for the tiny ego-networks
   that dominate sparse graphs) and their maximum spanning forests /
   GCT supernode structures assembled.  Shards run in-process
   (``shared-serial``) or across a ``multiprocessing`` pool
   (``parallel``); workers see only integer ids, so vertex labels are
   never pickled.
3. **Deterministic merge** — shard results are keyed by vertex id and
   reassembled in graph insertion order, translating ids back to
   labels.

Determinism is load-bearing: :func:`~repro.core.tsd.
canonical_kruskal_order` is a *total* order, so forests and GCT
structures are pure functions of each ego-network's weighted edge set —
independent of edge discovery order, shard assignment, and worker
scheduling.  A parallel build is therefore **byte-identical** (modulo
the wall-clock build profile) to the serial per-vertex build, and
``GCTIndex.compress(parallel TSD) == GCTIndex.build(graph)`` survives
(property-tested in ``tests/test_parallel_build.py``).

Why the results match the per-vertex loop even though the inputs look
different:

* The id pairs are the graph's canonical edge tuples translated to
  insertion positions, so decomposition keys coincide.
* Forest/GCT assembly here passes only *edge-touched* vertices where the
  serial paths pass every ego vertex.  Isolated ego vertices never join
  a forest edge and are skipped by GCT assembly (trussness 0 < 2), and
  filtering a vertex list preserves the relative positions the canonical
  order sorts by — so the assembled structures are identical.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.graph.egonet import (
    EgoIdEdge,
    all_ego_edge_id_lists,
    ego_edge_id_list,
)
from repro.truss.bitmap_decomposition import bitmap_truss_decomposition
from repro.core.tsd import BuildProfile, ForestEdge, TSDIndex
from repro.util.dsu import DisjointSet
from repro.core.gct import GCTIndex, Supernode, Superedge, assemble_gct
from repro.build.plan import (
    MODE_PARALLEL,
    MODE_PER_VERTEX,
    MODE_SERIAL,
    BuildPlan,
)

#: Forest on ids: ``(a, b, weight)`` triples, weight-descending.
IdForest = List[Tuple[int, int, int]]

#: Worker shard task: build kind + ``(vid, ego edges)`` items.
_ShardTask = Tuple[str, List[Tuple[int, List[EgoIdEdge]]]]


# ----------------------------------------------------------------------
# Per-ego decomposition on compact ids (runs in workers)
# ----------------------------------------------------------------------
def _ego_tau_items(edges: List[EgoIdEdge]
                   ) -> Tuple[List[int], List[Tuple[EgoIdEdge, int]]]:
    """``(touched vertices sorted, [(edge, trussness), ...])`` of one ego.

    Tiny ego-networks get closed forms: with at most three edges the
    only way any edge reaches trussness 3 is the three of them forming a
    triangle — otherwise the ego is triangle-free and every edge has
    trussness 2.  These cases dominate sparse power-law graphs, and
    skipping the bitmap machinery for them is a measured win.
    """
    ne = len(edges)
    touched = sorted({a for a, _ in edges} | {b for _, b in edges})
    if ne <= 3:
        if ne == 3 and len(touched) == 3:
            return touched, [(e, 3) for e in edges]
        return touched, [(e, 2) for e in edges]
    tau = bitmap_truss_decomposition(touched, edges)
    return touched, list(tau.items())


def _id_msf(touched: List[int],
            tau_items: List[Tuple[EgoIdEdge, int]]) -> IdForest:
    """:func:`~repro.core.tsd.maximum_spanning_forest`, specialised to
    compact ids.

    Ego edges here are ``(a, b)`` pairs with ``a < b`` and ids *are*
    insertion positions, so the canonical Kruskal key
    ``(-tau, internal, pu, pw)`` collapses to ``(-tau, internal, a, b)``
    — no position dict, no per-edge position lookups.  Output is
    tuple-identical to the generic implementation.
    """
    vt = dict.fromkeys(touched, 0)
    for (a, b), tau in tau_items:
        if tau > vt[a]:
            vt[a] = tau
        if tau > vt[b]:
            vt[b] = tau

    def key(item: Tuple[EgoIdEdge, int]):
        (a, b), tau = item
        return (-tau, 0 if vt[a] == tau and vt[b] == tau else 1, a, b)

    dsu: DisjointSet = DisjointSet(touched)
    forest: IdForest = []
    for (a, b), tau in sorted(tau_items, key=key):
        if dsu.union(a, b):
            forest.append((a, b, tau))
    return forest


def _tiny_forest(edges: List[EgoIdEdge]) -> Optional[IdForest]:
    """Closed-form maximum spanning forest for an ego of <= 3 edges.

    Replicates :func:`~repro.core.tsd.maximum_spanning_forest` exactly:
    all weights are equal (2, or 3 for a triangle) and every vertex is
    level-internal, so the canonical Kruskal order reduces to sorting
    the ``(a, b)`` id pairs — and with <= 3 edges the only possible
    cycle is the triangle itself, whose lexicographically last edge is
    the one Kruskal rejects.  Returns ``None`` for larger egos.
    """
    ne = len(edges)
    if ne > 3:
        return None
    ordered = sorted(edges)
    if ne == 3:
        verts = {ordered[0][0], ordered[0][1], ordered[1][0],
                 ordered[1][1], ordered[2][0], ordered[2][1]}
        if len(verts) == 3:  # the triangle: weight 3, third edge cycles
            return [(a, b, 3) for a, b in ordered[:2]]
    return [(a, b, 2) for a, b in ordered]


def _tsd_entry(edges: List[EgoIdEdge]
               ) -> Tuple[IdForest, float, float]:
    """One vertex's forest on ids, plus (decomposition, assembly) secs."""
    if not edges:
        return [], 0.0, 0.0
    t0 = time.perf_counter()
    tiny = _tiny_forest(edges)
    if tiny is not None:
        return tiny, time.perf_counter() - t0, 0.0
    touched, tau_items = _ego_tau_items(edges)
    t1 = time.perf_counter()
    forest = _id_msf(touched, tau_items)
    return forest, t1 - t0, time.perf_counter() - t1


def _gct_entry(edges: List[EgoIdEdge]
               ) -> Tuple[List[Supernode], List[Superedge], float, float]:
    """One vertex's GCT structure on ids, plus phase seconds."""
    if not edges:
        return [], [], 0.0, 0.0
    t0 = time.perf_counter()
    touched, tau_items = _ego_tau_items(edges)
    t1 = time.perf_counter()
    supernodes, superedges = assemble_gct(touched, tau_items)
    return supernodes, superedges, t1 - t0, time.perf_counter() - t1


def _both_entry(edges: List[EgoIdEdge]
                ) -> Tuple[IdForest, List[Supernode], List[Superedge],
                           float, float]:
    """Forest *and* GCT structure from one decomposition.

    The GCT side assembles from the forest — exactly
    :meth:`GCTIndex.compress` semantics, which PR 1 made structurally
    identical to a from-scratch build — so the shared decomposition is
    paid once and the forest's smaller edge set feeds assembly.
    """
    if not edges:
        return [], [], [], 0.0, 0.0
    t0 = time.perf_counter()
    forest = _tiny_forest(edges)
    if forest is None:
        touched, tau_items = _ego_tau_items(edges)
        forest = _id_msf(touched, tau_items)
    t1 = time.perf_counter()
    f_touched = sorted({a for a, _, _ in forest} | {b for _, b, _ in forest})
    supernodes, superedges = assemble_gct(
        f_touched, [((a, b), w) for a, b, w in forest])
    return forest, supernodes, superedges, t1 - t0, time.perf_counter() - t1


def _run_shard(task: _ShardTask) -> Tuple[List[Tuple], float, float]:
    """Decompose one shard (module-level so the pool can pickle it).

    Returns ``(entries, decomposition_seconds, assembly_seconds)`` where
    each entry is ``(vid, ...per-kind payload...)``.
    """
    kind, items = task
    entry_fn = {"tsd": _tsd_entry, "gct": _gct_entry,
                "both": _both_entry}[kind]
    out: List[Tuple] = []
    dec = asm = 0.0
    for vid, edges in items:
        result = entry_fn(edges)
        out.append((vid,) + result[:-2])
        dec += result[-2]
        asm += result[-1]
    return out, dec, asm


def _partition(vids: Sequence[int], buckets: Sequence[List[EgoIdEdge]],
               shards: int) -> List[List[int]]:
    """Deterministic size-balanced vertex shards (greedy by ego size).

    Ego-network sizes are heavy-tailed, so contiguous id ranges would
    leave most workers idle behind one hub-heavy shard.  Greedy
    longest-processing-time assignment balances within ~4/3 of optimal
    and depends only on the ego sizes — never on worker scheduling.
    """
    shards = max(1, min(shards, len(vids)))
    loads = [0] * shards
    assignment: List[List[int]] = [[] for _ in range(shards)]
    for vid in sorted(vids, key=lambda i: (-len(buckets[i]), i)):
        target = min(range(shards), key=lambda s: (loads[s], s))
        assignment[target].append(vid)
        loads[target] += len(buckets[vid]) + 1
    return [sorted(shard) for shard in assignment]


def _pool_context():
    """Fork where it is safe, forkserver where it is not.

    Fork is the cheap choice (workers inherit the interpreter, nothing
    re-imports) but forking a *multi-threaded* process can copy locks in
    a held state and deadlock the child — and the update path runs
    inside the threaded HTTP server.  So fork is only used when this
    process is single-threaded; otherwise forkserver (a clean,
    thread-free template process) or the platform default.  Shard tasks
    are plain ints + module-level functions, so every start method can
    pickle them.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context()


def _dispatch_shards(plan: BuildPlan, kind: str,
                     buckets, vids: Sequence[int]
                     ) -> List[Tuple[List[Tuple], float, float]]:
    """Run ``(vid, buckets[vid])`` items through ``kind``, sharded per
    ``plan`` — the one pool dispatch both full builds and batch repairs
    share.  ``buckets`` is anything indexable by vid."""
    if plan.mode != MODE_PARALLEL or len(vids) <= 1:
        return [_run_shard((kind, [(vid, buckets[vid]) for vid in vids]))]
    shards = _partition(vids, buckets, plan.jobs)
    tasks: List[_ShardTask] = [
        (kind, [(vid, buckets[vid]) for vid in shard])
        for shard in shards if shard]
    if len(tasks) <= 1:
        return [_run_shard(task) for task in tasks]
    if multiprocessing.current_process().daemon:
        # Daemonic processes may not have children (multiprocessing
        # raises mid-spawn, after partial pool setup) — don't try.
        return [_run_shard(task) for task in tasks]
    try:
        with _pool_context().Pool(processes=len(tasks)) as pool:
            return pool.map(_run_shard, tasks)
    except (OSError, RuntimeError, ImportError, AssertionError):
        # No pool to be had here — spawn bootstrap restrictions
        # (unguarded __main__), missing shared memory, interpreter
        # shutdown...  Entry points default to auto-planning, so a
        # build that would previously just run serially must degrade,
        # not crash: the in-process path is byte-identical, just serial.
        return [_run_shard(task) for task in tasks]


class ParallelIndexBuilder:
    """Shared-pass index construction with an optional worker pool.

    Parameters
    ----------
    graph:
        The graph to index.
    jobs:
        Worker request forwarded to :meth:`BuildPlan.decide` (``0`` =
        auto).  Ignored when ``plan`` is given.
    plan:
        An explicit :class:`BuildPlan`, overriding the heuristic — the
        equivalence tests force ``parallel`` on tiny graphs this way.

    The one extraction pass is cached, so :meth:`build_tsd` followed by
    :meth:`build_gct` pays for it once; :meth:`build_both` additionally
    shares the decomposition between the two indexes.

    Examples
    --------
    >>> from repro.datasets.paper import figure1_graph
    >>> index = ParallelIndexBuilder(figure1_graph(), jobs=1).build_tsd()
    >>> index.score("v", 4)
    3
    """

    def __init__(self, graph: Graph, jobs: Optional[int] = 0,
                 plan: Optional[BuildPlan] = None) -> None:
        if plan is None:
            plan = BuildPlan.decide(graph.num_edges, jobs)
        if plan.mode == MODE_PER_VERTEX:
            raise InvalidParameterError(
                "per-vertex builds bypass the pipeline; call "
                "TSDIndex.build(graph) / GCTIndex.build(graph) directly")
        self._graph = graph
        self.plan = plan
        self._labels: Optional[List[Vertex]] = None
        self._buckets: Optional[List[List[EgoIdEdge]]] = None
        self._extraction_seconds = 0.0

    # ------------------------------------------------------------------
    # Stage 1: the shared pass (cached across build_* calls)
    # ------------------------------------------------------------------
    def _extract(self) -> Tuple[List[Vertex], List[List[EgoIdEdge]]]:
        if self._buckets is None:
            start = time.perf_counter()
            self._labels, self._buckets = all_ego_edge_id_lists(self._graph)
            self._extraction_seconds = time.perf_counter() - start
        return self._labels, self._buckets

    # ------------------------------------------------------------------
    # Stage 2: sharded decomposition
    # ------------------------------------------------------------------
    def _decompose(self, kind: str) -> Tuple[Dict[int, Tuple], float, float]:
        """Run every vertex through ``kind``; returns (by-vid, dec, asm)."""
        labels, buckets = self._extract()
        outputs = _dispatch_shards(self.plan, kind, buckets,
                                   list(range(len(labels))))
        by_vid: Dict[int, Tuple] = {}
        dec = asm = 0.0
        for entries, shard_dec, shard_asm in outputs:
            dec += shard_dec
            asm += shard_asm
            for entry in entries:
                by_vid[entry[0]] = entry[1:]
        return by_vid, dec, asm

    def _profile(self, dec: float, asm: float) -> BuildProfile:
        """Phase timings: extraction is parent wall-clock; decomposition
        and assembly are summed across shards (CPU seconds — for a
        parallel build they can exceed the build's wall-clock)."""
        return BuildProfile(extraction_seconds=self._extraction_seconds,
                            decomposition_seconds=dec,
                            assembly_seconds=asm)

    # ------------------------------------------------------------------
    # Stage 3: merge, back onto labels
    # ------------------------------------------------------------------
    def _label_forests(self, by_vid: Dict[int, Tuple]
                       ) -> Dict[Vertex, List[ForestEdge]]:
        labels = self._labels
        return {
            labels[vid]: [(labels[a], labels[b], w)
                          for a, b, w in by_vid[vid][0]]
            for vid in range(len(labels))
        }

    def _label_gct(self, by_vid: Dict[int, Tuple], slot: int
                   ) -> Tuple[Dict[Vertex, List[Supernode]],
                              Dict[Vertex, List[Superedge]]]:
        labels = self._labels
        supernodes: Dict[Vertex, List[Supernode]] = {}
        superedges: Dict[Vertex, List[Superedge]] = {}
        for vid in range(len(labels)):
            entry = by_vid[vid]
            supernodes[labels[vid]] = [
                (tau, tuple(labels[m] for m in members))
                for tau, members in entry[slot]]
            # Superedges index the supernode list — no ids to translate.
            superedges[labels[vid]] = list(entry[slot + 1])
        return supernodes, superedges

    def build_tsd(self) -> TSDIndex:
        """The TSD-index, byte-identical to :meth:`TSDIndex.build`."""
        by_vid, dec, asm = self._decompose("tsd")
        return TSDIndex(self._label_forests(by_vid), list(self._labels),
                        self._profile(dec, asm))

    def build_gct(self) -> GCTIndex:
        """The GCT-index, byte-identical to :meth:`GCTIndex.build`."""
        by_vid, dec, asm = self._decompose("gct")
        supernodes, superedges = self._label_gct(by_vid, 0)
        return GCTIndex(supernodes, superedges, list(self._labels),
                        self._profile(dec, asm))

    def build_both(self) -> Tuple[TSDIndex, GCTIndex]:
        """TSD and GCT from ONE extraction and ONE decomposition.

        The cold-start pair every service snapshot needs.  Matches the
        serial ``TSDIndex.build`` + ``GCTIndex.compress`` path exactly —
        including the GCT index carrying no build profile, as a
        compressed index never does.
        """
        by_vid, dec, asm = self._decompose("both")
        tsd = TSDIndex(self._label_forests(by_vid), list(self._labels),
                       self._profile(dec, asm))
        supernodes, superedges = self._label_gct(by_vid, 1)
        return tsd, GCTIndex(supernodes, superedges, list(self._labels))


# ----------------------------------------------------------------------
# Functional entry points
# ----------------------------------------------------------------------
def build_tsd_index(graph: Graph, jobs: Optional[int] = 0,
                    plan: Optional[BuildPlan] = None) -> TSDIndex:
    """Build a TSD-index under a :class:`BuildPlan` (``jobs=0`` auto).

    ``jobs=None`` (or an explicit per-vertex plan) falls back to the
    legacy loop — this is what :meth:`TSDIndex.build` delegates to.
    """
    if plan is None:
        plan = BuildPlan.decide(graph.num_edges, jobs)
    if plan.mode == MODE_PER_VERTEX:
        return TSDIndex.build(graph)
    return ParallelIndexBuilder(graph, plan=plan).build_tsd()


def build_gct_index(graph: Graph, jobs: Optional[int] = 0,
                    plan: Optional[BuildPlan] = None) -> GCTIndex:
    """Build a GCT-index under a :class:`BuildPlan` (``jobs=0`` auto)."""
    if plan is None:
        plan = BuildPlan.decide(graph.num_edges, jobs)
    if plan.mode == MODE_PER_VERTEX:
        return GCTIndex.build(graph)
    return ParallelIndexBuilder(graph, plan=plan).build_gct()


def build_indexes(graph: Graph, jobs: Optional[int] = 0,
                  plan: Optional[BuildPlan] = None
                  ) -> Tuple[TSDIndex, GCTIndex]:
    """Build the (TSD, GCT) pair a serving snapshot needs, sharing one
    extraction and one decomposition across both indexes."""
    if plan is None:
        plan = BuildPlan.decide(graph.num_edges, jobs)
    if plan.mode == MODE_PER_VERTEX:
        tsd = TSDIndex.build(graph)
        return tsd, GCTIndex.compress(tsd)
    return ParallelIndexBuilder(graph, plan=plan).build_both()


def repair_forests(graph: Graph, vertices: Sequence[Vertex],
                   jobs: Optional[int] = None,
                   plan: Optional[BuildPlan] = None, *,
                   labels: Optional[List[Vertex]] = None,
                   ids: Optional[Dict[Vertex, int]] = None
                   ) -> Dict[Vertex, List[ForestEdge]]:
    """Rebuild the TSD forests of ``vertices`` only (the update path).

    Extraction here is per-vertex (a global pass would charge the whole
    graph for a handful of dirty ego-networks), but decomposition uses
    the same compact-id pipeline as full builds and fans out to the pool
    for large affected sets — the batch counterpart of
    :mod:`repro.service.updates`' one-ego-at-a-time repair.  Outputs are
    byte-identical to the serial ``ego_network`` +
    ``truss_decomposition`` + ``maximum_spanning_forest`` chain.

    ``jobs=None`` here means *serial* (repairs are usually tiny);
    ``jobs=0`` auto-plans from the affected ego volume.  ``labels`` /
    ``ids`` (the graph's insertion order and its inverse) may be passed
    by callers that already hold them — the update path does — so a
    small batch on a huge graph does not pay an O(|V|) remap here.
    """
    if labels is None:
        labels = list(graph.vertices())
    if ids is None:
        ids = {v: i for i, v in enumerate(labels)}
    targets = [v for v in vertices if v in graph]
    ego_lists = {v: ego_edge_id_list(graph, ids, v) for v in targets}
    if plan is None:
        if jobs is None:
            plan = BuildPlan(MODE_SERIAL, 1, "serial repair (jobs=None)")
        else:
            # Plan on the actual repair volume, not the graph size.
            plan = BuildPlan.decide(sum(map(len, ego_lists.values())), jobs)
    vid_of = {ids[v]: v for v in targets}
    buckets: Dict[int, List[EgoIdEdge]] = {
        ids[v]: ego_lists[v] for v in targets}
    outputs = _dispatch_shards(plan, "tsd", buckets, sorted(buckets))
    forests: Dict[Vertex, List[ForestEdge]] = {}
    for entries, _, _ in outputs:
        for vid, forest in entries:
            forests[vid_of[vid]] = [(labels[a], labels[b], w)
                                    for a, b, w in forest]
    return forests
