"""Index construction pipeline: one triangle pass, N workers, byte-identical.

Public surface of the build subsystem:

* :class:`BuildPlan` / :func:`~repro.build.plan.available_cpus` — the
  serial-vs-parallel heuristic (clamped to hardware, small graphs stay
  serial).
* :class:`ParallelIndexBuilder` — the staged pipeline (shared triangle
  pass → sharded decomposition → deterministic merge).
* :func:`build_tsd_index` / :func:`build_gct_index` /
  :func:`build_indexes` — one-call entry points used by
  ``TSDIndex.build(jobs=)``, ``GCTIndex.build(jobs=)`` and
  ``Snapshot.build(jobs=)``.
* :func:`repair_forests` — the affected-vertex batch repair the update
  path fans out.

Every strategy produces indexes whose payloads are byte-identical
(modulo the timing-only build profile) to the legacy serial build — the
canonical ranking contract and the ``compress``-equals-``build``
invariant do not bend for parallelism.
"""

from repro.build.plan import (
    DEFAULT_SERIAL_THRESHOLD_EDGES,
    MODE_PARALLEL,
    MODE_PER_VERTEX,
    MODE_SERIAL,
    BuildPlan,
    available_cpus,
)
from repro.build.parallel import (
    ParallelIndexBuilder,
    build_gct_index,
    build_indexes,
    build_tsd_index,
    repair_forests,
)

__all__ = [
    "BuildPlan",
    "ParallelIndexBuilder",
    "available_cpus",
    "build_gct_index",
    "build_indexes",
    "build_tsd_index",
    "repair_forests",
    "DEFAULT_SERIAL_THRESHOLD_EDGES",
    "MODE_PARALLEL",
    "MODE_PER_VERTEX",
    "MODE_SERIAL",
]
