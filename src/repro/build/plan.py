"""The :class:`BuildPlan` heuristic: how should this index be built?

Index construction has three execution strategies with very different
fixed costs:

* ``per-vertex`` — the legacy Algorithm 5 loop (:meth:`TSDIndex.build`
  with ``jobs=None``): each ego-network extracted independently, every
  triangle touched six times.  No setup cost at all; also the reference
  the Table 4 comparison is defined against.
* ``shared-serial`` — ONE degree-ordered triangle pass feeds every
  ego-network (each triangle touched once), then ego decomposition and
  forest assembly run in-process.  Small constant setup (an id mapping),
  measured 2–3x faster than per-vertex on the Figure 12 graphs.
* ``parallel`` — the same shared pass, but vertices are sharded across a
  ``multiprocessing`` pool; each worker decomposes its shard on compact
  integer ids.  Pays process spawn + payload pickling, so it only wins
  when the decomposition work dwarfs that fixed cost *and* spare cores
  exist.

:meth:`BuildPlan.decide` encodes the choice: requested workers are
clamped to the hardware budget (oversubscribing a core never helps
wall-clock), and graphs below a size threshold stay serial — process
spawn costs must not regress small builds.  Every plan carries a
human-readable reason, in the spirit of the engine's
:class:`~repro.engine.planner.PlanDecision`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import InvalidParameterError

#: Execution strategies (see module docstring).
MODE_PER_VERTEX = "per-vertex"
MODE_SERIAL = "shared-serial"
MODE_PARALLEL = "parallel"

#: Below this many graph edges a pool is never worth spawning: the whole
#: build finishes in tens of milliseconds, comparable to fork+pickle.
DEFAULT_SERIAL_THRESHOLD_EDGES = 20_000


def available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class BuildPlan:
    """One build verdict: the strategy, the worker count, and why.

    ``jobs`` is the number of worker processes (1 for both serial
    modes).  Construct directly to force a strategy — the equivalence
    tests do exactly that to exercise the pool on small graphs — or let
    :meth:`decide` pick.

    Examples
    --------
    >>> BuildPlan.decide(100, jobs=None).mode
    'per-vertex'
    >>> BuildPlan.decide(100, jobs=1).mode
    'shared-serial'
    >>> BuildPlan.decide(100_000, jobs=4, cpu_budget=8).jobs
    4
    >>> BuildPlan.decide(100, jobs=4, cpu_budget=8).mode  # tiny graph
    'shared-serial'
    """

    mode: str
    jobs: int
    reason: str

    def __post_init__(self) -> None:
        if self.mode not in (MODE_PER_VERTEX, MODE_SERIAL, MODE_PARALLEL):
            raise InvalidParameterError(
                f"unknown build mode {self.mode!r}; expected one of "
                f"{(MODE_PER_VERTEX, MODE_SERIAL, MODE_PARALLEL)}")
        if self.jobs < 1:
            raise InvalidParameterError(
                f"a build plan needs jobs >= 1, got {self.jobs}")
        if self.mode != MODE_PARALLEL and self.jobs != 1:
            raise InvalidParameterError(
                f"{self.mode} builds are single-process; got jobs={self.jobs}")

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.mode} x{self.jobs}: {self.reason}"

    @classmethod
    def decide(cls, num_edges: int, jobs: "int | None" = 0, *,
               cpu_budget: "int | None" = None,
               serial_threshold_edges: int = DEFAULT_SERIAL_THRESHOLD_EDGES,
               ) -> "BuildPlan":
        """Pick a strategy for a graph with ``num_edges`` edges.

        Parameters
        ----------
        jobs:
            ``None`` — the legacy per-vertex build (backwards-compatible
            default of every ``build`` classmethod).  ``0`` — auto: one
            worker per available CPU, downgraded to serial when the
            graph is small or only one CPU is available.  ``1`` — force
            the serial shared-pass build.  ``>= 2`` — request that many
            workers, clamped to the CPU budget and still subject to the
            small-graph downgrade.
        cpu_budget:
            Override the detected CPU count (tests; capacity planning).
        serial_threshold_edges:
            Graphs with fewer edges never spawn a pool.
        """
        if jobs is None:
            return cls(MODE_PER_VERTEX, 1,
                       "jobs=None — the backwards-compatible per-vertex "
                       "Algorithm 5 loop")
        if jobs < 0:
            raise InvalidParameterError(f"jobs must be >= 0, got {jobs}")
        if jobs == 1:
            return cls(MODE_SERIAL, 1,
                       "jobs=1 — one shared triangle pass, in-process "
                       "decomposition")
        budget = cpu_budget if cpu_budget is not None else available_cpus()
        requested = budget if jobs == 0 else min(jobs, budget)
        if num_edges < serial_threshold_edges:
            return cls(MODE_SERIAL, 1,
                       f"small graph ({num_edges} < "
                       f"{serial_threshold_edges} edges) — process spawn "
                       "would cost more than it saves")
        if requested <= 1:
            return cls(MODE_SERIAL, 1,
                       f"only {budget} CPU(s) available — extra worker "
                       "processes cannot improve wall-clock")
        return cls(MODE_PARALLEL, requested,
                   f"{num_edges} edges across {requested} worker "
                   f"process(es) (requested {jobs or 'auto'}, "
                   f"budget {budget})")
