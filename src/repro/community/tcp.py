"""TCP-index and index-based k-truss community search (Section 8.2).

The Triangle Connectivity Preserving index [Huang et al., SIGMOD'14]
keeps, for every vertex ``x``, a maximum spanning forest of the weighted
graph on ``N(x)`` where each triangle ``△xyz`` contributes the edge
``(y, z)`` with weight ``min(τ(xy), τ(xz), τ(yz))`` — *global*
trussnesses, in contrast to the TSD-index's local ego trussnesses (the
exact distinction the paper's Figure 18 illustrates).

Key property: ``y`` and ``z`` are connected in ``TCP_x`` through edges
of weight ≥ k **iff** the edges ``(x, y)`` and ``(x, z)`` belong to the
same k-truss community.  Community search walks this property across
vertices without ever re-listing triangles.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.egonet import iter_ego_edge_lists
from repro.truss.decomposition import truss_decomposition
from repro.community.reference import Community
from repro.core.tsd import maximum_spanning_forest, ForestEdge
from repro.util.dsu import DisjointSet


class TCPIndex:
    """Per-vertex maximum spanning forests over triangle weights.

    Examples
    --------
    >>> from repro.datasets.paper import figure18_graph
    >>> index = TCPIndex.build(figure18_graph())
    >>> sorted(w for _, _, w in index.forest("q1"))
    [4, 4, 4, 4, 4]
    """

    def __init__(self, forests: Dict[Vertex, List[ForestEdge]],
                 edge_trussness: Dict[Edge, int],
                 graph: Graph) -> None:
        self._forests = forests
        self._trussness = edge_trussness
        self._graph = graph
        # Adjacency view of each forest for weight-filtered BFS.
        self._adjacency: Dict[Vertex, Dict[Vertex, List[Tuple[Vertex, int]]]] = {}
        for x, edges in forests.items():
            adj: Dict[Vertex, List[Tuple[Vertex, int]]] = {}
            for u, w, weight in edges:
                adj.setdefault(u, []).append((w, weight))
                adj.setdefault(w, []).append((u, weight))
            self._adjacency[x] = adj

    @classmethod
    def build(cls, graph: Graph) -> "TCPIndex":
        """Construct TCP forests from one global truss decomposition."""
        trussness = truss_decomposition(graph)
        canonical = graph.canonical_edge
        forests: Dict[Vertex, List[ForestEdge]] = {}
        for x, ego_edges in iter_ego_edge_lists(graph):
            weighted = []
            for u, w in ego_edges:
                weight = min(trussness[canonical(x, u)],
                             trussness[canonical(x, w)],
                             trussness[canonical(u, w)])
                weighted.append(((u, w), weight))
            forests[x] = maximum_spanning_forest(graph.neighbors(x), weighted)
        return cls(forests, trussness, graph)

    def forest(self, x: Vertex) -> List[ForestEdge]:
        """The stored forest ``TCP_x`` (weight-descending edge list)."""
        return list(self._forests[x])

    def edge_trussness(self, u: Vertex, v: Vertex) -> int:
        """Global trussness of edge ``(u, v)``."""
        return self._trussness[self._graph.canonical_edge(u, v)]

    def _reachable(self, x: Vertex, start: Vertex, k: int) -> Set[Vertex]:
        """Vertices reachable from ``start`` in ``TCP_x`` via weight ≥ k."""
        adj = self._adjacency.get(x, {})
        if start not in adj:
            return {start}
        seen = {start}
        queue = deque([start])
        while queue:
            y = queue.popleft()
            for z, weight in adj.get(y, ()):
                if weight >= k and z not in seen:
                    seen.add(z)
                    queue.append(z)
        return seen

    def communities(self, query: Vertex, k: int) -> List[Community]:
        """All k-truss communities containing ``query`` (index-driven).

        Starting from each unvisited incident edge of trussness ≥ k, the
        search expands edge-by-edge: processing edge ``(x, y)`` marks as
        community members all edges ``(x, z)`` with ``z`` weight-≥k
        reachable from ``y`` in ``TCP_x``, and symmetrically in
        ``TCP_y`` — triangle connectivity without triangle listing.
        """
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        canonical = self._graph.canonical_edge
        processed: Set[Edge] = set()
        communities: List[Community] = []
        for u in sorted(self._graph.neighbors(query),
                        key=self._graph.vertex_index):
            seed = canonical(query, u)
            if self._trussness.get(seed, 0) < k or seed in processed:
                continue
            members: Set[Edge] = set()
            queue = deque([seed])
            processed.add(seed)
            while queue:
                edge = queue.popleft()
                members.add(edge)
                x, y = edge
                for a, b in ((x, y), (y, x)):
                    for z in self._reachable(a, b, k):
                        if z == b:
                            continue
                        nxt = canonical(a, z)
                        if nxt not in processed:
                            processed.add(nxt)
                            queue.append(nxt)
            vertices = {a for a, _ in members} | {b for _, b in members}
            communities.append(Community(
                k=k, vertices=frozenset(vertices), edges=frozenset(members)))
        return communities
