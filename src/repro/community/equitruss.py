"""Equi-Truss: the compressed k-truss community index (Section 8.2).

Akbas & Zhao [PVLDB'17] compress the TCP idea into a summary graph:

* a **supernode** is an equivalence class of edges with the same
  trussness ``k`` that are k-triangle-connected;
* a **superedge** links two supernodes whose edges share a triangle,
  weighted by the highest level at which that triangle connects them
  (the triangle's minimum edge trussness).

A k-truss community is then a connected component of the summary graph
restricted to supernodes with trussness ≥ k and superedges with weight
≥ k — community search never touches the original graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.triangles import iter_triangles
from repro.truss.decomposition import truss_decomposition
from repro.community.reference import Community
from repro.util.dsu import DisjointSet


@dataclass(frozen=True)
class SupernodeInfo:
    """One equivalence class of the Equi-Truss summary."""

    trussness: int
    edges: FrozenSet[Edge]

    @property
    def vertices(self) -> FrozenSet[Vertex]:
        return frozenset({u for u, _ in self.edges} | {v for _, v in self.edges})


class EquiTrussIndex:
    """The Equi-Truss summary graph of ``graph``.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
    >>> index = EquiTrussIndex.build(g)
    >>> [sn.trussness for sn in index.supernodes]
    [3]
    """

    def __init__(self, supernodes: List[SupernodeInfo],
                 superedges: Dict[Tuple[int, int], int],
                 edge_to_supernode: Dict[Edge, int],
                 graph: Graph) -> None:
        self.supernodes = supernodes
        #: ``(i, j) -> weight`` with ``i < j``; weight is the highest
        #: triangle level connecting the two supernodes.
        self.superedges = superedges
        self._edge_to_supernode = edge_to_supernode
        self._graph = graph
        self._incident: Dict[int, List[Tuple[int, int]]] = {}
        for (i, j), weight in superedges.items():
            self._incident.setdefault(i, []).append((j, weight))
            self._incident.setdefault(j, []).append((i, weight))

    @classmethod
    def build(cls, graph: Graph) -> "EquiTrussIndex":
        """Single descending sweep over trussness levels.

        At level ``k`` the edges of trussness ``k`` enter a union-find;
        every triangle with minimum trussness ``k`` unions its three
        edges.  The components at the end of level ``k`` define the
        supernodes of that level; triangles then translate into
        superedges between distinct supernodes.
        """
        trussness = truss_decomposition(graph)
        canonical = graph.canonical_edge
        triangles: List[Tuple[Edge, Edge, Edge, int]] = []
        for u, v, w in iter_triangles(graph):
            e1, e2, e3 = canonical(u, v), canonical(u, w), canonical(v, w)
            k_min = min(trussness[e1], trussness[e2], trussness[e3])
            triangles.append((e1, e2, e3, k_min))

        by_level_edges: Dict[int, List[Edge]] = {}
        for edge, tau in trussness.items():
            by_level_edges.setdefault(tau, []).append(edge)
        by_level_triangles: Dict[int, List[Tuple[Edge, Edge, Edge]]] = {}
        for e1, e2, e3, k_min in triangles:
            by_level_triangles.setdefault(k_min, []).append((e1, e2, e3))

        dsu: DisjointSet = DisjointSet()
        edge_to_supernode: Dict[Edge, int] = {}
        supernodes: List[SupernodeInfo] = []
        levels = sorted(set(by_level_edges) | set(by_level_triangles),
                        reverse=True)
        for k in levels:
            for edge in by_level_edges.get(k, ()):
                dsu.add(edge)
            for e1, e2, e3 in by_level_triangles.get(k, ()):
                dsu.union(e1, e2)
                dsu.union(e1, e3)
            # Snapshot: edges of trussness k grouped by their level-k root.
            grouped: Dict[Edge, List[Edge]] = {}
            for edge in by_level_edges.get(k, ()):
                grouped.setdefault(dsu.find(edge), []).append(edge)
            for members in grouped.values():
                sid = len(supernodes)
                supernodes.append(SupernodeInfo(
                    trussness=k, edges=frozenset(members)))
                for edge in members:
                    edge_to_supernode[edge] = sid

        superedges: Dict[Tuple[int, int], int] = {}
        for e1, e2, e3, k_min in triangles:
            sids = {edge_to_supernode[e] for e in (e1, e2, e3)}
            sid_list = sorted(sids)
            for a in range(len(sid_list)):
                for b in range(a + 1, len(sid_list)):
                    key = (sid_list[a], sid_list[b])
                    if superedges.get(key, 0) < k_min:
                        superedges[key] = k_min
        return cls(supernodes, superedges, edge_to_supernode, graph)

    @property
    def num_supernodes(self) -> int:
        return len(self.supernodes)

    @property
    def num_superedges(self) -> int:
        return len(self.superedges)

    def supernode_of(self, u: Vertex, v: Vertex) -> int:
        """Supernode id of the edge ``(u, v)``."""
        return self._edge_to_supernode[self._graph.canonical_edge(u, v)]

    def communities(self, query: Vertex, k: int) -> List[Community]:
        """All k-truss communities containing ``query``, from the summary.

        BFS over supernodes with trussness ≥ k through superedges of
        weight ≥ k, seeded by the supernodes of the query's incident
        edges.
        """
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        canonical = self._graph.canonical_edge
        seeds: List[int] = []
        seen_seed: Set[int] = set()
        for u in sorted(self._graph.neighbors(query),
                        key=self._graph.vertex_index):
            edge = canonical(query, u)
            sid = self._edge_to_supernode.get(edge)
            if sid is None or self.supernodes[sid].trussness < k:
                continue
            if sid not in seen_seed:
                seen_seed.add(sid)
                seeds.append(sid)
        visited: Set[int] = set()
        communities: List[Community] = []
        for seed in seeds:
            if seed in visited:
                continue
            component: List[int] = []
            queue = deque([seed])
            visited.add(seed)
            while queue:
                sid = queue.popleft()
                component.append(sid)
                for other, weight in self._incident.get(sid, ()):
                    if (weight >= k and other not in visited
                            and self.supernodes[other].trussness >= k):
                        visited.add(other)
                        queue.append(other)
            edges: Set[Edge] = set()
            for sid in component:
                edges.update(self.supernodes[sid].edges)
            vertices = {a for a, _ in edges} | {b for _, b in edges}
            communities.append(Community(
                k=k, vertices=frozenset(vertices), edges=frozenset(edges)))
        return communities
