"""Reference (brute-force) k-truss community computation.

A *k-truss community* [Huang et al., SIGMOD'14] is a maximal set of
edges of the k-truss that are *triangle connected*: any two edges are
linked by a chain of triangles whose edges all have trussness ≥ k.
This module computes communities directly from the definition — the
oracle against which the TCP and Equi-Truss indexes are tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.triangles import iter_triangles
from repro.truss.decomposition import truss_decomposition
from repro.util.dsu import DisjointSet


@dataclass(frozen=True)
class Community:
    """One k-truss community: its vertices and edges."""

    k: int
    vertices: FrozenSet[Vertex]
    edges: FrozenSet[Edge]

    def __len__(self) -> int:
        return len(self.vertices)


def truss_communities(graph: Graph, k: int,
                      query: Optional[Vertex] = None,
                      edge_trussness: Optional[Dict[Edge, int]] = None
                      ) -> List[Community]:
    """All k-truss communities (optionally only those containing ``query``).

    Union-find over the edges with trussness ≥ ``k``; every triangle
    whose three edges qualify unions them.  Components of this relation
    are exactly the triangle-connected communities.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    canonical = graph.canonical_edge
    qualifying: Set[Edge] = {e for e, tau in edge_trussness.items() if tau >= k}
    dsu: DisjointSet = DisjointSet(qualifying)
    for u, v, w in iter_triangles(graph):
        e1, e2, e3 = canonical(u, v), canonical(u, w), canonical(v, w)
        if e1 in qualifying and e2 in qualifying and e3 in qualifying:
            dsu.union(e1, e2)
            dsu.union(e1, e3)
    grouped: Dict[Edge, Set[Edge]] = {}
    for e in qualifying:
        grouped.setdefault(dsu.find(e), set()).add(e)
    communities: List[Community] = []
    for edges in grouped.values():
        vertices = {u for u, _ in edges} | {v for _, v in edges}
        if query is not None and query not in vertices:
            continue
        communities.append(Community(
            k=k, vertices=frozenset(vertices), edges=frozenset(edges)))
    return communities
