"""k-truss community search indexes (related work, paper Section 8.2)."""

from repro.community.reference import Community, truss_communities
from repro.community.tcp import TCPIndex
from repro.community.equitruss import EquiTrussIndex, SupernodeInfo

__all__ = [
    "Community",
    "truss_communities",
    "TCPIndex",
    "EquiTrussIndex",
    "SupernodeInfo",
]
