"""Array-based truss decomposition over the CSR representation.

Edges become dense integers, supports live in an ``array('l')``, the
bucket queue is a list of int lists, and triangle updates walk sorted
adjacency with two pointers — the memory-lean formulation the paper's
C++ code uses.

Output is identical to :func:`repro.truss.decomposition.
truss_decomposition` (property tested).  Performance caveat (measured
by the ablation bench): in CPython this is *slower* than the hash-set
peeler, whose intersections run in C; the value of this module is the
O(1)-per-edge memory footprint and serving as an independent
implementation for cross-validation.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, List, Tuple

from repro.graph.graph import Graph, Edge
from repro.graph.csr import CSRGraph


def csr_truss_decomposition(csr: CSRGraph) -> Dict[Edge, int]:
    """Trussness of every edge, keyed like the hash implementation.

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
    >>> set(csr_truss_decomposition(CSRGraph.from_graph(g)).values())
    {3}
    """
    n = csr.num_vertices
    indptr, indices = csr.indptr, csr.indices

    # Dense edge ids: for each adjacency slot, the id of its edge
    # (each edge owns two slots, one per direction).
    edge_u = array("l")
    edge_v = array("l")
    slot_edge = array("l", [0] * len(indices))
    edge_id_by_pair: Dict[Tuple[int, int], int] = {}
    for i in range(n):
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if i < j:
                eid = len(edge_u)
                edge_u.append(i)
                edge_v.append(j)
                edge_id_by_pair[(i, j)] = eid
                slot_edge[pos] = eid
            else:
                slot_edge[pos] = edge_id_by_pair[(j, i)]
    num_edges = len(edge_u)
    if num_edges == 0:
        return {}

    # Supports via two-pointer merges (each triangle adds 1 to 3 edges).
    support = array("l", [0] * num_edges)
    for eid in range(num_edges):
        support[eid] = csr.common_neighbor_count(edge_u[eid], edge_v[eid])

    alive = bytearray([1] * num_edges)
    max_support = max(support)
    bins: List[List[int]] = [[] for _ in range(max_support + 1)]
    for eid in range(num_edges):
        bins[support[eid]].append(eid)

    trussness = array("l", [0] * num_edges)
    remaining = num_edges
    k = 2
    while remaining:
        # Peel all edges with current support <= k - 2.
        progressed = True
        while progressed:
            progressed = False
            for s in range(0, min(k - 1, max_support + 1)):
                bucket = bins[s]
                while bucket:
                    eid = bucket.pop()
                    if not alive[eid] or support[eid] != s:
                        continue  # stale entry
                    alive[eid] = 0
                    trussness[eid] = k
                    remaining -= 1
                    progressed = True
                    i, j = edge_u[eid], edge_v[eid]
                    # Walk common neighbours; decrement both wing edges
                    # if still alive.
                    a, a_end = indptr[i], indptr[i + 1]
                    b, b_end = indptr[j], indptr[j + 1]
                    while a < a_end and b < b_end:
                        x, y = indices[a], indices[b]
                        if x == y:
                            e1 = slot_edge[a]
                            e2 = slot_edge[b]
                            if alive[e1] and alive[e2]:
                                for other in (e1, e2):
                                    s_other = support[other]
                                    if s_other > k - 2:
                                        support[other] = s_other - 1
                                        bins[s_other - 1].append(other)
                            a += 1
                            b += 1
                        elif x < y:
                            a += 1
                        else:
                            b += 1
        k += 1

    labels = csr.labels
    return {
        (labels[edge_u[eid]], labels[edge_v[eid]]): trussness[eid]
        for eid in range(num_edges)
    }


def csr_truss_decomposition_graph(graph: Graph) -> Dict[Edge, int]:
    """Freeze ``graph`` and decompose; canonical-edge-keyed like the
    hash implementation (dense ids follow insertion order, so the key
    tuples coincide)."""
    return csr_truss_decomposition(CSRGraph.from_graph(graph))
