"""Bitmap-based truss decomposition (paper Section 6.2, Algorithm 7).

The GCT approach decomposes every *ego-network* — small, dense local
graphs — where hash-set intersection is dominated by constant factors.
This module re-implements the Algorithm 1 peeling on top of
:class:`~repro.graph.bitmap.BitmapAdjacency`: supports are popcounts of
ANDed bit rows, and removing an edge clears two bits.

The public entry point works on raw ``(vertices, edges)`` pairs because
GCT-index construction consumes ego-networks as edge lists straight from
the one-shot global triangle listing, never materialising
:class:`~repro.graph.graph.Graph` objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.graph.bitmap import BitmapAdjacency
from repro.graph.graph import Graph, Vertex, Edge


def bitmap_truss_decomposition(vertices: Sequence[Vertex],
                               edges: Iterable[Edge]) -> Dict[Edge, int]:
    """Trussness of every edge of the local graph ``(vertices, edges)``.

    Semantically identical to
    :func:`repro.truss.decomposition.truss_decomposition`; the keys of
    the returned dict are the edge tuples *as given* in ``edges``.

    Examples
    --------
    >>> tau = bitmap_truss_decomposition(
    ...     "abc", [("a", "b"), ("b", "c"), ("a", "c")])
    >>> sorted(tau.values())
    [3, 3, 3]
    """
    edge_list = list(edges)
    if not edge_list:
        return {}
    bitmap = BitmapAdjacency.from_edges(vertices, edge_list)
    local = bitmap.local_id
    # Work on local-id pairs; map back to the caller's tuples at the end.
    id_edges: List[Tuple[int, int]] = []
    original: Dict[Tuple[int, int], Edge] = {}
    for u, v in edge_list:
        iu, iv = local(u), local(v)
        key = (iu, iv) if iu < iv else (iv, iu)
        id_edges.append(key)
        original[key] = (u, v)

    supports: Dict[Tuple[int, int], int] = {
        key: bitmap.support_by_id(*key) for key in id_edges
    }
    max_support = max(supports.values())
    bins = [set() for _ in range(max_support + 1)]
    for key, s in supports.items():
        bins[s].add(key)

    trussness_by_id: Dict[Tuple[int, int], int] = {}
    remaining = len(id_edges)
    k = 2
    cursor = 0
    while remaining:
        while True:
            while cursor <= max_support and not bins[cursor]:
                cursor += 1
            if cursor > max_support or cursor > k - 2:
                break
            key = bins[cursor].pop()
            iu, iv = key
            trussness_by_id[key] = k
            remaining -= 1
            # Common neighbours *before* clearing the edge's bits.
            witnesses = list(bitmap.common_neighbor_ids(iu, iv))
            bitmap.remove_edge_by_id(iu, iv)
            for iw in witnesses:
                for a, b in ((iu, iw), (iv, iw)):
                    other = (a, b) if a < b else (b, a)
                    s = supports[other]
                    if s > k - 2:
                        bins[s].discard(other)
                        supports[other] = s - 1
                        bins[s - 1].add(other)
                        if s - 1 < cursor:
                            cursor = s - 1
        k += 1
    return {original[key]: tau for key, tau in trussness_by_id.items()}


def bitmap_truss_decomposition_graph(graph: Graph) -> Dict[Edge, int]:
    """Bitmap decomposition of a :class:`Graph` (canonical edge keys).

    Convenience wrapper used by the ablation bench that compares hash
    peeling with bitmap peeling on identical inputs.
    """
    vertices = list(graph.vertices())
    return bitmap_truss_decomposition(vertices, graph.edges())
