"""Incremental global truss maintenance under edge updates.

Supports the dynamic-graphs discussion of the paper (Section 5.3 cites
the k-truss updating theory of [22], [42]).  The maintainer keeps the
edge trussness of a mutable graph consistent across insertions and
deletions with *component-scoped* recomputation:

* trussness never changes across connected components, so an update to
  edge ``(u, v)`` can only affect the component(s) containing ``u`` and
  ``v``;
* the maintainer tracks dirty components and re-peels only them, lazily
  at the next query.

This is deliberately simpler than the fully incremental algorithms of
Huang et al. [SIGMOD'14] — it trades their fine-grained update sets for
an easy-to-verify invariant (every query answer equals a from-scratch
decomposition; the property tests enforce exactly that) while still
avoiding whole-graph work on multi-component graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.errors import GraphError
from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.traversal import bfs_order
from repro.truss.decomposition import truss_decomposition


class DynamicTrussIndex:
    """Edge trussness of a mutable graph, maintained lazily.

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
    >>> dyn = DynamicTrussIndex(g)
    >>> dyn.trussness(0, 1)
    3
    >>> dyn.insert_edge(2, 3)
    >>> dyn.trussness(2, 3)
    2
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph.copy()
        self._trussness: Dict[Edge, int] = truss_decomposition(self._graph)
        self._dirty: Set[Vertex] = set()
        self.recomputed_edges = 0  # cumulative maintenance-work counter

    @property
    def graph(self) -> Graph:
        """Read-only view of the maintained graph (do not mutate)."""
        return self._graph

    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert ``(u, v)``; affected components become dirty."""
        if self._graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) already present")
        self._graph.add_edge(u, v)
        self._dirty.update((u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete ``(u, v)``; affected components become dirty."""
        self._graph.remove_edge(u, v)
        self._trussness.pop(self._graph.canonical_edge(u, v), None)
        self._dirty.update((u, v))

    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Re-peel every dirty component (lazy, at query time)."""
        if not self._dirty:
            return
        refreshed: Set[Vertex] = set()
        for seed in list(self._dirty):
            if seed in refreshed or seed not in self._graph:
                continue
            component = set(bfs_order(self._graph, seed))
            refreshed.update(component)
            subgraph = self._graph.induced_subgraph(component)
            local = truss_decomposition(subgraph)
            self.recomputed_edges += subgraph.num_edges
            # Stale entries for this component are fully overwritten;
            # keys are canonical in both graphs because induced
            # subgraphs preserve insertion order.
            for edge in list(self._trussness):
                if edge[0] in component or edge[1] in component:
                    del self._trussness[edge]
            self._trussness.update(local)
        self._dirty.clear()

    def trussness(self, u: Vertex, v: Vertex) -> int:
        """Current trussness of edge ``(u, v)``."""
        self._refresh()
        return self._trussness[self._graph.canonical_edge(u, v)]

    def all_trussness(self) -> Dict[Edge, int]:
        """Current trussness of every edge."""
        self._refresh()
        return dict(self._trussness)
