"""Truss decomposition by support peeling (paper Algorithm 1).

Truss decomposition computes, for every edge ``e``, its *trussness*
``τ(e)``: the largest ``k`` such that a connected ``k``-truss contains
``e`` (paper Definition 4).  The algorithm of Wang & Cheng [VLDB'12]:

1. compute the support of every edge (triangle count through it);
2. bucket edges by support (bin sort);
3. for ``k = 2, 3, ...``: repeatedly remove an edge with current support
   ``≤ k - 2``, assign it trussness ``k``, and decrement the supports of
   the ≤ 2·sup edges that shared a triangle with it.

The bucket queue gives the classic ``O(ρ m)`` bound (plus the triangle
listing), matching the paper's complexity analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.triangles import edge_supports


def truss_decomposition(graph: Graph) -> Dict[Edge, int]:
    """Trussness of every edge, keyed by canonical edge tuple.

    Implements Algorithm 1 with a bucket queue.  Edges in no triangle
    receive trussness 2 (they form a 2-truss but no 3-truss).

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2), (0, 2)])  # a triangle
    >>> set(truss_decomposition(g).values())
    {3}
    """
    if graph.num_edges == 0:
        return {}
    supports = edge_supports(graph)
    canonical = graph.canonical_edge
    # Mutable adjacency copy: peeling deletes edges as it classifies them.
    adjacency: Dict[Vertex, Set[Vertex]] = {
        v: set(graph.neighbors(v)) for v in graph.vertices()
    }
    max_support = max(supports.values())
    bins = [set() for _ in range(max_support + 1)]
    for edge, s in supports.items():
        bins[s].add(edge)

    trussness: Dict[Edge, int] = {}
    remaining = graph.num_edges
    k = 2
    cursor = 0  # lowest possibly-non-empty bin
    while remaining:
        # Peel every edge whose current support is at most k - 2.
        while True:
            while cursor <= max_support and not bins[cursor]:
                cursor += 1
            if cursor > max_support or cursor > k - 2:
                break
            edge = bins[cursor].pop()
            u, v = edge
            trussness[edge] = k
            remaining -= 1
            adjacency[u].discard(v)
            adjacency[v].discard(u)
            # Each surviving common neighbour w loses the triangle uvw:
            # the supports of (u, w) and (v, w) drop by one.
            nu, nv = adjacency[u], adjacency[v]
            if len(nu) > len(nv):
                nu, nv = nv, nu
            for w in nu:
                if w not in nv:
                    continue
                for other in (canonical(u, w), canonical(v, w)):
                    s = supports[other]
                    if s > k - 2:
                        bins[s].discard(other)
                        supports[other] = s - 1
                        bins[s - 1].add(other)
                        if s - 1 < cursor:
                            cursor = s - 1
        k += 1
    return trussness


def vertex_trussness(graph: Graph,
                     edge_trussness: Optional[Dict[Edge, int]] = None
                     ) -> Dict[Vertex, int]:
    """Trussness of every vertex: the maximum trussness of incident edges.

    Matches the paper's definition ``τ(v) = max_{H ∋ v} τ(H)``.  Isolated
    vertices get 0 (they belong to no k-truss for any ``k ≥ 2``).
    """
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    result: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    for (u, v), tau in edge_trussness.items():
        if tau > result[u]:
            result[u] = tau
        if tau > result[v]:
            result[v] = tau
    return result


def max_trussness(graph: Graph,
                  edge_trussness: Optional[Dict[Edge, int]] = None) -> int:
    """``τ*_G = max_e τ(e)`` (Table 1 column); 0 on an edgeless graph."""
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    return max(edge_trussness.values(), default=0)


def trussness_histogram(edge_trussness: Dict[Edge, int]) -> Dict[int, int]:
    """Number of edges per trussness value (paper Figure 3 series)."""
    histogram: Dict[int, int] = {}
    for tau in edge_trussness.values():
        histogram[tau] = histogram.get(tau, 0) + 1
    return dict(sorted(histogram.items()))


def subgraph_trussness(graph: Graph) -> int:
    """``τ(H) = min_e (sup_H(e) + 2)`` over this graph's own edges.

    The trussness of a subgraph per Definition 4; returns 2 for an
    edgeless-triangle graph (min support 0) and 0 for an empty graph.
    """
    if graph.num_edges == 0:
        return 0
    supports = edge_supports(graph)
    return min(supports.values()) + 2
