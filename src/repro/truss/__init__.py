"""Truss decomposition and k-truss extraction (paper Sections 2–3, 6.2).

Public surface:

* :func:`~repro.truss.decomposition.truss_decomposition` — Algorithm 1.
* :func:`~repro.truss.decomposition.vertex_trussness`,
  :func:`~repro.truss.decomposition.max_trussness`,
  :func:`~repro.truss.decomposition.trussness_histogram`.
* :func:`~repro.truss.ktruss.k_truss_subgraph`,
  :func:`~repro.truss.ktruss.maximal_connected_k_trusses`.
* :func:`~repro.truss.bitmap_decomposition.bitmap_truss_decomposition` —
  the GCT bitmap variant (Section 6.2).
* :class:`~repro.truss.dynamic.DynamicTrussIndex` — incremental
  maintenance extension (Section 5.3 remarks).
"""

from repro.truss.decomposition import (
    truss_decomposition,
    vertex_trussness,
    max_trussness,
    trussness_histogram,
    subgraph_trussness,
)
from repro.truss.ktruss import (
    k_truss_edges,
    k_truss_subgraph,
    maximal_connected_k_trusses,
    count_maximal_connected_k_trusses,
    is_k_truss,
)
from repro.truss.bitmap_decomposition import (
    bitmap_truss_decomposition,
    bitmap_truss_decomposition_graph,
)
from repro.truss.dynamic import DynamicTrussIndex
from repro.truss.csr_decomposition import (
    csr_truss_decomposition,
    csr_truss_decomposition_graph,
)

__all__ = [
    "DynamicTrussIndex",
    "csr_truss_decomposition",
    "csr_truss_decomposition_graph",
    "truss_decomposition",
    "vertex_trussness",
    "max_trussness",
    "trussness_histogram",
    "subgraph_trussness",
    "k_truss_edges",
    "k_truss_subgraph",
    "maximal_connected_k_trusses",
    "count_maximal_connected_k_trusses",
    "is_k_truss",
    "bitmap_truss_decomposition",
    "bitmap_truss_decomposition_graph",
]
