"""k-truss extraction and maximal connected k-trusses (paper Definition 2).

Given the edge trussnesses produced by
:func:`~repro.truss.decomposition.truss_decomposition`, the ``k``-truss of
a graph is the union of all edges with trussness at least ``k``; each of
its connected components is a *maximal connected k-truss* — the paper's
social context when computed inside an ego-network.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.traversal import components_of_edges, count_components_of_edges
from repro.graph.triangles import edge_supports
from repro.truss.decomposition import truss_decomposition
from repro.errors import InvalidParameterError


def _require_valid_k(k: int) -> None:
    if k < 2:
        raise InvalidParameterError(f"trussness threshold k must be >= 2, got {k}")


def k_truss_edges(edge_trussness: Dict[Edge, int], k: int) -> Iterator[Edge]:
    """Edges of the ``k``-truss: those with trussness ≥ ``k``."""
    _require_valid_k(k)
    return (edge for edge, tau in edge_trussness.items() if tau >= k)


def k_truss_subgraph(graph: Graph, k: int,
                     edge_trussness: Optional[Dict[Edge, int]] = None) -> Graph:
    """The ``k``-truss of ``graph`` as a standalone graph.

    Contains exactly the edges with trussness ≥ ``k`` and their
    endpoints; may be disconnected (the paper treats each component as a
    separate social context).
    """
    _require_valid_k(k)
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    return graph.edge_subgraph(k_truss_edges(edge_trussness, k))


def maximal_connected_k_trusses(graph: Graph, k: int,
                                edge_trussness: Optional[Dict[Edge, int]] = None
                                ) -> List[Set[Vertex]]:
    """Vertex sets of the connected components of the ``k``-truss.

    Inside an ego-network these are exactly the social contexts
    ``SC(v)`` of Definition 2.
    """
    _require_valid_k(k)
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    return components_of_edges(k_truss_edges(edge_trussness, k))


def count_maximal_connected_k_trusses(graph: Graph, k: int,
                                      edge_trussness: Optional[Dict[Edge, int]] = None
                                      ) -> int:
    """Number of maximal connected ``k``-trusses (``score`` when local)."""
    _require_valid_k(k)
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    return count_components_of_edges(k_truss_edges(edge_trussness, k))


def is_k_truss(graph: Graph, k: int) -> bool:
    """Whether *every* edge of ``graph`` has support ≥ ``k - 2``.

    Validation helper (used heavily in tests): a graph is its own
    ``k``-truss iff this predicate holds.
    """
    _require_valid_k(k)
    if graph.num_edges == 0:
        return True
    return min(edge_supports(graph).values()) >= k - 2
