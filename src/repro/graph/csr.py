"""Immutable CSR (compressed sparse row) graph representation.

:class:`CSRGraph` stores vertices as dense integers ``0..n-1`` and
adjacency as two flat arrays (``indptr``/``indices``) with sorted
neighbour rows — the layout the paper's C++ implementation uses.  It is
the memory-lean representation (a few bytes per edge versus hash-set
overhead) and the natural interchange format for numeric tooling.

An honest performance note, quantified by the ablation bench: in
**CPython** the hash-set path usually *wins* on speed, because
``set & set`` runs in C while two-pointer merges run in interpreted
bytecode.  The C++ intuition ("arrays beat hashing") does not transfer;
CSR here buys memory compactness and deterministic layout, not time.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.graph import Graph, Vertex


class CSRGraph:
    """Immutable, integer-indexed, sorted-adjacency graph.

    Build with :meth:`from_graph`; vertex labels are preserved in
    ``labels`` (dense id → label) and ``ids`` (label → dense id).

    Examples
    --------
    >>> g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
    >>> csr = CSRGraph.from_graph(g)
    >>> csr.num_vertices, csr.num_edges
    (3, 3)
    >>> csr.degree_of(csr.ids["b"])
    2
    """

    __slots__ = ("indptr", "indices", "labels", "ids")

    def __init__(self, indptr: Sequence[int], indices: Sequence[int],
                 labels: Sequence[Vertex]) -> None:
        self.indptr = array("l", indptr)
        self.indices = array("l", indices)
        self.labels: List[Vertex] = list(labels)
        self.ids: Dict[Vertex, int] = {v: i for i, v in enumerate(self.labels)}
        if len(self.ids) != len(self.labels):
            raise GraphError("duplicate vertex labels")
        if len(self.indptr) != len(self.labels) + 1:
            raise GraphError("indptr length must be n + 1")

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Freeze a :class:`Graph`; dense ids follow insertion order.

        Rows are accumulated in one pass over the edges — each label is
        hashed once per edge endpoint — and then int-sorted, instead of
        re-hashing every adjacency set through a per-vertex
        ``sorted(generator)``.
        """
        labels = list(graph.vertices())
        ids = {v: i for i, v in enumerate(labels)}
        rows: List[List[int]] = [[] for _ in labels]
        for u, v in graph.edges():
            iu, iv = ids[u], ids[v]
            rows[iu].append(iv)
            rows[iv].append(iu)
        indptr = [0]
        indices: List[int] = []
        for row in rows:
            row.sort()
            indices.extend(row)
            indptr.append(len(indices))
        return cls(indptr, indices, labels)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def degree_of(self, i: int) -> int:
        """Degree of the vertex with dense id ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors_of(self, i: int) -> "array":
        """Sorted dense-id neighbour slice of vertex ``i``."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def has_edge_ids(self, i: int, j: int) -> bool:
        """Edge test via binary search in the sorted row."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        pos = bisect_left(self.indices, j, lo, hi)
        return pos < hi and self.indices[pos] == j

    def id_of(self, label: Vertex) -> int:
        try:
            return self.ids[label]
        except KeyError:
            raise VertexNotFoundError(label) from None

    def iter_edge_ids(self) -> Iterator[Tuple[int, int]]:
        """Each edge once, as ``(i, j)`` with ``i < j``."""
        indptr, indices = self.indptr, self.indices
        for i in range(len(self.labels)):
            for pos in range(indptr[i], indptr[i + 1]):
                j = indices[pos]
                if i < j:
                    yield (i, j)

    def common_neighbor_count(self, i: int, j: int) -> int:
        """``|N(i) ∩ N(j)|`` by a two-pointer merge of sorted rows."""
        indices = self.indices
        a, a_end = self.indptr[i], self.indptr[i + 1]
        b, b_end = self.indptr[j], self.indptr[j + 1]
        count = 0
        while a < a_end and b < b_end:
            x, y = indices[a], indices[b]
            if x == y:
                count += 1
                a += 1
                b += 1
            elif x < y:
                a += 1
            else:
                b += 1
        return count

    def common_neighbors_ids(self, i: int, j: int) -> List[int]:
        """``N(i) ∩ N(j)`` as a list of dense ids (two-pointer merge)."""
        indices = self.indices
        a, a_end = self.indptr[i], self.indptr[i + 1]
        b, b_end = self.indptr[j], self.indptr[j + 1]
        out: List[int] = []
        while a < a_end and b < b_end:
            x, y = indices[a], indices[b]
            if x == y:
                out.append(x)
                a += 1
                b += 1
            elif x < y:
                a += 1
            else:
                b += 1
        return out

    def triangle_count(self) -> int:
        """Total triangles via forward-oriented two-pointer merges."""
        total = 0
        for i, j in self.iter_edge_ids():
            # Count common neighbours greater than j: orienting by id
            # guarantees each triangle is counted exactly once.
            for w in self.common_neighbors_ids(i, j):
                if w > j:
                    total += 1
        return total

    def to_graph(self) -> Graph:
        """Thaw back into a mutable :class:`Graph` (labels preserved)."""
        g = Graph(vertices=self.labels)
        for i, j in self.iter_edge_ids():
            g.add_edge(self.labels[i], self.labels[j])
        return g
