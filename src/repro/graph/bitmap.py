"""Bitmap adjacency for dense local graphs (paper Section 6.2).

The GCT approach accelerates ego-network truss decomposition with
bitmaps: each ego-network vertex gets a sequential local id, adjacency is
a bit vector, and the support of an edge ``(x, y)`` is the popcount of
``Bits_x AND Bits_y``.

Python's arbitrary-precision integers are a natural bitmap: ``|`` sets a
bit, ``& ... .bit_count()`` intersects and counts in C.  For the dense,
small ego-networks this is substantially faster than hash-set
intersection, mirroring the paper's hash-vs-bitmap finding.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.graph import Vertex, Edge


class BitmapAdjacency:
    """Mutable bitmap adjacency over a fixed vertex universe.

    Parameters
    ----------
    vertices:
        The vertex labels of the local graph, assigned local ids
        ``0..L-1`` in the given order (paper Algorithm 7 line 7).

    Examples
    --------
    >>> bm = BitmapAdjacency.from_edges(
    ...     ["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")])
    >>> bm.support("a", "b")
    1
    """

    __slots__ = ("_ids", "_labels", "_bits", "_num_edges")

    def __init__(self, vertices: Sequence[Vertex]) -> None:
        self._labels: List[Vertex] = list(vertices)
        self._ids: Dict[Vertex, int] = {v: i for i, v in enumerate(self._labels)}
        if len(self._ids) != len(self._labels):
            raise GraphError("duplicate vertex labels in bitmap universe")
        self._bits: List[int] = [0] * len(self._labels)
        self._num_edges = 0

    @classmethod
    def from_edges(cls, vertices: Sequence[Vertex],
                   edges: Iterable[Edge]) -> "BitmapAdjacency":
        """Build from a vertex universe and an edge list."""
        bm = cls(vertices)
        for u, v in edges:
            bm.add_edge(u, v)
        return bm

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def local_id(self, v: Vertex) -> int:
        """The sequential local id of ``v`` (Algorithm 7 line 7)."""
        return self._ids[v]

    def label(self, local_id: int) -> Vertex:
        """Inverse of :meth:`local_id`."""
        return self._labels[local_id]

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Set the two adjacency bits for ``{u, v}``; ``True`` if new."""
        iu, iv = self._ids[u], self._ids[v]
        if iu == iv:
            raise GraphError(f"self-loop on {u!r}")
        if (self._bits[iu] >> iv) & 1:
            return False
        self._bits[iu] |= 1 << iv
        self._bits[iv] |= 1 << iu
        self._num_edges += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Clear the adjacency bits for ``{u, v}`` (peeling step)."""
        self.remove_edge_by_id(self._ids[u], self._ids[v])

    def remove_edge_by_id(self, iu: int, iv: int) -> None:
        """Clear adjacency bits via local ids, avoiding label lookups."""
        mask_u, mask_v = 1 << iv, 1 << iu
        if not self._bits[iu] & mask_u:
            return
        self._bits[iu] &= ~mask_u
        self._bits[iv] &= ~mask_v
        self._num_edges -= 1

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return bool((self._bits[self._ids[u]] >> self._ids[v]) & 1)

    def degree(self, v: Vertex) -> int:
        return self._bits[self._ids[v]].bit_count()

    def support(self, u: Vertex, v: Vertex) -> int:
        """``sup(u, v) = popcount(Bits_u AND Bits_v)`` — the bitmap trick."""
        return (self._bits[self._ids[u]] & self._bits[self._ids[v]]).bit_count()

    def support_by_id(self, iu: int, iv: int) -> int:
        """Support via local ids, avoiding label lookups on hot paths."""
        return (self._bits[iu] & self._bits[iv]).bit_count()

    def common_neighbors(self, u: Vertex, v: Vertex) -> Iterator[Vertex]:
        """Iterate the labels of the common neighbours of ``u`` and ``v``."""
        inter = self._bits[self._ids[u]] & self._bits[self._ids[v]]
        labels = self._labels
        while inter:
            low = inter & -inter
            yield labels[low.bit_length() - 1]
            inter ^= low

    def common_neighbor_ids(self, iu: int, iv: int) -> Iterator[int]:
        """Iterate local ids of common neighbours (hot-path variant)."""
        inter = self._bits[iu] & self._bits[iv]
        while inter:
            low = inter & -inter
            yield low.bit_length() - 1
            inter ^= low

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate the neighbour labels of ``v``."""
        bits = self._bits[self._ids[v]]
        labels = self._labels
        while bits:
            low = bits & -bits
            yield labels[low.bit_length() - 1]
            bits ^= low

    def edges(self) -> Iterator[Edge]:
        """Iterate each edge once, ordered by local ids."""
        labels = self._labels
        for iu, bits in enumerate(self._bits):
            higher = bits >> (iu + 1)
            offset = iu + 1
            while higher:
                low = higher & -higher
                yield (labels[iu], labels[offset + low.bit_length() - 1])
                higher ^= low
