"""Ego-network extraction (paper Definition 1).

The ego-network ``G_N(v)`` of a vertex ``v`` is the subgraph induced by
``N(v)`` — the vertex's neighbours, *excluding* ``v`` itself.  Its edges
``(u, w)`` correspond one-to-one with the triangles ``△vuw`` through
``v``, which is why ego-network extraction is fundamentally a triangle
problem.

Three extraction strategies are provided — the two the paper evaluates
plus the compact-id pass the build pipeline uses:

* :func:`ego_network` — per-vertex extraction, as used by the online
  algorithms and TSD-index construction (Algorithm 5).  Each triangle
  through ``v`` is discovered by intersecting adjacency sets.
* :func:`all_ego_networks` — the GCT approach (Algorithm 7 lines 1–4):
  one global pass over the edges; each edge ``(u, v)`` is appended to the
  ego-network of every common neighbour ``w``.  Each triangle is touched
  exactly three times — half the six touches of repeated per-vertex
  extraction — which is the speedup Table 4 measures.
* :func:`all_ego_edge_id_lists` — one degree-ordered triangle
  enumeration (each triangle touched *once*) emitting edge lists on
  compact integer ids; the extraction phase of :mod:`repro.build`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.graph.graph import Graph, Vertex, Edge

#: One ego edge on compact integer ids: ``(i, j)`` with ``i < j``, where
#: ids are positions in the graph's vertex insertion order.
EgoIdEdge = Tuple[int, int]


def _iter_ego_edges(graph: Graph, v: Vertex) -> Iterator[Edge]:
    """Yield each edge of ``G_N(v)`` once, as ``(u, w)`` with
    ``index(u) < index(w)`` — the canonical orientation.

    The one neighbour-intersection loop (iterate the smaller of ``N(u)``
    and ``N(v)``, dedup by insertion index) behind :func:`ego_network`,
    :func:`ego_edge_count` and :func:`ego_edge_id_list`.
    """
    nbrs = graph.neighbors(v)
    index = graph.vertex_index
    for u in nbrs:
        iu = index(u)
        cands = graph.neighbors(u)
        if len(cands) > len(nbrs):
            for w in nbrs:
                if index(w) > iu and w in cands:
                    yield (u, w)
        else:
            for w in cands:
                if w in nbrs and index(w) > iu:
                    yield (u, w)


def ego_network(graph: Graph, v: Vertex) -> Graph:
    """The ego-network ``G_N(v)`` as a standalone :class:`Graph`.

    Every neighbour of ``v`` appears as a vertex (possibly isolated);
    edges are the pairs of neighbours adjacent in ``graph``.
    """
    ego = Graph(vertices=sorted(graph.neighbors(v),
                                key=graph.vertex_index))
    for u, w in _iter_ego_edges(graph, v):
        ego.add_edge(u, w)
    return ego


def ego_edge_count(graph: Graph, v: Vertex) -> int:
    """``m_v``: the number of edges in ``G_N(v)`` (triangles through ``v``)."""
    return sum(1 for _ in _iter_ego_edges(graph, v))


def all_ego_networks(graph: Graph) -> Dict[Vertex, Graph]:
    """Extract every ego-network with one global triangle pass.

    Implements Algorithm 7 lines 1–4: for each edge ``(u, v)`` and each
    common neighbour ``w``, edge ``(u, v)`` belongs to ``G_N(w)``.  Each
    triangle is enumerated three times in total (once per edge) instead
    of the six touches incurred by per-vertex extraction.

    Returns a dict mapping every vertex to its ego-network ``Graph``;
    vertices whose neighbourhood is edgeless map to an ego-network of
    isolated vertices.

    Memory is ``O(3T)`` edge slots, so this is the right choice when all
    ego-networks are needed anyway (index construction), and the wrong
    choice for a single query vertex.
    """
    egos: Dict[Vertex, Graph] = {
        v: Graph(vertices=sorted(graph.neighbors(v), key=graph.vertex_index))
        for v in graph.vertices()
    }
    for u, v in graph.edges():
        nu, nv = graph.neighbors(u), graph.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        for w in nu:
            if w in nv:
                egos[w].add_edge(u, v)
    return egos


def all_ego_edge_id_lists(graph: Graph
                          ) -> Tuple[List[Vertex], List[List[EgoIdEdge]]]:
    """Every ego edge list on compact integer ids, one triangle touch.

    The sharpest extraction strategy of the three: triangles are
    enumerated via the degree ordering (each triangle found *once*, the
    ``O(ρ m)`` bound of :mod:`repro.graph.triangles`), and each triangle
    ``△uvw`` contributes one edge to each of the three ego-networks.
    :func:`iter_ego_edge_lists` touches each triangle three times (once
    per edge) and :func:`ego_network` six; this pass touches it once.

    Returns ``(labels, buckets)`` where ``labels`` is the vertex list in
    insertion order and ``buckets[i]`` holds the edges of
    ``G_N(labels[i])`` as ``(a, b)`` id pairs with ``a < b`` — ids are
    insertion positions, so the pairs are exactly the graph's canonical
    edge tuples translated to ids.  Compact ids make the result cheap to
    ship to worker processes (no label pickling) and are what the
    :mod:`repro.build` pipeline shards across its pool.
    """
    labels = list(graph.vertices())
    n = len(labels)
    ids = {v: i for i, v in enumerate(labels)}
    adj: List[set] = [set() for _ in range(n)]
    for i, v in enumerate(labels):
        adj[i] = {ids[u] for u in graph.neighbors(v)}
    # Degree ordering on ids (degree, id) — id order equals insertion
    # order, so this is exactly Graph.degree_order on dense ids.
    order = sorted(range(n), key=lambda i: (len(adj[i]), i))
    rank = [0] * n
    for r, i in enumerate(order):
        rank[i] = r
    forward: List[set] = [set() for _ in range(n)]
    for i in range(n):
        ri = rank[i]
        forward[i] = {j for j in adj[i] if rank[j] > ri}
    buckets: List[List[EgoIdEdge]] = [[] for _ in range(n)]
    for u in range(n):
        fu = forward[u]
        bu = buckets[u]
        for v in fu:
            common = fu & forward[v]  # C-speed set intersection
            if common:
                bv = buckets[v]
                for w in common:
                    # Triangle {u, v, w}: edge (v, w) lies in G_N(u), etc.
                    bu.append((v, w) if v < w else (w, v))
                    bv.append((u, w) if u < w else (w, u))
                    buckets[w].append((u, v) if u < v else (v, u))
    return labels, buckets


def ego_edge_id_list(graph: Graph, ids: Dict[Vertex, int],
                     v: Vertex) -> List[EgoIdEdge]:
    """The edges of ``G_N(v)`` as compact-id pairs, for one vertex.

    Per-vertex counterpart of :func:`all_ego_edge_id_lists` (same output
    encoding, intersection-based like :func:`ego_network`); used by the
    update path, which repairs a handful of affected ego-networks and
    must not pay for a global pass.  ``ids`` maps every vertex to its
    insertion position — positions are monotone in insertion index, so
    the canonical ``(u, w)`` orientation translates to ``id(u) < id(w)``.
    """
    return [(ids[u], ids[w]) for u, w in _iter_ego_edges(graph, v)]


def iter_ego_edge_lists(graph: Graph) -> Iterator[Tuple[Vertex, List[Edge]]]:
    """Yield ``(v, edges of G_N(v))`` using the global one-shot pass.

    A lighter-weight variant of :func:`all_ego_networks` that avoids
    building :class:`Graph` objects; used by GCT-index construction where
    the bitmap decomposition consumes raw edge lists.
    """
    buckets: Dict[Vertex, List[Edge]] = {v: [] for v in graph.vertices()}
    for u, v in graph.edges():
        nu, nv = graph.neighbors(u), graph.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        for w in nu:
            if w in nv:
                buckets[w].append((u, v))
    for v in graph.vertices():
        yield v, buckets[v]
