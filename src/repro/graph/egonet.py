"""Ego-network extraction (paper Definition 1).

The ego-network ``G_N(v)`` of a vertex ``v`` is the subgraph induced by
``N(v)`` — the vertex's neighbours, *excluding* ``v`` itself.  Its edges
``(u, w)`` correspond one-to-one with the triangles ``△vuw`` through
``v``, which is why ego-network extraction is fundamentally a triangle
problem.

Two extraction strategies are provided, matching the two approaches the
paper evaluates:

* :func:`ego_network` — per-vertex extraction, as used by the online
  algorithms and TSD-index construction (Algorithm 5).  Each triangle
  through ``v`` is discovered by intersecting adjacency sets.
* :func:`all_ego_networks` — the GCT approach (Algorithm 7 lines 1–4):
  one global pass over the edges; each edge ``(u, v)`` is appended to the
  ego-network of every common neighbour ``w``.  Each triangle is touched
  exactly three times — half the six touches of repeated per-vertex
  extraction — which is the speedup Table 4 measures.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.graph.graph import Graph, Vertex, Edge


def ego_network(graph: Graph, v: Vertex) -> Graph:
    """The ego-network ``G_N(v)`` as a standalone :class:`Graph`.

    Every neighbour of ``v`` appears as a vertex (possibly isolated);
    edges are the pairs of neighbours adjacent in ``graph``.
    """
    nbrs = graph.neighbors(v)
    ordered = sorted(nbrs, key=graph.vertex_index)
    ego = Graph(vertices=ordered)
    index = graph.vertex_index
    for u in ordered:
        iu = index(u)
        # Iterate the smaller of N(u) and N(v) for the intersection.
        cands = graph.neighbors(u)
        if len(cands) > len(nbrs):
            for w in nbrs:
                if index(w) > iu and w in cands:
                    ego.add_edge(u, w)
        else:
            for w in cands:
                if w in nbrs and index(w) > iu:
                    ego.add_edge(u, w)
    return ego


def ego_edge_count(graph: Graph, v: Vertex) -> int:
    """``m_v``: the number of edges in ``G_N(v)`` (triangles through ``v``)."""
    nbrs = graph.neighbors(v)
    index = graph.vertex_index
    count = 0
    for u in nbrs:
        iu = index(u)
        cands = graph.neighbors(u)
        if len(cands) > len(nbrs):
            count += sum(1 for w in nbrs if index(w) > iu and w in cands)
        else:
            count += sum(1 for w in cands if w in nbrs and index(w) > iu)
    return count


def all_ego_networks(graph: Graph) -> Dict[Vertex, Graph]:
    """Extract every ego-network with one global triangle pass.

    Implements Algorithm 7 lines 1–4: for each edge ``(u, v)`` and each
    common neighbour ``w``, edge ``(u, v)`` belongs to ``G_N(w)``.  Each
    triangle is enumerated three times in total (once per edge) instead
    of the six touches incurred by per-vertex extraction.

    Returns a dict mapping every vertex to its ego-network ``Graph``;
    vertices whose neighbourhood is edgeless map to an ego-network of
    isolated vertices.

    Memory is ``O(3T)`` edge slots, so this is the right choice when all
    ego-networks are needed anyway (index construction), and the wrong
    choice for a single query vertex.
    """
    egos: Dict[Vertex, Graph] = {
        v: Graph(vertices=sorted(graph.neighbors(v), key=graph.vertex_index))
        for v in graph.vertices()
    }
    for u, v in graph.edges():
        nu, nv = graph.neighbors(u), graph.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        for w in nu:
            if w in nv:
                egos[w].add_edge(u, v)
    return egos


def iter_ego_edge_lists(graph: Graph) -> Iterator[Tuple[Vertex, List[Edge]]]:
    """Yield ``(v, edges of G_N(v))`` using the global one-shot pass.

    A lighter-weight variant of :func:`all_ego_networks` that avoids
    building :class:`Graph` objects; used by GCT-index construction where
    the bitmap decomposition consumes raw edge lists.
    """
    buckets: Dict[Vertex, List[Edge]] = {v: [] for v in graph.vertices()}
    for u, v in graph.edges():
        nu, nv = graph.neighbors(u), graph.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        for w in nu:
            if w in nv:
                buckets[w].append((u, v))
    for v in graph.vertices():
        yield v, buckets[v]
