"""Graph substrate: the undirected simple graph and its primitives.

Everything the paper's Section 2 assumes about ``G = (V, E)`` lives here:
the adjacency-set :class:`~repro.graph.graph.Graph`, ego-network
extraction (Definition 1), triangle listing, traversal, bitmap adjacency
for the GCT fast path, IO, and statistics.
"""

from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.builder import GraphBuilder
from repro.graph.egonet import (
    ego_network,
    ego_edge_count,
    all_ego_networks,
    iter_ego_edge_lists,
)
from repro.graph.traversal import (
    bfs_order,
    bfs_layers,
    connected_components,
    components_of_edges,
    count_components_of_edges,
    is_connected,
    largest_component,
)
from repro.graph.triangles import (
    iter_triangles,
    triangle_count,
    edge_supports,
    local_triangle_counts,
    global_clustering_coefficient,
    approx_triangle_count,
)
from repro.graph.bitmap import BitmapAdjacency
from repro.graph.csr import CSRGraph
from repro.graph.arboricity import (
    degeneracy,
    arboricity_upper_bound,
    arboricity_lower_bound,
)
from repro.graph.stats import GraphStats, compute_stats, max_ego_trussness
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    iter_edge_list,
    read_json_graph,
    write_json_graph,
    edges_from_pairs,
)

__all__ = [
    "Graph",
    "Vertex",
    "Edge",
    "GraphBuilder",
    "ego_network",
    "ego_edge_count",
    "all_ego_networks",
    "iter_ego_edge_lists",
    "bfs_order",
    "bfs_layers",
    "connected_components",
    "components_of_edges",
    "count_components_of_edges",
    "is_connected",
    "largest_component",
    "iter_triangles",
    "triangle_count",
    "edge_supports",
    "local_triangle_counts",
    "global_clustering_coefficient",
    "approx_triangle_count",
    "BitmapAdjacency",
    "CSRGraph",
    "degeneracy",
    "arboricity_upper_bound",
    "arboricity_lower_bound",
    "GraphStats",
    "compute_stats",
    "max_ego_trussness",
    "read_edge_list",
    "write_edge_list",
    "iter_edge_list",
    "read_json_graph",
    "write_json_graph",
    "edges_from_pairs",
]
