"""Incremental graph construction helpers.

:class:`GraphBuilder` collects edges (with dedup and self-loop filtering)
before materialising a :class:`~repro.graph.graph.Graph`; generators in
:mod:`repro.datasets` use it so that half-built adjacency never escapes.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.graph.graph import Graph, Vertex, Edge


class GraphBuilder:
    """Accumulate vertices and edges, then :meth:`build` a graph.

    Unlike :class:`Graph`, the builder tolerates self-loops and
    duplicates on input (they are dropped), which keeps random
    generators free of defensive checks.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> b.add_edges([(1, 2), (2, 1), (3, 3)])  # dedup + loop filtering
    1
    >>> b.build().num_edges
    1
    """

    __slots__ = ("_vertices", "_edges", "_seen")

    def __init__(self) -> None:
        self._vertices: List[Vertex] = []
        self._edges: List[Edge] = []
        self._seen: Set[frozenset] = set()

    def add_vertex(self, v: Vertex) -> "GraphBuilder":
        self._vertices.append(v)
        return self

    def add_vertices(self, vertices: Iterable[Vertex]) -> "GraphBuilder":
        self._vertices.extend(vertices)
        return self

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Queue edge ``{u, v}``; returns ``True`` if it is new and valid."""
        if u == v:
            return False
        key = frozenset((u, v))
        if key in self._seen:
            return False
        self._seen.add(key)
        self._edges.append((u, v))
        return True

    def add_edges(self, edges: Iterable[Tuple[Vertex, Vertex]]) -> int:
        """Queue many edges; returns how many were new and valid."""
        return sum(1 for u, v in edges if self.add_edge(u, v))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return frozenset((u, v)) in self._seen

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def build(self) -> Graph:
        """Materialise the accumulated graph."""
        return Graph(edges=self._edges, vertices=self._vertices)
