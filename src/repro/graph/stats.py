"""Network statistics — the columns of the paper's Table 1.

For each dataset the paper reports ``|V|``, ``|E|``, ``d_max``, the
maximum edge trussness ``τ*_G``, the maximum edge trussness over all
ego-networks ``τ*_ego``, and the triangle count ``T``.  The ego
trussness column requires decomposing every ego-network, which is the
expensive part; it can be skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Optional

from repro.graph.graph import Graph
from repro.graph.egonet import iter_ego_edge_lists
from repro.graph.triangles import triangle_count
from repro.truss.decomposition import truss_decomposition, max_trussness
from repro.truss.bitmap_decomposition import bitmap_truss_decomposition


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 1.

    ``tau_ego_max`` is ``None`` when ego decomposition was skipped.
    """

    name: str
    num_vertices: int
    num_edges: int
    max_degree: int
    tau_max: int
    tau_ego_max: Optional[int]
    triangles: int

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for table printers and JSON dumps."""
        return asdict(self)

    def as_row(self) -> str:
        """Fixed-width textual row matching the Table 1 layout."""
        tau_ego = "-" if self.tau_ego_max is None else str(self.tau_ego_max)
        return (f"{self.name:<16} {self.num_vertices:>9} {self.num_edges:>10} "
                f"{self.max_degree:>7} {self.tau_max:>5} {tau_ego:>7} "
                f"{self.triangles:>12}")

    @staticmethod
    def header() -> str:
        """Column header matching :meth:`as_row`."""
        return (f"{'Name':<16} {'|V|':>9} {'|E|':>10} {'dmax':>7} "
                f"{'tau*G':>5} {'tau*ego':>7} {'T':>12}")


def max_ego_trussness(graph: Graph) -> int:
    """``τ*_ego = max_v max_e τ_{G_N(v)}(e)`` (Table 1 column).

    Decomposes every ego-network with the bitmap peeler; by Property 1
    this always equals ``τ*_G - 1`` on graphs whose densest truss is
    ego-realised, but the paper reports it as an independent measurement
    so we compute it exactly.
    """
    best = 0
    for v, edges in iter_ego_edge_lists(graph):
        if not edges:
            continue
        local_tau = bitmap_truss_decomposition(
            sorted(graph.neighbors(v), key=graph.vertex_index), edges)
        candidate = max(local_tau.values(), default=0)
        if candidate > best:
            best = candidate
    return best


def compute_stats(graph: Graph, name: str = "graph",
                  include_ego_trussness: bool = True) -> GraphStats:
    """Compute a full Table-1 row for ``graph``."""
    trussness = truss_decomposition(graph)
    return GraphStats(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        tau_max=max_trussness(graph, trussness),
        tau_ego_max=max_ego_trussness(graph) if include_ego_trussness else None,
        triangles=triangle_count(graph),
    )
