"""Triangle listing, counting and edge-support computation.

Triangle listing is the workhorse of every truss computation in the
paper: edge supports (Section 2.2), ego-network extraction (Definition 1
needs all triangles through the ego), and the global one-shot listing of
the GCT approach (Section 6.2).

All routines use the classic degree ordering [Chiba & Nishizeki 1985;
Latapy 2008]: each edge is oriented from its lower-ranked endpoint to its
higher-ranked endpoint (rank = (degree, insertion index)), and each
triangle is reported exactly once from its lowest-ranked vertex.  The
total work is ``O(ρ m)`` where ``ρ`` is the arboricity — the bound the
paper's complexity analysis (Theorem 2) relies on.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex, Edge


def iter_triangles(graph: Graph) -> Iterator[Tuple[Vertex, Vertex, Vertex]]:
    """Yield every triangle exactly once as ``(u, v, w)``.

    The three vertices appear in increasing rank order of the degree
    ordering, so the same triangle is never reported twice.
    """
    rank = graph.degree_order()
    # Forward adjacency: neighbours of strictly higher rank.
    forward: Dict[Vertex, set] = {
        v: {u for u in graph.neighbors(v) if rank[u] > rank[v]}
        for v in graph.vertices()
    }
    for u in graph.vertices():
        fu = forward[u]
        for v in fu:
            fv = forward[v]
            # Intersect the two forward sets, iterating the smaller one.
            small, large = (fu, fv) if len(fu) <= len(fv) else (fv, fu)
            for w in small:
                if w in large:
                    yield (u, v, w)


def triangle_count(graph: Graph) -> int:
    """Total number of triangles ``T`` in the graph (Table 1 column)."""
    return sum(1 for _ in iter_triangles(graph))


def edge_supports(graph: Graph) -> Dict[Edge, int]:
    """Support of every edge: ``sup(e) = |N(u) ∩ N(v)|``.

    Returns a dict keyed by canonical edge tuples; every edge appears,
    including those with support 0.  Computed in one pass over the
    triangle listing, so each triangle contributes to exactly three
    edges.
    """
    supports: Dict[Edge, int] = {e: 0 for e in graph.edges()}
    canonical = graph.canonical_edge
    for u, v, w in iter_triangles(graph):
        supports[canonical(u, v)] += 1
        supports[canonical(u, w)] += 1
        supports[canonical(v, w)] += 1
    return supports


def local_triangle_counts(graph: Graph) -> Dict[Vertex, int]:
    """Number of triangles through each vertex.

    For a vertex ``v`` this equals ``m_v``, the number of edges in the
    ego-network ``G_N(v)`` — the quantity the Lemma 2 upper bound
    ``min(⌊d(v)/k⌋, ⌊2 m_v / (k (k-1))⌋)`` needs.
    """
    counts: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    for u, v, w in iter_triangles(graph):
        counts[u] += 1
        counts[v] += 1
        counts[w] += 1
    return counts


def count_triangles_per_edge_sum(graph: Graph) -> int:
    """Sum of edge supports; equals ``3 T``.  Exposed for invariant tests."""
    return sum(edge_supports(graph).values())


def approx_triangle_count(graph: Graph, p: float, seed: int = 0) -> float:
    """DOULION triangle estimate [Tsourakakis et al., KDD'09 — the
    paper's citation 38]: keep each edge with probability ``p``, count
    triangles in the sparsified graph, scale by ``1/p³``.

    Unbiased: ``E[estimate] = T``.  Variance shrinks as ``p`` grows;
    the estimator is exact at ``p = 1``.  Useful to size up a graph
    before committing to a full decomposition.
    """
    import random as _random
    if not 0.0 < p <= 1.0:
        raise InvalidParameterError(f"keep probability must be in (0,1], got {p}")
    if p == 1.0:
        return float(triangle_count(graph))
    rng = _random.Random(seed)
    kept = Graph(vertices=graph.vertices())
    for u, v in graph.edges():
        if rng.random() < p:
            kept.add_edge(u, v)
    return triangle_count(kept) / (p ** 3)


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: ``3 T / #wedges`` (0.0 when the graph has no wedge).

    Not used by the search algorithms themselves; reported by the dataset
    registry so synthetic analogues can be checked for triangle richness,
    which drives trussness structure.
    """
    wedges = 0
    for v in graph.vertices():
        d = graph.degree(v)
        wedges += d * (d - 1) // 2
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges
