"""Core undirected simple graph used by every algorithm in this package.

The paper (Section 2) considers an undirected, unweighted simple graph
``G = (V, E)``.  This module provides that substrate: an adjacency-set
graph with arbitrary hashable vertex labels, canonical edge tuples, and
the handful of bulk operations (induced subgraphs, copies) the search
algorithms need.

Design notes
------------
* Vertices are arbitrary hashable objects.  Each vertex receives a stable
  integer *insertion index* so that an edge ``{u, v}`` always has one
  canonical tuple representation ``(u, v)`` with ``index(u) < index(v)``.
  Canonical tuples make edge dictionaries deterministic without requiring
  the labels themselves to be orderable.
* ``neighbors`` returns the internal adjacency set for speed.  Callers
  must treat it as read-only; every mutating algorithm in this package
  copies before modifying.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.errors import GraphError, VertexNotFoundError, EdgeNotFoundError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class Graph:
    """An undirected simple graph with hashable vertex labels.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs inserted at construction.
        Self-loops raise :class:`~repro.errors.GraphError`; duplicate
        edges are silently ignored (the graph is simple).
    vertices:
        Optional iterable of vertices inserted (possibly isolated) before
        the edges.

    Examples
    --------
    >>> g = Graph(edges=[("a", "b"), ("b", "c")])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    """

    __slots__ = ("_adj", "_index", "_next_index", "_num_edges")

    def __init__(self, edges: Optional[Iterable[Edge]] = None,
                 vertices: Optional[Iterable[Vertex]] = None) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._index: Dict[Vertex, int] = {}
        self._next_index = 0
        self._num_edges = 0
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> bool:
        """Insert ``v`` if absent.  Returns ``True`` if it was inserted."""
        if v in self._adj:
            return False
        self._adj[v] = set()
        self._index[v] = self._next_index
        self._next_index += 1
        return True

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert the undirected edge ``{u, v}``, adding missing endpoints.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed.  Raises :class:`GraphError` on a self-loop.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed in a simple graph")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raises :class:`EdgeNotFoundError` if absent."""
        adj_u = self._adj.get(u)
        if adj_u is None or v not in adj_u:
            raise EdgeNotFoundError(u, v)
        adj_u.discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def discard_edge(self, u: Vertex, v: Vertex) -> bool:
        """Remove the edge if present.  Returns ``True`` if removed."""
        adj_u = self._adj.get(u)
        if adj_u is None or v not in adj_u:
            return False
        adj_u.discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        return True

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges; raises if ``v`` is absent."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        for u in self._adj[v]:
            self._adj[u].discard(v)
        self._num_edges -= len(self._adj[v])
        del self._adj[v]
        del self._index[v]

    def remove_isolated_vertices(self) -> int:
        """Drop all degree-0 vertices; returns how many were removed.

        Used by graph sparsification (paper Section 4.1), which deletes
        low-trussness edges and then discards the vertices they strand.
        """
        isolated = [v for v, nbrs in self._adj.items() if not nbrs]
        for v in isolated:
            del self._adj[v]
            del self._index[v]
        return len(isolated)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._num_edges

    def has_vertex(self, v: Vertex) -> bool:
        """Whether ``v`` is a vertex of this graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        adj_u = self._adj.get(u)
        return adj_u is not None and v in adj_u

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """The adjacency set ``N(v)``.  Treat the returned set as read-only."""
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: Vertex) -> int:
        """``d(v) = |N(v)|``."""
        return len(self.neighbors(v))

    def max_degree(self) -> int:
        """``d_max``, the maximum degree (0 on an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def vertices(self) -> Iterator[Vertex]:
        """Iterate vertices in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate every edge once, as canonical ``(u, v)`` tuples."""
        index = self._index
        for u, nbrs in self._adj.items():
            iu = index[u]
            for v in nbrs:
                if iu < index[v]:
                    yield (u, v)

    def vertex_index(self, v: Vertex) -> int:
        """The stable insertion index used to canonicalise edges."""
        try:
            return self._index[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def canonical_edge(self, u: Vertex, v: Vertex) -> Edge:
        """The unique tuple form of the undirected edge ``{u, v}``.

        The tuple is ordered by the vertices' insertion indices, so the
        same unordered pair always yields the same tuple for this graph.
        """
        index = self._index
        try:
            iu, iv = index[u], index[v]
        except KeyError as exc:
            raise VertexNotFoundError(exc.args[0]) from None
        return (u, v) if iu < iv else (v, u)

    def common_neighbors(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """``N(u) ∩ N(v)``, iterating the smaller adjacency set."""
        nu, nv = self.neighbors(u), self.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return {w for w in nu if w in nv}

    def support(self, u: Vertex, v: Vertex) -> int:
        """Edge support: the number of triangles containing edge ``{u, v}``.

        This is ``sup(e) = |N(u) ∩ N(v)|`` (paper Section 2.2).
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        nu, nv = self._adj[u], self._adj[v]
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return sum(1 for w in nu if w in nv)

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """A structural copy sharing vertex labels but no adjacency sets.

        The copy preserves insertion indices, so canonical edge tuples
        computed on the original remain canonical on the copy.
        """
        clone = Graph.__new__(Graph)
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._index = dict(self._index)
        clone._next_index = self._next_index
        clone._num_edges = self._num_edges
        return clone

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """The subgraph induced by ``vertices`` (paper Section 2, ``G_S``).

        Vertices absent from the graph are ignored.  The subgraph's
        insertion order follows this graph's order, so canonical edges
        agree between parent and subgraph.
        """
        keep = {v for v in vertices if v in self._adj}
        ordered = sorted(keep, key=self._index.__getitem__)
        sub = Graph(vertices=ordered)
        for v in ordered:
            for u in self._adj[v]:
                if u in keep and self._index[v] < self._index[u]:
                    sub.add_edge(v, u)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """The subgraph formed by the given edges and their endpoints."""
        sub = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            sub.add_edge(u, v)
        return sub

    def degree_order(self) -> Dict[Vertex, int]:
        """Rank vertices by ``(degree, insertion index)``.

        The returned mapping gives each vertex its position in that total
        order; triangle listing orients each edge from lower to higher
        rank so every triangle is enumerated exactly once.
        """
        ordered = sorted(self._adj, key=lambda v: (len(self._adj[v]), self._index[v]))
        return {v: rank for rank, v in enumerate(ordered)}

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def __eq__(self, other: Any) -> bool:
        """Structural equality: same vertex set and same edge set."""
        if not isinstance(other, Graph):
            return NotImplemented
        if self.num_vertices != other.num_vertices or self.num_edges != other.num_edges:
            return False
        if set(self._adj) != set(other._adj):
            return False
        return all(self._adj[v] == other._adj[v] for v in self._adj)

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment]  # mutable container
