"""Graph traversal primitives: BFS and connected components.

Connected-component identification is the last step of the score
computation (paper Algorithm 2, line 4) and of every index-based query
(Algorithm 6), so these helpers are deliberately small and allocation
light.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.graph.graph import Graph, Vertex, Edge


def bfs_order(graph: Graph, source: Vertex) -> List[Vertex]:
    """Vertices reachable from ``source`` in breadth-first order."""
    visited = {source}
    order = [source]
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in visited:
                visited.add(u)
                order.append(u)
                queue.append(u)
    return order


def bfs_layers(graph: Graph, source: Vertex) -> Dict[Vertex, int]:
    """Hop distance from ``source`` for every reachable vertex."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dv + 1
                queue.append(u)
    return dist


def connected_components(graph: Graph,
                         vertices: Optional[Iterable[Vertex]] = None
                         ) -> List[Set[Vertex]]:
    """Connected components of ``graph`` (optionally restricted).

    When ``vertices`` is given, components are computed in the subgraph
    induced by those vertices without materialising it.
    """
    if vertices is None:
        allowed: Optional[Set[Vertex]] = None
        universe: Iterable[Vertex] = graph.vertices()
    else:
        allowed = {v for v in vertices if v in graph}
        universe = allowed
    components: List[Set[Vertex]] = []
    seen: Set[Vertex] = set()
    for start in universe:
        if start in seen:
            continue
        seen.add(start)
        component = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in seen or (allowed is not None and u not in allowed):
                    continue
                seen.add(u)
                component.add(u)
                queue.append(u)
        components.append(component)
    return components


def components_of_edges(edges: Iterable[Edge]) -> List[Set[Vertex]]:
    """Connected components of the subgraph formed by ``edges``.

    Only vertices incident to at least one edge appear — exactly the
    semantics of a social context, which is a component of the k-truss
    and therefore always contains edges (paper Definition 2).
    """
    adjacency: Dict[Vertex, List[Vertex]] = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    components: List[Set[Vertex]] = []
    seen: Set[Vertex] = set()
    for start in adjacency:
        if start in seen:
            continue
        seen.add(start)
        component = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in adjacency[v]:
                if u not in seen:
                    seen.add(u)
                    component.add(u)
                    queue.append(u)
        components.append(component)
    return components


def count_components_of_edges(edges: Iterable[Edge]) -> int:
    """Number of connected components spanned by ``edges``.

    Uses a union-find over edge endpoints; cheaper than materialising
    the components when only ``score(v)`` (their count) is needed.
    """
    parent: Dict[Vertex, Vertex] = {}

    def find(x: Vertex) -> Vertex:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    count = 0
    for u, v in edges:
        if u not in parent:
            parent[u] = u
            count += 1
        if v not in parent:
            parent[v] = v
            count += 1
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            count -= 1
    return count


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the paper's standing assumption)."""
    if graph.num_vertices == 0:
        return True
    start = next(iter(graph.vertices()))
    return len(bfs_order(graph, start)) == graph.num_vertices


def largest_component(graph: Graph) -> Set[Vertex]:
    """The vertex set of the largest connected component (empty graph → empty set)."""
    best: Set[Vertex] = set()
    for component in connected_components(graph):
        if len(component) > len(best):
            best = component
    return best
