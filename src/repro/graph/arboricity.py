"""Arboricity and degeneracy bounds (paper Theorem 2).

The paper simplifies its complexity statements using the arboricity
``ρ`` of the graph and the classic bound ``ρ ≤ min(⌊√m⌋, d_max)``
[Chiba & Nishizeki 1985].  Exact arboricity needs matroid machinery;
the search algorithms only ever need an upper bound, so we provide the
paper's bound plus the standard degeneracy sandwich
``⌈degeneracy / 2⌉ ≤ ρ ≤ degeneracy``.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.graph.graph import Graph, Vertex


def degeneracy(graph: Graph) -> int:
    """The graph degeneracy (maximum core number), via bucket peeling."""
    if graph.num_vertices == 0:
        return 0
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    max_degree = max(degrees.values())
    bins = [set() for _ in range(max_degree + 1)]
    for v, d in degrees.items():
        bins[d].add(v)
    removed = set()
    best = 0
    pointer = 0
    remaining = graph.num_vertices
    while remaining:
        while pointer <= max_degree and not bins[pointer]:
            pointer += 1
        v = bins[pointer].pop()
        removed.add(v)
        remaining -= 1
        best = max(best, pointer)
        for u in graph.neighbors(v):
            if u in removed:
                continue
            du = degrees[u]
            if du > pointer:
                bins[du].discard(u)
                degrees[u] = du - 1
                bins[du - 1].add(u)
        # Peeling can create vertices of degree lower than the pointer.
        pointer = max(0, pointer - 1)
    return best


def arboricity_upper_bound(graph: Graph) -> int:
    """``ρ ≤ min(⌈√m⌉, d_max, degeneracy)`` — the tightest cheap bound.

    The paper states ``ρ ≤ ⌊√m⌋`` but the floor is too aggressive on
    tiny graphs (K3 has arboricity 2 > ⌊√3⌋); the ceiling is the safe
    form of the Chiba–Nishizeki bound.  Degeneracy dominates both terms
    on sparse power-law graphs and is itself a valid upper bound because
    a d-degenerate graph decomposes into d forests.
    """
    m = graph.num_edges
    if m == 0:
        return 0
    sqrt_bound = math.isqrt(m)
    if sqrt_bound * sqrt_bound < m:
        sqrt_bound += 1
    return min(sqrt_bound, graph.max_degree(), degeneracy(graph))


def arboricity_lower_bound(graph: Graph) -> int:
    """Nash-Williams density bound: ``ρ ≥ ⌈m / (n - 1)⌉`` on any subgraph.

    Only the whole-graph term is evaluated (computing the true
    Nash-Williams maximum over all subgraphs is as hard as arboricity
    itself); sufficient for sanity tests that bracket the upper bound.
    """
    n, m = graph.num_vertices, graph.num_edges
    if n <= 1 or m == 0:
        return 0
    return -(-m // (n - 1))
