"""Graph serialisation: SNAP-style edge lists and a JSON graph format.

The paper's datasets come from the Stanford Network Analysis Project
(SNAP), distributed as whitespace-separated edge lists with ``#`` comment
headers.  :func:`read_edge_list` accepts exactly that format, so the real
datasets can be dropped into the benchmark harness when available; the
synthetic analogues used offline are written with :func:`write_edge_list`
in the same format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Tuple, Union

from repro.errors import ReproError
from repro.graph.graph import Graph, Vertex

PathLike = Union[str, Path]


def iter_edge_list(path: PathLike, comment: str = "#",
                   delimiter: Optional[str] = None,
                   vertex_type: Callable[[str], Vertex] = int,
                   ) -> Iterator[Tuple[Vertex, Vertex]]:
    """Stream ``(u, v)`` pairs from an edge-list file.

    Parameters
    ----------
    path:
        File to read.
    comment:
        Lines starting with this prefix are skipped (SNAP uses ``#``).
    delimiter:
        Field separator; ``None`` splits on any whitespace (SNAP files
        use tabs or spaces interchangeably).
    vertex_type:
        Parser applied to each endpoint token; SNAP ids are integers.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(delimiter)
            if len(parts) < 2:
                raise ReproError(
                    f"{path}:{line_no}: expected two fields, got {line!r}")
            yield vertex_type(parts[0]), vertex_type(parts[1])


def read_edge_list(path: PathLike, comment: str = "#",
                   delimiter: Optional[str] = None,
                   vertex_type: Callable[[str], Vertex] = int,
                   directed_input: bool = True) -> Graph:
    """Load an edge-list file as an undirected simple :class:`Graph`.

    Mirrors the paper's preprocessing (Section 7, "treat them as
    undirected graphs"): direction is dropped, duplicate edges collapse,
    and self-loops are silently discarded.

    ``directed_input`` is accepted for documentation purposes — reading
    a directed file already symmetrises edges, so both values behave
    identically; the flag records the caller's intent.
    """
    del directed_input  # symmetrisation is unconditional
    graph = Graph()
    for u, v in iter_edge_list(path, comment=comment, delimiter=delimiter,
                               vertex_type=vertex_type):
        if u == v:
            continue
        graph.add_edge(u, v)
    return graph


def write_edge_list(graph: Graph, path: PathLike,
                    header: Optional[str] = None,
                    delimiter: str = "\t") -> None:
    """Write the graph as a SNAP-style edge list (one edge per line)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}{delimiter}{v}\n")


# ----------------------------------------------------------------------
# JSON graph format (preserves non-integer labels, round-trips exactly)
# ----------------------------------------------------------------------
_JSON_FORMAT_VERSION = 1


def graph_to_payload(graph: Graph) -> dict:
    """JSON-able dict of a graph (the ``repro-graph`` wire format).

    Vertices are stored once in insertion order, edges as index pairs, so
    canonical edge tuples — and with them the canonical ranking
    contract's tie order — survive a round trip.  Also the body of the
    cluster's worker registration endpoint.
    """
    vertices = list(graph.vertices())
    position = {v: i for i, v in enumerate(vertices)}
    return {
        "format": "repro-graph",
        "version": _JSON_FORMAT_VERSION,
        "vertices": vertices,
        "edges": [[position[u], position[v]] for u, v in graph.edges()],
    }


def graph_from_payload(payload: dict,
                       source: str = "<payload>") -> Graph:
    """Inverse of :func:`graph_to_payload`."""
    if payload.get("format") != "repro-graph":
        raise ReproError(f"{source}: not a repro-graph JSON payload")
    if payload.get("version") != _JSON_FORMAT_VERSION:
        raise ReproError(
            f"{source}: unsupported version {payload.get('version')!r}")
    raw_vertices = payload["vertices"]
    # JSON turns tuples into lists; labels must be hashable after a trip.
    vertices = [tuple(v) if isinstance(v, list) else v for v in raw_vertices]
    graph = Graph(vertices=vertices)
    for iu, iv in payload["edges"]:
        graph.add_edge(vertices[iu], vertices[iv])
    return graph


def write_json_graph(graph: Graph, path: PathLike) -> None:
    """Persist a graph with arbitrary (JSON-encodable) vertex labels."""
    Path(path).write_text(json.dumps(graph_to_payload(graph)),
                          encoding="utf-8")


def read_json_graph(path: PathLike) -> Graph:
    """Inverse of :func:`write_json_graph`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return graph_from_payload(payload, source=str(path))


def edges_from_pairs(pairs: Iterable[Tuple[Vertex, Vertex]]) -> Graph:
    """Build a simple undirected graph from in-memory pairs.

    Convenience mirror of :func:`read_edge_list` for already-parsed data:
    drops self-loops and duplicates.
    """
    graph = Graph()
    for u, v in pairs:
        if u == v:
            continue
        graph.add_edge(u, v)
    return graph
