"""repro — Truss-based Structural Diversity Search in Large Graphs.

A from-scratch Python reproduction of Huang, Huang & Xu (ICDE 2021 /
TKDE): the truss-based structural diversity model, four top-r search
algorithms (baseline, bound, TSD-index, GCT-index), the Hybrid
competitor, the Comp-Div/Core-Div/Random baselines, and the influence
propagation harness used by the effectiveness experiments.  The
:class:`QueryEngine` facade unifies every method behind a cost-based
planner with cached indexes and batched queries; all methods return
identical ranked answers under the canonical ranking contract
(:mod:`repro.core.results`).

Quickstart
----------
>>> from repro import Graph, TSDIndex
>>> from repro.datasets import figure1_graph
>>> g = figure1_graph()
>>> index = TSDIndex.build(g)
>>> result = index.top_r(k=4, r=1)
>>> result.vertices, result.scores
(['v'], [3])
"""

from repro.errors import (
    ReproError,
    GraphError,
    VertexNotFoundError,
    EdgeNotFoundError,
    InvalidParameterError,
    IndexFormatError,
    StoreError,
)
from repro.graph import Graph, GraphBuilder, ego_network, read_edge_list
from repro.truss import (
    truss_decomposition,
    k_truss_subgraph,
    maximal_connected_k_trusses,
)
from repro.cores import core_decomposition, k_core_subgraph
from repro.core import (
    structural_diversity,
    social_contexts,
    online_search,
    bound_search,
    sparsify,
    TSDIndex,
    GCTIndex,
    HybridSearcher,
    SearchResult,
    TopEntry,
)
from repro.models import (
    TrussDivModel,
    CompDivModel,
    CoreDivModel,
    RandomModel,
)
from repro.build import BuildPlan, ParallelIndexBuilder
from repro.engine import EngineConfig, QueryEngine
from repro.service import DiversityService, IndexStore, Snapshot

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "InvalidParameterError",
    "IndexFormatError",
    "StoreError",
    "Graph",
    "GraphBuilder",
    "ego_network",
    "read_edge_list",
    "truss_decomposition",
    "k_truss_subgraph",
    "maximal_connected_k_trusses",
    "core_decomposition",
    "k_core_subgraph",
    "structural_diversity",
    "social_contexts",
    "online_search",
    "bound_search",
    "sparsify",
    "TSDIndex",
    "GCTIndex",
    "HybridSearcher",
    "SearchResult",
    "TopEntry",
    "TrussDivModel",
    "CompDivModel",
    "CoreDivModel",
    "RandomModel",
    "BuildPlan",
    "ParallelIndexBuilder",
    "QueryEngine",
    "EngineConfig",
    "DiversityService",
    "IndexStore",
    "Snapshot",
    "__version__",
]
