"""The live-update path: edge batches → the next snapshot, incrementally.

Whole-engine ``invalidate()`` throws away every index and every cached
score map on any mutation.  This module replaces it with the locality
argument of :mod:`repro.core.dynamic`: inserting or deleting edge
``(u, v)`` changes only the ego-networks of ``{u, v} ∪ (N(u) ∩ N(v))``,
so only those vertices' TSD forests and GCT entries are rebuilt — every
other artifact entry is carried into the next snapshot untouched.

Fine-grained cache invalidation falls out of the same locality: a
cached ``(score map, ranking)`` at threshold ``k`` is still exact after
the batch iff no affected vertex's score *at that* ``k`` changed (and
the vertex set did not change — a new vertex must appear in every
ranking's zero-fill).  The update path compares each affected vertex's
old and new score profiles and drops exactly the thresholds where they
differ, so a service whose traffic hammers ``k=4`` keeps its hot cache
through an update that only shifted scores at ``k=2``.

Examples
--------
>>> from repro.graph.graph import Graph
>>> from repro.service.snapshot import Snapshot
>>> snap = Snapshot.build(Graph(edges=[(0, 1), (1, 2), (0, 2)]))
>>> nxt, report = apply_batch(snap, [insert(2, 3)])
>>> sorted(report.affected_vertices)
[2, 3]
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import GraphError, InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.diversity import profile_from_weights
from repro.core.tsd import TSDIndex, ForestEdge
from repro.core.gct import GCTIndex, assemble_gct
from repro.core.hybrid import HybridSearcher
from repro.service.snapshot import ScoreEntry, Snapshot


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge mutation: ``op`` is ``"insert"`` or ``"delete"``."""

    op: str
    u: Vertex
    v: Vertex

    def __post_init__(self) -> None:
        if self.op not in ("insert", "delete"):
            raise InvalidParameterError(
                f"unknown update op {self.op!r}; expected 'insert' or "
                "'delete'")
        if self.u == self.v:
            raise GraphError(
                f"self-loop update on {self.u!r} is not allowed")


def insert(u: Vertex, v: Vertex) -> EdgeUpdate:
    """An edge-insertion update."""
    return EdgeUpdate("insert", u, v)


def delete(u: Vertex, v: Vertex) -> EdgeUpdate:
    """An edge-deletion update."""
    return EdgeUpdate("delete", u, v)


#: Updates may also be given as plain ``(op, u, v)`` tuples.
UpdateLike = Union[EdgeUpdate, Tuple[str, Vertex, Vertex]]


@dataclass(frozen=True)
class UpdateReport:
    """What one batch actually touched — the fine-grained ledger.

    Attributes
    ----------
    num_updates:
        Edge mutations applied.
    affected_vertices:
        Vertices whose ego-network changed (forest + GCT entry rebuilt).
    rebuilt_forests:
        Ego forests actually re-decomposed (≤ ``len(affected_vertices)``;
        vertices deleted from the graph are dropped, not rebuilt).
    invalidated_thresholds:
        Cached ``k`` entries dropped because an affected vertex's score
        at that ``k`` changed (or because the vertex set changed).
    retained_thresholds:
        Cached ``k`` entries that survived into the next snapshot.
    vertex_set_changed:
        Whether the batch added a vertex — this forces dropping every
        cached ranking (zero-fill must include the newcomer).
    seconds:
        Wall-clock time of the whole batch application.
    """

    num_updates: int
    affected_vertices: Tuple[Vertex, ...]
    rebuilt_forests: int
    invalidated_thresholds: Tuple[int, ...]
    retained_thresholds: Tuple[int, ...]
    vertex_set_changed: bool
    seconds: float

    def summary(self) -> str:
        """One-line human summary for service logs."""
        return (f"applied {self.num_updates} update(s): "
                f"{len(self.affected_vertices)} affected vertices, "
                f"{self.rebuilt_forests} forests rebuilt, "
                f"cache dropped k={list(self.invalidated_thresholds) or '-'} "
                f"kept k={list(self.retained_thresholds) or '-'} "
                f"in {self.seconds:.4f}s")


def _coerce(update: UpdateLike) -> EdgeUpdate:
    if isinstance(update, EdgeUpdate):
        return update
    op, u, v = update
    return EdgeUpdate(op, u, v)


def _affected_by(graph: Graph, u: Vertex, v: Vertex) -> Set[Vertex]:
    """``{u, v} ∪ (N(u) ∩ N(v))`` — the exact ego-change set."""
    common = (graph.common_neighbors(u, v)
              if u in graph and v in graph else set())
    return {u, v} | common


def _old_profile(snapshot: Snapshot, v: Vertex) -> Dict[int, int]:
    """Pre-update score profile of ``v`` ({} for vertices not indexed)."""
    index = snapshot.tsd if snapshot.tsd is not None else snapshot.gct
    if v not in index:
        return {}
    return index.score_profile(v)


def apply_batch(snapshot: Snapshot, updates: Sequence[UpdateLike],
                jobs: Optional[int] = None,
                ) -> Tuple[Snapshot, UpdateReport]:
    """Apply an edge batch to a snapshot, producing the next snapshot.

    The input snapshot is never mutated — concurrent readers keep
    serving from it.  The returned snapshot carries:

    * a graph with every update applied (in order);
    * a TSD index (when the input had one) and a GCT index with only
      the affected vertices' entries rebuilt;
    * hybrid rankings recomputed from the repaired TSD forests when the
      input carried them (they are global per-``k`` sorts, so there is
      no per-vertex patch for them);
    * exactly the cache entries whose thresholds survived invalidation.

    The affected-vertex ego repair runs through
    :func:`repro.build.repair_forests`: ``jobs=None`` (default) repairs
    in-process, ``0`` auto-plans, ``>= 2`` fans the affected
    ego-networks out to a worker pool — a batch touching many hubs is a
    miniature index build, and shards the same way.  The repaired
    forests are byte-identical in every mode.
    """
    start = time.perf_counter()
    batch = [_coerce(update) for update in updates]
    graph = snapshot.graph  # the property already hands out a copy
    old_vertices = set(graph.vertices())

    # --- 1. mutate the private graph copy, collecting the affected set
    affected: Set[Vertex] = set()
    for update in batch:
        if update.op == "insert":
            if graph.has_edge(update.u, update.v):
                raise GraphError(
                    f"edge ({update.u!r}, {update.v!r}) already present")
            graph.add_edge(update.u, update.v)
            affected |= _affected_by(graph, update.u, update.v)
        else:
            # Common neighbours are taken while the edge's triangles
            # still exist (mirrors DynamicTSDIndex.delete_edge).
            affected |= _affected_by(graph, update.u, update.v)
            graph.remove_edge(update.u, update.v)
    vertex_set_changed = set(graph.vertices()) != old_vertices

    # --- 2. capture pre-update profiles of the affected vertices ------
    old_profiles = {v: _old_profile(snapshot, v) for v in affected}

    # --- 3. affected-vertex repair: re-decompose only changed egos ----
    # (deleted vertices are simply dropped; repair_forests skips them)
    from repro.build import repair_forests
    order = list(graph.vertices())
    position = {v: i for i, v in enumerate(order)}
    new_forests: Dict[Vertex, List[ForestEdge]] = repair_forests(
        graph, sorted(affected, key=repr), jobs=jobs,
        labels=order, ids=position)
    new_profiles: Dict[Vertex, Dict[int, int]] = {
        w: profile_from_weights(((a, b), weight)
                                for a, b, weight in forest)
        for w, forest in new_forests.items()
    }
    rebuilt = len(new_forests)

    new_tsd: Optional[TSDIndex] = None
    old_tsd = snapshot.tsd
    if old_tsd is not None:
        forests = {v: old_tsd.forest(v) for v in old_tsd.vertices
                   if v in graph and v not in new_forests}
        forests.update(new_forests)
        new_tsd = TSDIndex(forests, order)

    old_gct = snapshot.gct
    supernodes = {v: old_gct.supernodes(v) for v in old_gct.vertices
                  if v in graph and v not in affected}
    superedges = {v: old_gct.superedges(v) for v in old_gct.vertices
                  if v in graph and v not in affected}
    for w, forest in new_forests.items():
        touched = {u for u, _, _ in forest} | {x for _, x, _ in forest}
        supernodes[w], superedges[w] = assemble_gct(
            sorted(touched, key=position.__getitem__),
            (((u, x), weight) for u, x, weight in forest))
    new_gct = GCTIndex(supernodes, superedges, order)

    new_hybrid: Optional[HybridSearcher] = None
    if snapshot.hybrid is not None and new_tsd is not None:
        new_hybrid = HybridSearcher.precompute(graph, index=new_tsd)

    # --- 4. fine-grained cache invalidation ---------------------------
    changed_ks: Set[int] = set()
    for w in affected:
        old_profile = old_profiles[w]
        new_profile = new_profiles.get(w, {})
        for k in sorted(set(old_profile) | set(new_profile)):
            if old_profile.get(k, 0) != new_profile.get(k, 0):
                changed_ks.add(k)

    old_entries = snapshot.score_entries()
    if vertex_set_changed:
        invalidated = set(old_entries)
        retained: Dict[int, ScoreEntry] = {}
    else:
        invalidated = {k for k in old_entries if k in changed_ks}
        retained = {k: entry for k, entry in old_entries.items()
                    if k not in invalidated}

    next_snapshot = Snapshot(
        graph, tsd=new_tsd, gct=new_gct, hybrid=new_hybrid,
        scores=retained, version=snapshot.version + 1, key=None)
    report = UpdateReport(
        num_updates=len(batch),
        affected_vertices=tuple(sorted(affected, key=repr)),
        rebuilt_forests=rebuilt,
        invalidated_thresholds=tuple(sorted(invalidated)),
        retained_thresholds=tuple(sorted(retained)),
        vertex_set_changed=vertex_set_changed,
        seconds=time.perf_counter() - start,
    )
    return next_snapshot, report
