"""Snapshot-isolated serving: persistent store, snapshots, live updates.

The service layer turns the :class:`~repro.engine.QueryEngine`'s
machinery into something a long-running process can actually operate:

* :mod:`repro.service.store` — :class:`IndexStore`, a versioned
  on-disk store of index artifacts keyed by graph content hash, so
  restarts skip every index build (warm start);
* :mod:`repro.service.snapshot` — :class:`Snapshot`, an immutable
  (graph, indexes, score cache) unit that serves concurrent reads
  lock-free;
* :mod:`repro.service.updates` — edge-batch application with
  affected-vertex repair and *fine-grained* cache invalidation (only
  thresholds whose scores changed are dropped);
* :mod:`repro.service.service` — :class:`DiversityService`, the front
  that swaps snapshots atomically under a single writer lock.

All answers uphold the canonical ranking contract of
:mod:`repro.core.results` — a warm-started or live-updated service is
rank-identical to a cold engine on the same graph.
"""

from repro.service.store import (
    ARTIFACT_NAMES,
    CompactionReport,
    IndexStore,
    StoredIndexes,
    StoreVersion,
    graph_fingerprint,
)
from repro.service.snapshot import (
    Snapshot,
    scores_from_payload,
    scores_to_payload,
)
from repro.service.updates import (
    EdgeUpdate,
    UpdateReport,
    apply_batch,
    delete,
    insert,
)
from repro.service.service import DiversityService

__all__ = [
    "ARTIFACT_NAMES",
    "CompactionReport",
    "DiversityService",
    "EdgeUpdate",
    "IndexStore",
    "Snapshot",
    "StoreVersion",
    "StoredIndexes",
    "UpdateReport",
    "apply_batch",
    "delete",
    "graph_fingerprint",
    "insert",
    "scores_from_payload",
    "scores_to_payload",
]
