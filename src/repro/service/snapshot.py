"""Immutable :class:`Snapshot`: graph + indexes + score cache, read-only.

Concurrent serving needs one property above all: *nothing a reader
touches may change under it*.  The snapshot delivers that by
construction — it owns a private copy of the graph, fully built
indexes, and a per-``k`` score-map cache, none of which are ever
mutated after publication.  A reader grabs a snapshot reference once
(an atomic operation) and serves the whole query from it; writers
(:mod:`repro.service.updates`) build a *new* snapshot and swap the
reference, so readers in flight keep a consistent world and never wait
on a lock.

The one internal mutation is memoisation: scoring a threshold ``k`` not
yet cached installs the computed ``(score map, ranking)`` into a plain
dict.  That is safe lock-free — the value for a given ``k`` is a pure
function of the immutable indexes, so concurrent computations are
redundant but identical, and CPython dict assignment is atomic.

Answers follow the canonical ranking contract of
:mod:`repro.core.results`: descending score, ties broken by graph
insertion order — rank-identical to every other method in the library.

Examples
--------
>>> from repro.datasets.paper import figure1_graph
>>> snap = Snapshot.build(figure1_graph())
>>> result = snap.top_r(4, 1)
>>> result.vertices, result.scores
(['v'], [3])
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.results import SearchResult, build_entries
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher

#: One cached threshold: the score map and the canonical ranking.
ScoreEntry = Tuple[Dict[Vertex, int], List[Tuple[Vertex, int]]]

#: Format tag of a persisted score-cache payload (``scores.json``).
SCORES_FORMAT = "repro-snapshot-scores"
SCORES_VERSION = 1


def scores_to_payload(entries: Dict[int, ScoreEntry]) -> Dict:
    """JSON-able payload of score-cache entries (``scores.json``).

    Only the canonical ranking is persisted per threshold — the score
    map is its dict view, so the payload stores each entry once.
    Vertex labels must be JSON-encodable, the same requirement the
    index ``to_payload`` hooks impose.
    """
    return {
        "format": SCORES_FORMAT,
        "version": SCORES_VERSION,
        "thresholds": {
            str(k): [[vertex, score] for vertex, score in ranking]
            for k, (_, ranking) in sorted(entries.items())
        },
    }


def scores_from_payload(payload: Dict) -> Dict[int, ScoreEntry]:
    """Rebuild score-cache entries from a :func:`scores_to_payload` dict.

    Raises :class:`~repro.errors.InvalidParameterError` on a payload
    that is not a persisted score cache.
    """
    if payload.get("format") != SCORES_FORMAT:
        raise InvalidParameterError(
            f"not a {SCORES_FORMAT} payload: format="
            f"{payload.get('format')!r}")
    entries: Dict[int, ScoreEntry] = {}
    for k_text, pairs in payload.get("thresholds", {}).items():
        ranking = [(vertex, int(score)) for vertex, score in pairs]
        entries[int(k_text)] = (dict(ranking), ranking)
    return entries


class Snapshot:
    """One immutable, fully materialised serving state.

    Parameters
    ----------
    graph:
        The graph this snapshot answers for.  The snapshot takes a
        private copy, so later mutations of the caller's graph cannot
        leak into published answers.
    tsd, gct:
        Built indexes.  At least one is required; GCT is preferred for
        serving (Lemma 3 scoring), and missing GCT is compressed from
        the TSD forests at construction time — never during a query.
    hybrid:
        Optional precomputed rankings, carried so the artifact lineage
        survives snapshot hand-offs (queries do not need it).
    scores:
        Score-cache entries to seed (``k`` → (score map, ranking)),
        typically the survivors of a fine-grained invalidation.
    version, key:
        Provenance: the store version and graph key this snapshot
        corresponds to (0 / ``None`` for unpersisted snapshots).
    """

    __slots__ = ("_graph", "_tsd", "_gct", "_hybrid", "_scores",
                 "_position", "version", "key")

    def __init__(self, graph: Graph,
                 tsd: Optional[TSDIndex] = None,
                 gct: Optional[GCTIndex] = None,
                 hybrid: Optional[HybridSearcher] = None,
                 scores: Optional[Dict[int, ScoreEntry]] = None,
                 version: int = 0, key: Optional[str] = None) -> None:
        if tsd is None and gct is None:
            raise InvalidParameterError(
                "a snapshot needs at least one built index (tsd or gct)")
        self._graph = graph.copy()
        self._tsd = tsd
        self._gct = gct if gct is not None else GCTIndex.compress(tsd)
        self._hybrid = hybrid
        self._scores: Dict[int, ScoreEntry] = dict(scores or {})
        self._position: Dict[Vertex, int] = {
            v: i for i, v in enumerate(self._graph.vertices())}
        self.version = version
        self.key = key

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, jobs: Optional[int] = 0) -> "Snapshot":
        """Cold-build a snapshot straight from a graph (TSD and GCT).

        Construction goes through the :mod:`repro.build` pipeline: one
        shared triangle pass and one decomposition feed *both* indexes,
        auto-planned serial or multi-process by ``jobs`` (see
        :meth:`repro.build.BuildPlan.decide`; ``None`` keeps the legacy
        per-vertex TSD build + compress).  The resulting artifacts are
        byte-identical across strategies, so snapshots built with
        different ``jobs`` values share store lineages.
        """
        from repro.build import build_indexes
        tsd, gct = build_indexes(graph, jobs=jobs)
        return cls(graph, tsd=tsd, gct=gct)

    # ------------------------------------------------------------------
    # Read-only state
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """A defensive copy of the snapshot's graph.

        Handing out the private copy would let a caller mutate the
        "immutable" snapshot from outside (and desynchronise its store
        key, which hashes the graph content), so every access pays for
        a fresh copy.  Use :attr:`num_vertices` / :attr:`num_edges`
        when only the size is needed, and :attr:`graph_view` for
        read-only traversal without the O(V+E) copy.
        """
        return self._graph.copy()

    @property
    def graph_view(self) -> Graph:
        """The snapshot's graph *without* a defensive copy — read-only.

        The copy in :attr:`graph` is O(V+E) per access, which turns
        stats endpoints, fingerprint lookups, and ledger writes into
        accidental full-graph traversals.  Callers that only *read*
        (iteration, degree lookups, fingerprinting) use this view and
        must never mutate it — mutating a published snapshot's graph
        breaks the immutability contract and desynchronises its store
        key.  Callers that mutate (the update pipeline's
        :func:`~repro.service.updates.apply_batch`) stay on
        :attr:`graph`.
        """
        return self._graph

    @property
    def num_vertices(self) -> int:
        """Vertex count — no graph copy."""
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count — no graph copy."""
        return self._graph.num_edges

    @property
    def tsd(self) -> Optional[TSDIndex]:
        """The TSD index, when this snapshot carries one."""
        return self._tsd

    @property
    def gct(self) -> Optional[GCTIndex]:
        """The GCT index the snapshot serves from."""
        return self._gct

    @property
    def hybrid(self) -> Optional[HybridSearcher]:
        """The hybrid rankings, when this snapshot carries them."""
        return self._hybrid

    def cached_thresholds(self) -> List[int]:
        """Thresholds with a materialised score map, ascending."""
        return sorted(self._scores)

    def score_entries(self) -> Dict[int, ScoreEntry]:
        """The cached entries (shallow copy) — update-path input."""
        return dict(self._scores)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _entry(self, k: int) -> Tuple[ScoreEntry, bool]:
        """The ``(score map, ranking)`` for ``k``; computes+memoises on
        first use.  Returns ``(entry, was_cached)``."""
        entry = self._scores.get(k)
        if entry is not None:
            return entry, True
        score_map = self._gct.scores_for_all(k)
        ranking = sorted(
            score_map.items(),
            key=lambda pair: (-pair[1], self._position[pair[0]]))
        entry = (score_map, ranking)
        self._scores[k] = entry  # atomic publish; idempotent recompute
        return entry, False

    def score(self, v: Vertex, k: int) -> int:
        """``score(v)`` at threshold ``k`` (cached map, else Lemma 3)."""
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if v not in self._graph:
            raise InvalidParameterError(
                f"vertex {v!r} is not in this snapshot's graph")
        entry = self._scores.get(k)
        if entry is not None:
            return entry[0][v]
        return self._gct.score(v, k)

    def contexts(self, v: Vertex, k: int) -> List[Set[Vertex]]:
        """Social contexts of ``v`` at threshold ``k``."""
        return self._gct.contexts(v, k)

    def top_r(self, k: int, r: int,
              collect_contexts: bool = True) -> SearchResult:
        """Canonical top-r answer served from this snapshot.

        ``search_space`` counts actual score computations: ``|V|`` when
        this call materialised the threshold, 0 when it was served from
        the snapshot's cache.
        """
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")
        start = time.perf_counter()
        (_, ranking), was_cached = self._entry(k)
        answer = ranking[:min(r, len(ranking))]
        entries = build_entries(
            answer, lambda v: self._gct.contexts(v, k), collect_contexts)
        return SearchResult(
            method="service", k=k, r=min(r, max(len(ranking), 1)),
            entries=entries,
            search_space=0 if was_cached else len(ranking),
            elapsed_seconds=time.perf_counter() - start,
        )

    def top_r_many(self, queries: Sequence[Tuple[int, int]],
                   collect_contexts: bool = True) -> List[SearchResult]:
        """Answer a batch; same-threshold items share one score map."""
        return [self.top_r(k, r, collect_contexts=collect_contexts)
                for k, r in queries]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Snapshot(v{self.version}, |V|={self.num_vertices}, "
                f"|E|={self._graph.num_edges}, "
                f"cached_k={self.cached_thresholds() or '-'})")
