"""The :class:`IndexStore`: a versioned on-disk home for index artifacts.

The paper's indexes only pay off when they are built once and served
many times — yet a restarted process used to start cold and rebuild
everything.  The store closes that gap: it keeps, per *graph content*,
a versioned lineage of index artifacts (TSD forests, GCT supernode
forests, hybrid rankings) so any later process serving the same graph
can skip every build.

Layout on disk::

    <root>/
      manifest.json                    # the store catalogue
      .lock                            # cross-process writer lock
      objects/<graph-key>/v<N>/tsd.json      # or tsd.bin (codec="bin")
      objects/<graph-key>/v<N>/gct.json      # or gct.bin
      objects/<graph-key>/v<N>/hybrid.json
      objects/<graph-key>/v<N>/scores.json   # persisted score cache

Design notes
------------
* **Content addressing.**  Graphs are keyed by :func:`graph_fingerprint`
  — a SHA-256 over the insertion-ordered vertex list and the canonical
  edge list.  Two structurally identical graphs (same labels, same
  insertion order) share a key, so a warm start never needs a path or a
  name, just the graph it is about to serve.
* **Versioning.**  Every :meth:`IndexStore.put` creates a new version.
  Artifacts the caller did not re-supply are *carried forward* by
  reference: the manifest records each artifact's relative path, so a
  live update that only patched the TSD and GCT artifacts re-versions
  the lineage without rewriting the untouched hybrid rankings.
* **Format ownership.**  The store persists payloads produced by
  ``TSDIndex.to_payload`` / ``GCTIndex.to_payload`` /
  ``HybridSearcher.to_payload`` (and, for the ``scores`` artifact,
  :func:`repro.service.snapshot.scores_to_payload`) and hands them back
  to the matching ``from_payload`` — it never interprets artifact
  internals.
* **Pluggable codecs.**  *How* a payload becomes bytes is a
  :mod:`repro.storage.codec` choice: ``codec="json"`` (default) keeps
  the original whole-payload JSON files; ``codec="bin"`` writes the
  ``tsd``/``gct`` artifacts in the paged binary format, which
  :meth:`load` opens lazily through an mmap so a warm start pays O(1)
  decode instead of deserialising every forest.  The manifest records
  the codec per artifact, so mixed stores read fine whatever codec an
  :class:`IndexStore` instance was opened with.
* **Durability.**  Artifact and manifest writes go through tmp +
  ``os.replace``; ``put`` / ``put_scores`` / ``compact`` hold an
  on-disk lock and re-read the manifest first, so concurrent writers
  sharing a root never lose each other's versions.

Examples
--------
>>> import tempfile
>>> from repro.datasets.paper import figure1_graph
>>> from repro.core.tsd import TSDIndex
>>> g = figure1_graph()
>>> store = IndexStore(tempfile.mkdtemp())
>>> version = store.put(g, tsd=TSDIndex.build(g))
>>> version.version
1
>>> store.load(g).tsd.score("v", 4)
3
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.graph.graph import Graph
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher
from repro.service.lock import StoreLock
from repro.service.snapshot import ScoreEntry, scores_from_payload
from repro.storage.codec import BINARY_NAMES, codec_for_artifact, get_codec
from repro.storage.writer import compact_artifact
from repro.util.jsonio import dumps_payload

_MANIFEST_FORMAT = "repro-index-store"
_MANIFEST_VERSION = 1

#: Artifact names the store understands, in persistence order.  The
#: ``scores`` artifact is a snapshot's persisted per-``k`` score cache
#: (:func:`repro.service.snapshot.scores_to_payload`), so hot
#: thresholds restart warm alongside the indexes.
ARTIFACT_NAMES = ("tsd", "gct", "hybrid", "scores")


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph: SHA-256 over vertices and canonical edges.

    The digest covers the insertion-ordered vertex list *and* the edge
    list, because index artifacts depend on both (the canonical ranking
    contract breaks ties by insertion order).  Labels must be
    JSON-encodable — the same requirement the index savers impose.

    Edges are digested as index pairs sorted by insertion position:
    :meth:`Graph.edges` iterates adjacency *sets*, whose internal order
    is not preserved by :meth:`Graph.copy`, so hashing the raw
    iteration order would give a graph and its copy different keys.
    """
    position = {v: i for i, v in enumerate(graph.vertices())}
    edges = sorted((position[u], position[v]) for u, v in graph.edges())
    blob = json.dumps([list(graph.vertices()), edges],
                      separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreVersion:
    """One version of one graph's artifact lineage."""

    key: str
    version: int
    artifacts: Dict[str, str] = field(default_factory=dict)  # name -> relpath
    #: name -> codec for artifacts not stored as JSON (absent = json).
    codecs: Dict[str, str] = field(default_factory=dict)

    @property
    def artifact_names(self) -> List[str]:
        """Artifacts present in this version, in canonical order."""
        return [name for name in ARTIFACT_NAMES if name in self.artifacts]

    def codec_of(self, name: str) -> str:
        """The codec one artifact was written with (``json`` default)."""
        return self.codecs.get(name, "json")


@dataclass(frozen=True)
class StoredIndexes:
    """Deserialized artifacts of one store version, ready to serve."""

    version: StoreVersion
    tsd: Optional[TSDIndex] = None
    gct: Optional[GCTIndex] = None
    hybrid: Optional[HybridSearcher] = None
    scores: Optional[Dict[int, ScoreEntry]] = None

    @property
    def loaded_names(self) -> List[str]:
        """Names of the artifacts that were actually materialised."""
        return [name for name, obj in
                (("tsd", self.tsd), ("gct", self.gct),
                 ("hybrid", self.hybrid), ("scores", self.scores))
                if obj is not None]


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`IndexStore.compact` pass reclaimed."""

    removed_versions: int
    removed_keys: Tuple[str, ...]
    removed_files: int
    reclaimed_bytes: int
    kept_versions: int

    def summary(self) -> str:
        """One-line human summary for service logs."""
        return (f"compacted: {self.removed_versions} version(s) and "
                f"{len(self.removed_keys)} superseded lineage(s) removed, "
                f"{self.removed_files} file(s) deleted "
                f"({self.reclaimed_bytes:,} bytes), "
                f"{self.kept_versions} version(s) kept")

    def to_payload(self) -> Dict[str, object]:
        """JSON-able form (the HTTP ``/compact`` response body)."""
        return {
            "removed_versions": self.removed_versions,
            "removed_keys": list(self.removed_keys),
            "removed_files": self.removed_files,
            "reclaimed_bytes": self.reclaimed_bytes,
            "kept_versions": self.kept_versions,
        }


class IndexStore:
    """A persistent, versioned store of index artifacts keyed by graph.

    Parameters
    ----------
    root:
        Directory holding the store; created (with parents) if missing.
        An existing directory must contain a valid manifest or be empty.
    codec:
        Artifact codec for *new* ``tsd``/``gct`` writes: ``"json"``
        (default, the original whole-payload files) or ``"bin"`` (the
        paged binary format of :mod:`repro.storage`, opened lazily
        through an mmap on :meth:`load`).  Reading is always
        codec-agnostic — the manifest records each artifact's codec.
    """

    def __init__(self, root, codec: str = "json") -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self._root / "manifest.json"
        self._codec_name = get_codec(codec).name  # validates the name
        # In-process writer mutex, held alongside the cross-process
        # StoreLock: even one process can host concurrent writers (the
        # router's per-graph update threads share this store), and the
        # pid-file fallback lock is not reentrant across threads.
        self._write_mutex = threading.Lock()
        # Parsed-manifest cache keyed by (st_mtime_ns, st_size): every
        # locked operation re-reads the manifest to merge concurrent
        # writers, but re-*parsing* an unchanged file is pure waste on
        # a hot update path.  The tuple is rebound atomically, so a
        # lock-free refresh() sees the old or new pair, never a mix.
        self._manifest_cache: Optional[Tuple[Tuple[int, int], Dict]] = None
        if self._manifest_path.exists():
            self._manifest = self._read_manifest()
        else:
            self._manifest = {"format": _MANIFEST_FORMAT,
                              "version": _MANIFEST_VERSION, "graphs": {}}
            self._write_manifest()

    # ------------------------------------------------------------------
    # Manifest plumbing
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def codec(self) -> str:
        """The codec new ``tsd``/``gct`` artifacts are written with."""
        return self._codec_name

    def _read_manifest(self) -> Dict:
        try:
            stat = self._manifest_path.stat()
            stamp = (stat.st_mtime_ns, stat.st_size)
            cached = self._manifest_cache
            if cached is not None and cached[0] == stamp:
                return cached[1]  # unchanged on disk: skip the parse
            manifest = json.loads(
                self._manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"{self._manifest_path}: unreadable manifest ({exc})") from exc
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise StoreError(
                f"{self._manifest_path}: not an index-store manifest")
        if manifest.get("version") != _MANIFEST_VERSION:
            raise StoreError(
                f"{self._manifest_path}: unsupported manifest version "
                f"{manifest.get('version')!r}")
        self._manifest_cache = (stamp, manifest)
        return manifest

    def _write_manifest(self) -> None:
        # Write-then-rename keeps the manifest readable even if the
        # process dies mid-write (a torn manifest would orphan every
        # artifact in the store).
        self._write_json_atomic(self._manifest_path, self._manifest,
                                indent=2)
        try:
            stat = self._manifest_path.stat()
        except OSError:  # pragma: no cover - raced by a concurrent rm
            self._manifest_cache = None
            return
        # The freshly replaced file *is* self._manifest: stamp it so the
        # next locked re-read skips the parse instead of re-reading our
        # own write back.
        self._manifest_cache = ((stat.st_mtime_ns, stat.st_size),
                                self._manifest)

    def _write_json_atomic(self, path: Path, payload: Dict,
                           indent: Optional[int] = None) -> None:
        """Write JSON via tmp + :func:`os.replace` — never a torn file."""
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(dumps_payload(payload, indent=indent),
                       encoding="utf-8")
        os.replace(tmp, path)

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive on-disk lock + manifest re-read for store writes.

        Two processes (or two :class:`IndexStore` instances) sharing a
        root each hold their own in-memory manifest; without the lock
        and re-read, concurrent ``put`` calls would race on
        ``manifest.json`` and the last write would silently drop the
        other's versions.  A :class:`~repro.service.lock.StoreLock` on
        ``<root>/.lock`` serialises writers across processes (``flock``
        on POSIX, a stale-breaking pid file elsewhere — either way a
        writer killed mid-``put`` never wedges later writers);
        re-reading the manifest under the lock merges whatever others
        committed meanwhile.  An in-process mutex wraps the whole
        section, so concurrent writer threads in *one* process (the
        router's per-graph updates) stay safe regardless of platform.
        """
        with self._write_mutex:
            lock = StoreLock(self._root / ".lock")
            lock.acquire()
            try:
                if self._manifest_path.exists():
                    self._manifest = self._read_manifest()
                yield
            finally:
                lock.release()

    def refresh(self) -> None:
        """Re-read the manifest from disk (another writer may have
        committed since this instance last looked)."""
        if self._manifest_path.exists():
            self._manifest = self._read_manifest()  # repro-lint: disable=RL002 -- single atomic rebind; readers see the old or new snapshot, never a torn one

    # ------------------------------------------------------------------
    # Catalogue queries
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Graph keys with at least one stored version."""
        return list(self._manifest["graphs"])

    def has(self, graph: Graph, key: Optional[str] = None) -> bool:
        """Whether this graph's content has any stored version.

        ``key`` skips re-hashing when the caller already fingerprinted
        the graph (hashing every edge is the expensive part of a
        catalogue lookup on a large graph).
        """
        return (key or graph_fingerprint(graph)) in self._manifest["graphs"]

    @staticmethod
    def _record_artifacts(record: Dict) -> Dict[str, str]:
        """Artifact paths of one version record (metadata keys dropped)."""
        return {name: record[name] for name in ARTIFACT_NAMES
                if name in record}

    @staticmethod
    def _record_codecs(record: Dict) -> Dict[str, str]:
        """Per-artifact codecs of one version record (json omitted)."""
        return dict(record.get("codecs", {}))

    def _version_from_record(self, key: str, number: int,
                             record: Dict) -> StoreVersion:
        return StoreVersion(key=key, version=number,
                            artifacts=self._record_artifacts(record),
                            codecs=self._record_codecs(record))

    def versions(self, key: str) -> List[StoreVersion]:
        """All versions of one graph's lineage, oldest first."""
        entry = self._manifest["graphs"].get(key)
        if entry is None:
            raise StoreError(f"no stored indexes for graph key {key!r}")
        return [self._version_from_record(key, int(number), record)
                for number, record in sorted(entry["versions"].items(),
                                             key=lambda item: int(item[0]))]

    def current(self, graph: Graph, key: Optional[str] = None) -> StoreVersion:
        """The current (latest) version of this graph's lineage.

        ``key`` skips re-hashing, as in :meth:`has`.
        """
        key = key or graph_fingerprint(graph)
        entry = self._manifest["graphs"].get(key)
        if entry is None:
            raise StoreError(
                f"no stored indexes for this graph (key {key[:12]}…); "
                "run a build first (repro serve-build)")
        number = entry["current"]
        return self._version_from_record(key, number,
                                         entry["versions"][str(number)])

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, graph: Graph, *,
            tsd: Optional[TSDIndex] = None,
            gct: Optional[GCTIndex] = None,
            hybrid: Optional[HybridSearcher] = None,
            scores: Optional[Dict] = None,
            previous: Optional[StoreVersion] = None,
            changed_vertices=None) -> StoreVersion:
        """Persist artifacts as a new version of this graph's lineage.

        Artifacts passed as ``None`` are carried forward by reference
        from this graph's current version — only changed artifacts are
        rewritten, which is what makes a re-version cheap.  At least
        one artifact must end up in the new version.  ``scores`` is a
        :func:`~repro.service.snapshot.scores_to_payload` dict (the
        snapshot's per-``k`` score cache); an empty payload is skipped
        rather than stored.

        ``previous`` links lineages across *content changes*: a live
        update produces a graph with a new fingerprint, so its patched
        artifacts land under a new key whose version numbering
        continues from (and whose manifest record points back to) the
        pre-update version.  Nothing is carried forward across a
        content change — an artifact computed for different graph
        content is stale by definition (a carried-over hybrid ranking
        would silently serve pre-update scores), so a cross-lineage
        version holds exactly the artifacts supplied here.

        ``changed_vertices`` (an update batch's affected-vertex set)
        enables delta re-versions under the binary codec: the previous
        version's artifact bytes are carried over with only the changed
        records appended and their dictionary offsets patched — no
        unchanged record is re-encoded (see
        :func:`repro.storage.writer.write_delta`).  Ignored under the
        JSON codec or when no usable base artifact exists.

        Artifact files are written via tmp + :func:`os.replace` and the
        whole operation holds the store's on-disk lock (with a manifest
        re-read), so a crash mid-write never leaves a torn artifact and
        concurrent writers sharing a root never lose versions.
        """
        if scores is not None and not scores.get("thresholds"):
            scores = None  # nothing cached: don't store an empty payload
        with self._locked():
            key = graph_fingerprint(graph)
            entry = self._manifest["graphs"].setdefault(
                key, {"current": 0, "versions": {}})
            number = entry["current"] + 1
            if previous is not None and previous.version + 1 > number:
                number = previous.version + 1
            version_dir = self._root / "objects" / key / f"v{number}"
            carried = entry["versions"].get(str(entry["current"]), {})
            carried_codecs = self._record_codecs(carried)

            artifacts: Dict[str, str] = {}
            codecs: Dict[str, str] = {}
            supplied = {"tsd": tsd, "gct": gct, "hybrid": hybrid,
                        "scores": scores}
            for name in ARTIFACT_NAMES:
                obj = supplied[name]
                if obj is not None:
                    codec_name = codec_for_artifact(name, self._codec_name)
                    codec = get_codec(codec_name)
                    version_dir.mkdir(parents=True, exist_ok=True)
                    path = version_dir / f"{name}.{codec.extension}"
                    payload = obj if name == "scores" else obj.to_payload()
                    written = False
                    if changed_vertices is not None:
                        base = self._delta_base(name, previous, carried,
                                                carried_codecs, codec_name)
                        if base is not None:
                            written = codec.write_incremental(
                                self._root / base, path, payload,
                                changed_vertices, fingerprint=key)
                    if not written:
                        codec.write(path, payload, fingerprint=key)
                    artifacts[name] = str(path.relative_to(self._root))
                    if codec_name != "json":
                        codecs[name] = codec_name
                elif name in carried:
                    artifacts[name] = carried[name]  # carried forward
                    if name in carried_codecs:
                        codecs[name] = carried_codecs[name]
            if not any(name in artifacts for name in
                       ("tsd", "gct", "hybrid")):
                raise StoreError("refusing to store an index-less version: "
                                 "supply at least one of tsd=, gct=, hybrid=")

            record = dict(artifacts)
            if codecs:
                record["codecs"] = dict(codecs)
            if previous is not None and previous.key != key:
                record["parent"] = {"key": previous.key,
                                    "version": previous.version}
            entry["versions"][str(number)] = record
            entry["current"] = number
            self._write_manifest()
        return StoreVersion(key=key, version=number, artifacts=artifacts,
                            codecs=codecs)

    def _delta_base(self, name: str, previous: Optional[StoreVersion],
                    carried: Dict, carried_codecs: Dict[str, str],
                    codec_name: str) -> Optional[str]:
        """The relpath a delta write may build on, or ``None``.

        A usable base is the same-name artifact of the linked previous
        version (the cross-lineage update path) or of the same lineage's
        current version, written with the *same* codec.
        """
        if previous is not None and name in previous.artifacts \
                and previous.codec_of(name) == codec_name:
            return previous.artifacts[name]
        if name in carried \
                and carried_codecs.get(name, "json") == codec_name:
            return carried[name]
        return None

    def put_scores(self, graph: Graph, scores: Dict,
                   key: Optional[str] = None) -> Optional[StoreVersion]:
        """Attach (or refresh) the current version's ``scores`` artifact.

        Score caches are derived data that grows *while serving* — hot
        thresholds get memoised long after the indexes were persisted —
        so unlike :meth:`put` this updates the current version's record
        in place instead of minting a new version.  Returns the updated
        :class:`StoreVersion`, or ``None`` when the payload holds no
        thresholds (an empty cache is not worth a write).  ``key``
        skips re-hashing, as in :meth:`has`.
        """
        if not scores.get("thresholds"):
            return None
        with self._locked():
            version = self.current(graph, key=key)
            entry = self._manifest["graphs"][version.key]
            version_dir = (self._root / "objects" / version.key
                           / f"v{version.version}")
            version_dir.mkdir(parents=True, exist_ok=True)
            path = version_dir / "scores.json"
            self._write_json_atomic(path, scores)
            relpath = str(path.relative_to(self._root))
            entry["versions"][str(version.version)]["scores"] = relpath
            self._write_manifest()
            artifacts = dict(version.artifacts)
            artifacts["scores"] = relpath
        return StoreVersion(key=version.key, version=version.version,
                            artifacts=artifacts, codecs=version.codecs)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _artifact_payload(self, version: StoreVersion, name: str) -> Dict:
        path = self._root / version.artifacts[name]
        return get_codec(version.codec_of(name)).load_payload(path)

    def load(self, graph: Graph,
             names: Optional[List[str]] = None,
             key: Optional[str] = None,
             lazy: bool = True) -> StoredIndexes:
        """Materialise the current version's artifacts for this graph.

        ``names`` restricts which artifacts are deserialized (all stored
        ones by default); ``key`` skips re-hashing, as in :meth:`has`.
        The hybrid artifact is re-attached to ``graph`` — its payload
        carries rankings, not the graph.

        ``lazy`` (default) opens binary-codec ``tsd``/``gct`` artifacts
        through the mmap reader — the index is constructed from the
        file's label list and a lazy forest provider, so a warm start
        decodes no per-vertex record until a query touches it.  Pass
        ``lazy=False`` to force full materialisation (the conversion
        and inspection paths want the whole payload in memory).
        JSON-codec artifacts always materialise.
        """
        version = self.current(graph, key=key)
        wanted = version.artifact_names if names is None else list(names)
        tsd = gct = hybrid = scores = None
        for name in wanted:
            if name not in version.artifacts:
                continue
            path = self._root / version.artifacts[name]
            source = str(path)
            codec = get_codec(version.codec_of(name))
            if lazy and name in ("tsd", "gct"):
                index = codec.open_index(name, path)
                if index is not None:
                    if name == "tsd":
                        tsd = index
                    else:
                        gct = index
                    continue
            payload = codec.load_payload(path)
            if name == "tsd":
                tsd = TSDIndex.from_payload(payload, source=source)
            elif name == "gct":
                gct = GCTIndex.from_payload(payload, source=source)
            elif name == "hybrid":
                hybrid = HybridSearcher.from_payload(graph, payload,
                                                     source=source)
            elif name == "scores":
                scores = scores_from_payload(payload)
        return StoredIndexes(version=version, tsd=tsd, gct=gct,
                             hybrid=hybrid, scores=scores)

    # ------------------------------------------------------------------
    # Codec migration
    # ------------------------------------------------------------------
    def convert(self, to: str) -> int:
        """Migrate every ``tsd``/``gct`` artifact to codec ``to`` in place.

        Each physical file converts exactly once — carry-forward means
        several version records can reference one relpath, and all of
        them are rewired to the converted file.  New files are written
        (tmp + :func:`os.replace`) before the manifest flips and the old
        files are unlinked, so a crash mid-conversion leaves a readable
        store: either the manifest still points at the old files, or it
        points at complete new ones.  Returns the number of files
        converted.
        """
        target = get_codec(to)
        converted = 0
        with self._locked():
            graphs = self._manifest["graphs"]
            # Pass 1: convert each unique referenced file once.
            new_relpath: Dict[str, str] = {}  # old relpath -> new relpath
            for key, entry in graphs.items():
                for record in entry["versions"].values():
                    codecs = record.get("codecs", {})
                    for name in BINARY_NAMES:
                        relpath = record.get(name)
                        if relpath is None or relpath in new_relpath:
                            continue
                        current_codec = codecs.get(name, "json")
                        if current_codec == target.name:
                            continue
                        path = self._root / relpath
                        payload = get_codec(current_codec).load_payload(path)
                        new_path = path.with_suffix("." + target.extension)
                        target.write(new_path, payload, fingerprint=key)
                        new_relpath[relpath] = str(
                            new_path.relative_to(self._root))
                        converted += 1
            # Pass 2: rewire every record that references a converted file.
            for entry in graphs.values():
                for record in entry["versions"].values():
                    codecs = dict(record.get("codecs", {}))
                    for name in BINARY_NAMES:
                        relpath = record.get(name)
                        if relpath not in new_relpath:
                            continue
                        record[name] = new_relpath[relpath]
                        if target.name == "json":
                            codecs.pop(name, None)
                        else:
                            codecs[name] = target.name
                    if codecs:
                        record["codecs"] = codecs
                    else:
                        record.pop("codecs", None)
            self._write_manifest()
            for relpath in new_relpath:
                try:
                    (self._root / relpath).unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
        return converted

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, keep: Iterable[str] = ()) -> CompactionReport:
        """Garbage-collect versions unreachable from any lineage head.

        A long-running service re-versions its lineage on every update
        batch, so the store grows without bound.  Compaction keeps only
        the *heads*: each graph key's current version, minus keys whose
        current version has been superseded by a cross-lineage child
        (a ``parent`` link points at it — the update lineage moved on
        to new graph content).  Everything else is dropped from the
        manifest.

        ``keep`` names graph keys whose current version must survive
        even when superseded — a caller (the router) may still be
        *serving* a lineage another service's updates have moved past.

        Artifact *files* are refcounted by relpath before deletion: a
        surviving record may reference a file that physically lives
        under a pruned version's directory (carry-forward), so only
        files no surviving record references are deleted.  ``parent``
        links whose target was pruned are stripped — a surviving
        record never dangles.

        Warm starts of every surviving head keep working unchanged; a
        warm start of a *superseded* lineage (pre-update graph content)
        will no longer find its versions — that is the space being
        reclaimed.
        """
        with self._locked():
            graphs = self._manifest["graphs"]

            # (key, version) pairs referenced as a cross-lineage parent:
            # their lineage was superseded by the child's content.
            superseded: Set[Tuple[str, int]] = set()
            for entry in graphs.values():
                for record in entry["versions"].values():
                    parent = record.get("parent")
                    if parent is not None:
                        superseded.add((parent["key"],
                                        int(parent["version"])))

            protected = set(keep)
            removed_versions = 0
            removed_keys: List[str] = []
            for key in list(graphs):
                entry = graphs[key]
                current = entry["current"]
                for number in list(entry["versions"]):
                    if int(number) == current and \
                            ((key, current) not in superseded
                             or key in protected):
                        continue  # a live head: keep
                    del entry["versions"][number]
                    removed_versions += 1
                if not entry["versions"]:
                    del graphs[key]
                    removed_keys.append(key)

            # Strip parent links whose target no longer exists.
            for entry in graphs.values():
                for record in entry["versions"].values():
                    parent = record.get("parent")
                    if parent is None:
                        continue
                    target = graphs.get(parent["key"], {}).get(
                        "versions", {}).get(str(parent["version"]))
                    if target is None:
                        del record["parent"]

            # Refcount artifact relpaths, then delete unreferenced files.
            referenced: Set[str] = set()
            for entry in graphs.values():
                for record in entry["versions"].values():
                    referenced.update(self._record_artifacts(record).values())
            removed_files = 0
            reclaimed = 0
            objects = self._root / "objects"
            if objects.is_dir():
                for path in sorted(objects.rglob("*")):
                    if not path.is_file():
                        continue
                    if str(path.relative_to(self._root)) in referenced:
                        continue
                    reclaimed += path.stat().st_size
                    path.unlink()
                    removed_files += 1
                for directory in sorted(
                        (p for p in objects.rglob("*") if p.is_dir()),
                        reverse=True):
                    if not any(directory.iterdir()):
                        directory.rmdir()

            # Rewrite surviving binary artifacts' pages: delta writes
            # leave superseded record blocks dead in the heap, and only
            # compaction reclaims them (the delta path is what keeps
            # apply_updates from rewriting whole artifacts).
            for relpath in sorted(referenced):
                if not relpath.endswith(".bin"):
                    continue
                path = self._root / relpath
                if path.is_file():
                    reclaimed += compact_artifact(path)

            self._write_manifest()
            kept = sum(len(entry["versions"]) for entry in graphs.values())
        return CompactionReport(
            removed_versions=removed_versions,
            removed_keys=tuple(removed_keys),
            removed_files=removed_files,
            reclaimed_bytes=reclaimed,
            kept_versions=kept,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IndexStore({str(self._root)!r}, "
                f"graphs={len(self._manifest['graphs'])})")
