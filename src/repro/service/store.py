"""The :class:`IndexStore`: a versioned on-disk home for index artifacts.

The paper's indexes only pay off when they are built once and served
many times — yet a restarted process used to start cold and rebuild
everything.  The store closes that gap: it keeps, per *graph content*,
a versioned lineage of index artifacts (TSD forests, GCT supernode
forests, hybrid rankings) so any later process serving the same graph
can skip every build.

Layout on disk::

    <root>/
      manifest.json                    # the store catalogue
      objects/<graph-key>/v<N>/tsd.json
      objects/<graph-key>/v<N>/gct.json
      objects/<graph-key>/v<N>/hybrid.json

Design notes
------------
* **Content addressing.**  Graphs are keyed by :func:`graph_fingerprint`
  — a SHA-256 over the insertion-ordered vertex list and the canonical
  edge list.  Two structurally identical graphs (same labels, same
  insertion order) share a key, so a warm start never needs a path or a
  name, just the graph it is about to serve.
* **Versioning.**  Every :meth:`IndexStore.put` creates a new version.
  Artifacts the caller did not re-supply are *carried forward* by
  reference: the manifest records each artifact's relative path, so a
  live update that only patched the TSD and GCT artifacts re-versions
  the lineage without rewriting the untouched hybrid rankings.
* **Format ownership.**  The store persists payloads produced by
  ``TSDIndex.to_payload`` / ``GCTIndex.to_payload`` /
  ``HybridSearcher.to_payload`` and hands them back to the matching
  ``from_payload`` — it never interprets artifact internals.

Examples
--------
>>> import tempfile
>>> from repro.datasets.paper import figure1_graph
>>> from repro.core.tsd import TSDIndex
>>> g = figure1_graph()
>>> store = IndexStore(tempfile.mkdtemp())
>>> version = store.put(g, tsd=TSDIndex.build(g))
>>> version.version
1
>>> store.load(g).tsd.score("v", 4)
3
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import StoreError
from repro.graph.graph import Graph
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher

_MANIFEST_FORMAT = "repro-index-store"
_MANIFEST_VERSION = 1

#: Artifact names the store understands, in persistence order.
ARTIFACT_NAMES = ("tsd", "gct", "hybrid")


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph: SHA-256 over vertices and canonical edges.

    The digest covers the insertion-ordered vertex list *and* the edge
    list, because index artifacts depend on both (the canonical ranking
    contract breaks ties by insertion order).  Labels must be
    JSON-encodable — the same requirement the index savers impose.

    Edges are digested as index pairs sorted by insertion position:
    :meth:`Graph.edges` iterates adjacency *sets*, whose internal order
    is not preserved by :meth:`Graph.copy`, so hashing the raw
    iteration order would give a graph and its copy different keys.
    """
    position = {v: i for i, v in enumerate(graph.vertices())}
    edges = sorted((position[u], position[v]) for u, v in graph.edges())
    blob = json.dumps([list(graph.vertices()), edges],
                      separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreVersion:
    """One version of one graph's artifact lineage."""

    key: str
    version: int
    artifacts: Dict[str, str] = field(default_factory=dict)  # name -> relpath

    @property
    def artifact_names(self) -> List[str]:
        """Artifacts present in this version, in canonical order."""
        return [name for name in ARTIFACT_NAMES if name in self.artifacts]


@dataclass(frozen=True)
class StoredIndexes:
    """Deserialized artifacts of one store version, ready to serve."""

    version: StoreVersion
    tsd: Optional[TSDIndex] = None
    gct: Optional[GCTIndex] = None
    hybrid: Optional[HybridSearcher] = None

    @property
    def loaded_names(self) -> List[str]:
        """Names of the artifacts that were actually materialised."""
        return [name for name, obj in
                (("tsd", self.tsd), ("gct", self.gct),
                 ("hybrid", self.hybrid)) if obj is not None]


class IndexStore:
    """A persistent, versioned store of index artifacts keyed by graph.

    Parameters
    ----------
    root:
        Directory holding the store; created (with parents) if missing.
        An existing directory must contain a valid manifest or be empty.
    """

    def __init__(self, root) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self._root / "manifest.json"
        if self._manifest_path.exists():
            self._manifest = self._read_manifest()
        else:
            self._manifest = {"format": _MANIFEST_FORMAT,
                              "version": _MANIFEST_VERSION, "graphs": {}}
            self._write_manifest()

    # ------------------------------------------------------------------
    # Manifest plumbing
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def _read_manifest(self) -> Dict:
        try:
            manifest = json.loads(
                self._manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"{self._manifest_path}: unreadable manifest ({exc})") from exc
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise StoreError(
                f"{self._manifest_path}: not an index-store manifest")
        if manifest.get("version") != _MANIFEST_VERSION:
            raise StoreError(
                f"{self._manifest_path}: unsupported manifest version "
                f"{manifest.get('version')!r}")
        return manifest

    def _write_manifest(self) -> None:
        # Write-then-rename keeps the manifest readable even if the
        # process dies mid-write (a torn manifest would orphan every
        # artifact in the store).
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self._manifest, indent=2),
                       encoding="utf-8")
        os.replace(tmp, self._manifest_path)

    # ------------------------------------------------------------------
    # Catalogue queries
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Graph keys with at least one stored version."""
        return list(self._manifest["graphs"])

    def has(self, graph: Graph, key: Optional[str] = None) -> bool:
        """Whether this graph's content has any stored version.

        ``key`` skips re-hashing when the caller already fingerprinted
        the graph (hashing every edge is the expensive part of a
        catalogue lookup on a large graph).
        """
        return (key or graph_fingerprint(graph)) in self._manifest["graphs"]

    @staticmethod
    def _record_artifacts(record: Dict) -> Dict[str, str]:
        """Artifact paths of one version record (metadata keys dropped)."""
        return {name: record[name] for name in ARTIFACT_NAMES
                if name in record}

    def versions(self, key: str) -> List[StoreVersion]:
        """All versions of one graph's lineage, oldest first."""
        entry = self._manifest["graphs"].get(key)
        if entry is None:
            raise StoreError(f"no stored indexes for graph key {key!r}")
        return [StoreVersion(key=key, version=int(number),
                             artifacts=self._record_artifacts(record))
                for number, record in sorted(entry["versions"].items(),
                                             key=lambda item: int(item[0]))]

    def current(self, graph: Graph, key: Optional[str] = None) -> StoreVersion:
        """The current (latest) version of this graph's lineage.

        ``key`` skips re-hashing, as in :meth:`has`.
        """
        key = key or graph_fingerprint(graph)
        entry = self._manifest["graphs"].get(key)
        if entry is None:
            raise StoreError(
                f"no stored indexes for this graph (key {key[:12]}…); "
                "run a build first (repro serve-build)")
        number = entry["current"]
        return StoreVersion(
            key=key, version=number,
            artifacts=self._record_artifacts(entry["versions"][str(number)]))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, graph: Graph, *,
            tsd: Optional[TSDIndex] = None,
            gct: Optional[GCTIndex] = None,
            hybrid: Optional[HybridSearcher] = None,
            previous: Optional[StoreVersion] = None) -> StoreVersion:
        """Persist artifacts as a new version of this graph's lineage.

        Artifacts passed as ``None`` are carried forward by reference
        from this graph's current version — only changed artifacts are
        rewritten, which is what makes a re-version cheap.  At least
        one artifact must end up in the new version.

        ``previous`` links lineages across *content changes*: a live
        update produces a graph with a new fingerprint, so its patched
        artifacts land under a new key whose version numbering
        continues from (and whose manifest record points back to) the
        pre-update version.  Nothing is carried forward across a
        content change — an artifact computed for different graph
        content is stale by definition (a carried-over hybrid ranking
        would silently serve pre-update scores), so a cross-lineage
        version holds exactly the artifacts supplied here.
        """
        key = graph_fingerprint(graph)
        entry = self._manifest["graphs"].setdefault(
            key, {"current": 0, "versions": {}})
        number = entry["current"] + 1
        if previous is not None and previous.version + 1 > number:
            number = previous.version + 1
        version_dir = self._root / "objects" / key / f"v{number}"
        carried = entry["versions"].get(str(entry["current"]), {})

        artifacts: Dict[str, str] = {}
        supplied = {"tsd": tsd, "gct": gct, "hybrid": hybrid}
        for name in ARTIFACT_NAMES:
            obj = supplied[name]
            if obj is not None:
                version_dir.mkdir(parents=True, exist_ok=True)
                path = version_dir / f"{name}.json"
                path.write_text(json.dumps(obj.to_payload()),
                                encoding="utf-8")
                artifacts[name] = str(path.relative_to(self._root))
            elif name in carried:
                artifacts[name] = carried[name]  # carried forward
        if not artifacts:
            raise StoreError("refusing to store an empty version: supply "
                             "at least one of tsd=, gct=, hybrid=")

        record = dict(artifacts)
        if previous is not None and previous.key != key:
            record["parent"] = {"key": previous.key,
                                "version": previous.version}
        entry["versions"][str(number)] = record
        entry["current"] = number
        self._write_manifest()
        return StoreVersion(key=key, version=number, artifacts=artifacts)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _artifact_payload(self, version: StoreVersion, name: str) -> Dict:
        path = self._root / version.artifacts[name]
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"{path}: unreadable artifact ({exc})") from exc

    def load(self, graph: Graph,
             names: Optional[List[str]] = None,
             key: Optional[str] = None) -> StoredIndexes:
        """Materialise the current version's artifacts for this graph.

        ``names`` restricts which artifacts are deserialized (all stored
        ones by default); ``key`` skips re-hashing, as in :meth:`has`.
        The hybrid artifact is re-attached to ``graph`` — its payload
        carries rankings, not the graph.
        """
        version = self.current(graph, key=key)
        wanted = version.artifact_names if names is None else list(names)
        tsd = gct = hybrid = None
        for name in wanted:
            if name not in version.artifacts:
                continue
            payload = self._artifact_payload(version, name)
            source = str(self._root / version.artifacts[name])
            if name == "tsd":
                tsd = TSDIndex.from_payload(payload, source=source)
            elif name == "gct":
                gct = GCTIndex.from_payload(payload, source=source)
            elif name == "hybrid":
                hybrid = HybridSearcher.from_payload(graph, payload,
                                                     source=source)
        return StoredIndexes(version=version, tsd=tsd, gct=gct, hybrid=hybrid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IndexStore({str(self._root)!r}, "
                f"graphs={len(self._manifest['graphs'])})")
