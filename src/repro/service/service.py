""":class:`DiversityService`: snapshot-isolated serving with live updates.

The service is the deployable front over the paper's machinery: it
answers ``top_r`` / ``score`` / ``top_r_many`` from an immutable
:class:`~repro.service.snapshot.Snapshot` (readers never lock), applies
edge batches through the affected-vertex repair of
:mod:`repro.service.updates` (writers build the *next* snapshot, then
atomically swap it in), and keeps every artifact warm across restarts
through the :class:`~repro.service.store.IndexStore`.

Concurrency model
-----------------
* **Reads are lock-free.**  Each query captures the current snapshot
  reference once (an atomic load) and serves entirely from it; a swap
  mid-query is invisible to the reader.
* **Writes are serialised.**  ``apply_updates`` holds the single writer
  lock while it builds the next snapshot — readers keep answering from
  the current one the whole time — and publishes it with one reference
  assignment.

Examples
--------
>>> from repro.graph.graph import Graph
>>> service = DiversityService.start(Graph(edges=[(0, 1), (1, 2), (0, 2)]))
>>> service.top_r(3, 1).vertices
[0]
>>> report = service.apply_updates([("insert", 2, 3)])
>>> report.num_updates
1
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import StoreError
from repro.graph.graph import Graph, Vertex
from repro.core.results import SearchResult
from repro.service.snapshot import Snapshot, scores_to_payload
from repro.service.store import IndexStore, StoreVersion
from repro.service.updates import UpdateLike, UpdateReport, apply_batch


class DiversityService:
    """Concurrent structural-diversity serving over one graph.

    Build with :meth:`start` (warm from a store when possible, cold
    otherwise), :meth:`warm` (store required), or :meth:`cold`.
    """

    def __init__(self, snapshot: Snapshot,
                 store: Optional[IndexStore] = None,
                 build_jobs: Optional[int] = 0) -> None:
        self._snapshot = snapshot
        self._store = store
        #: Worker request for every build this service triggers (cold
        #: snapshot builds and update-batch ego repairs); see
        #: :meth:`repro.build.BuildPlan.decide`.  Artifacts are
        #: byte-identical whatever the strategy.
        self.build_jobs = build_jobs
        self._write_lock = threading.Lock()
        # Counters get their own lock: the *serving* path stays
        # lock-free (one atomic snapshot-reference read), but a bare
        # `+=` would lose increments under the very concurrency this
        # class advertises, making the stats ledger undercount.
        self._stats_lock = threading.Lock()
        self._queries = 0
        self._updates_applied = 0
        self._reports: List[UpdateReport] = []
        self.warm_started = False
        #: Called as ``listener(updates, report, version)`` inside the
        #: writer lock, right after each batch publishes.  The server
        #: router points this at the replication
        #: :class:`~repro.replication.feed.UpdateFeed` — invoking it
        #: under the lock is what guarantees feed order equals apply
        #: order when concurrent writers hit the same graph.
        self.update_listener: Optional[
            Callable[[Sequence[UpdateLike], UpdateReport, Optional[int]],
                     None]] = None

    def _count_queries(self, n: int) -> None:
        with self._stats_lock:
            self._queries += n

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def start(cls, graph: Graph,
              store: Optional[IndexStore] = None,
              build_jobs: Optional[int] = 0) -> "DiversityService":
        """Serve ``graph``, warm when the store already knows it.

        With a store: a stored lineage for this graph's content is
        loaded (zero index builds); otherwise the service cold-builds
        once — through the :mod:`repro.build` pipeline under
        ``build_jobs`` — and persists the artifacts so the *next* start
        is warm.
        """
        if store is not None and store.has(graph):
            return cls.warm(graph, store, build_jobs=build_jobs)
        return cls.cold(graph, store=store, build_jobs=build_jobs)

    @classmethod
    def warm(cls, graph: Graph, store: IndexStore,
             build_jobs: Optional[int] = 0) -> "DiversityService":
        """Serve from stored artifacts only — no index builds at all.

        ``build_jobs`` still matters later: update batches repair
        affected ego-networks under it.  Raises
        :class:`~repro.errors.StoreError` when the store has no lineage
        for this graph's content.
        """
        loaded = store.load(graph)
        snapshot = Snapshot(graph, tsd=loaded.tsd, gct=loaded.gct,
                            hybrid=loaded.hybrid, scores=loaded.scores,
                            version=loaded.version.version,
                            key=loaded.version.key)
        service = cls(snapshot, store=store, build_jobs=build_jobs)
        service.warm_started = True
        return service

    @classmethod
    def cold(cls, graph: Graph,
             store: Optional[IndexStore] = None,
             build_jobs: Optional[int] = 0) -> "DiversityService":
        """Build the snapshot from scratch; persist it when given a store."""
        snapshot = Snapshot.build(graph, jobs=build_jobs)
        service = cls(snapshot, store=store, build_jobs=build_jobs)
        if store is not None:
            version = store.put(graph, tsd=snapshot.tsd, gct=snapshot.gct)
            snapshot.version = version.version
            snapshot.key = version.key
        return service

    # ------------------------------------------------------------------
    # Reads: lock-free, always from one consistent snapshot
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> Snapshot:
        """The currently published snapshot (atomic reference read)."""
        return self._snapshot

    @property
    def store(self) -> Optional[IndexStore]:
        """The backing store, when the service persists its artifacts."""
        return self._store

    def top_r(self, k: int, r: int,
              collect_contexts: bool = True) -> SearchResult:
        """Canonical top-r answer from the current snapshot."""
        snapshot = self._snapshot  # capture once: swap-safe
        self._count_queries(1)
        return snapshot.top_r(k, r, collect_contexts=collect_contexts)

    def top_r_many(self, queries: Sequence[Tuple[int, int]],
                   collect_contexts: bool = True) -> List[SearchResult]:
        """A whole batch answered from one consistent snapshot."""
        snapshot = self._snapshot
        self._count_queries(len(queries))
        return snapshot.top_r_many(queries, collect_contexts=collect_contexts)

    def score(self, v: Vertex, k: int) -> int:
        """Point lookup from the current snapshot."""
        snapshot = self._snapshot
        self._count_queries(1)
        return snapshot.score(v, k)

    def contexts(self, v: Vertex, k: int) -> List[Set[Vertex]]:
        """Social contexts from the current snapshot."""
        snapshot = self._snapshot
        self._count_queries(1)
        return snapshot.contexts(v, k)

    # ------------------------------------------------------------------
    # Writes: build next snapshot, persist, swap
    # ------------------------------------------------------------------
    def apply_updates(self, updates: Sequence[UpdateLike]) -> UpdateReport:
        """Apply an edge batch and publish the next snapshot.

        Readers keep serving the previous snapshot until the swap; the
        store (when present) receives the patched artifacts as a new
        version linked to the previous one.
        """
        with self._write_lock:
            current = self._snapshot
            next_snapshot, report = apply_batch(current, updates,
                                                jobs=self.build_jobs)
            if self._store is not None:
                previous = self._version_of(current)
                # graph_view: store writes only read the graph
                # (fingerprint + payload), and Snapshot.graph would
                # charge a full defensive copy per update batch.
                # changed_vertices lets a binary-codec store patch only
                # the affected records instead of rewriting artifacts.
                version = self._store.put(
                    next_snapshot.graph_view,
                    tsd=next_snapshot.tsd, gct=next_snapshot.gct,
                    hybrid=next_snapshot.hybrid,
                    scores=scores_to_payload(next_snapshot.score_entries()),
                    previous=previous,
                    changed_vertices=report.affected_vertices)
                next_snapshot.version = version.version
                next_snapshot.key = version.key
            self._snapshot = next_snapshot  # atomic publish
            self._updates_applied += report.num_updates
            self._reports.append(report)
            if self.update_listener is not None:
                self.update_listener(updates, report, next_snapshot.version)
        return report

    def _version_of(self, snapshot: Snapshot) -> Optional[StoreVersion]:
        if snapshot.key is None:
            return None
        try:
            # key= skips re-fingerprinting (and graph_view skips the
            # defensive copy Snapshot.graph would make).
            return self._store.current(snapshot.graph_view, key=snapshot.key)
        except StoreError:
            # Expected: the lineage was compacted away (or never
            # persisted) — link-less re-version.  Anything else (I/O
            # failure, corrupt manifest) must propagate, not silently
            # drop the cross-lineage parent link.
            return None

    def persist_scores(self) -> List[int]:
        """Persist the current snapshot's score cache to the store.

        Writes the cached ``(score map, ranking)`` entries as the
        current store version's ``scores.json`` artifact, so the next
        warm start re-seeds them and hot thresholds restart warm.
        Returns the persisted thresholds.  Raises
        :class:`~repro.errors.StoreError` when the service has no
        store.
        """
        if self._store is None:
            raise StoreError(
                "this service has no store; start it with store= to "
                "persist score caches")
        snapshot = self._snapshot
        entries = snapshot.score_entries()
        self._store.put_scores(snapshot.graph_view,
                               scores_to_payload(entries),
                               key=snapshot.key)
        return sorted(entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def update_reports(self) -> List[UpdateReport]:
        """Every applied batch's ledger, oldest first."""
        return list(self._reports)

    def stats_payload(self) -> Dict[str, object]:
        """JSON-able service counters (the HTTP ``/stats`` building block)."""
        snapshot = self._snapshot
        with self._stats_lock:
            queries = self._queries
        return {
            "version": snapshot.version,
            "vertices": snapshot.num_vertices,
            "edges": snapshot.num_edges,
            "warm_started": self.warm_started,
            "queries": queries,
            "updates_applied": self._updates_applied,
            "update_batches": len(self._reports),
            "cached_thresholds": snapshot.cached_thresholds(),
        }

    def stats_summary(self) -> str:
        """Multi-line human-readable service report."""
        stats = self.stats_payload()
        lines = [
            f"snapshot:          v{stats['version']} "
            f"(|V|={stats['vertices']}, "
            f"|E|={stats['edges']})",
            f"started:           {'warm (from store)' if self.warm_started else 'cold (built)'}",
            f"queries served:    {stats['queries']}",
            f"updates applied:   {stats['updates_applied']} "
            f"({stats['update_batches']} batches)",
            f"cached thresholds: {stats['cached_thresholds'] or '-'}",
        ]
        if self._reports:
            lines.append("update batches:")
            lines.extend(f"  [{i}] {report.summary()}"
                         for i, report in enumerate(self._reports))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DiversityService(snapshot=v{self._snapshot.version}, "
                f"queries={self._queries}, "
                f"updates={self._updates_applied}, "
                f"store={'yes' if self._store is not None else 'no'})")
