"""Cross-process writer lock with owner-pid liveness (``<root>/.lock``).

The store's writer lock has two jobs: serialise writers that share a
root across processes, and *never wedge* when a writer dies holding it.
Both acquisition paths record the holder's pid in the lock file so a
stuck store is diagnosable over the wire (who holds — or last held —
the lock), and so staleness is detectable without the kernel's help:

* With :mod:`fcntl` (POSIX), the lock is an ``flock`` on the lock
  file.  The kernel releases a dead owner's lock automatically, so a
  writer killed mid-``put`` cannot wedge later writers; the recorded
  pid is pure observability (:func:`read_owner`).
* Without :mod:`fcntl`, the lock degrades to an exclusive-create pid
  file.  Here a dead owner *would* block every later writer forever,
  so acquisition reads the recorded pid and **breaks** locks whose
  owner is gone (``os.kill(pid, 0)`` raises).  Breaking is race-safe:
  the stale file is first atomically renamed aside via
  :func:`os.replace`, so of N concurrent breakers exactly one wins the
  rename — a *fresh* lock created after the break can never be
  unlinked by a racing breaker that read the old pid.

The pid is written with plain ``os.write`` on the held descriptor, not
the tmp + rename idiom: the lock file is advisory liveness metadata
scoped to the holder's lifetime, not durable store state — a torn pid
reads as "unknown owner", which the fallback treats as breakable only
after confirming no live process wrote it.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional

try:  # POSIX advisory file locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.errors import StoreError

#: Seconds between acquisition attempts when polling.
_POLL_INTERVAL = 0.02


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a process that is still running."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


def read_owner(path) -> Optional[int]:
    """The pid recorded in a lock file (``None``: missing/empty/garbled)."""
    try:
        text = Path(path).read_text(encoding="ascii", errors="replace")
    except OSError:
        return None
    try:
        pid = int(text.strip() or "0")
    except ValueError:
        return None
    return pid if pid > 0 else None


class StoreLock:
    """Exclusive cross-process lock on one path, pid-recorded.

    Use as a context manager or via :meth:`acquire` / :meth:`release`.
    ``timeout`` bounds how long acquisition waits on a *live* holder
    (``None`` blocks indefinitely, the store's historical behaviour);
    a dead holder never blocks — ``flock`` is kernel-released, and the
    pid-file fallback breaks stale owners itself.
    """

    def __init__(self, path, timeout: Optional[float] = None) -> None:
        self._path = Path(path)
        self._timeout = timeout
        self._fd: Optional[int] = None

    @property
    def path(self) -> Path:
        """The lock file's path."""
        return self._path

    def acquire(self) -> "StoreLock":
        """Take the lock (blocking, subject to ``timeout``)."""
        if self._fd is not None:
            raise StoreError(f"{self._path}: lock already held "
                             f"by this instance")
        if fcntl is not None:
            self._acquire_flock()
        else:
            self._acquire_pidfile()
        return self

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
            return
        os.close(fd)
        try:
            os.unlink(self._path)
        except OSError:  # pragma: no cover - raced by a breaker
            pass

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # -- flock path ----------------------------------------------------
    def _acquire_flock(self) -> None:
        fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o644)
        acquired = False
        try:
            if self._timeout is None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            else:
                deadline = time.monotonic() + self._timeout
                while True:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if time.monotonic() >= deadline:
                            raise StoreError(
                                f"{self._path}: lock held by "
                                f"{self._describe_owner()}; gave up "
                                f"after {self._timeout:.1f}s") from None
                        time.sleep(_POLL_INTERVAL)
            acquired = True
        finally:
            if not acquired:
                os.close(fd)
        self._record_pid(fd)
        self._fd = fd

    # -- pid-file fallback ---------------------------------------------
    def _acquire_pidfile(self) -> None:
        deadline = None if self._timeout is None \
            else time.monotonic() + self._timeout
        while True:
            try:
                fd = os.open(self._path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                owner = read_owner(self._path)
                if owner is None or not pid_alive(owner):
                    self._break_stale()
                    continue
                if deadline is not None \
                        and time.monotonic() >= deadline:
                    raise StoreError(
                        f"{self._path}: lock held by "
                        f"{self._describe_owner()}; gave up after "
                        f"{self._timeout:.1f}s")
                time.sleep(_POLL_INTERVAL)
                continue
            self._record_pid(fd)
            self._fd = fd
            return

    def _break_stale(self) -> None:
        """Remove a lock file whose recorded owner is gone.

        The rename-aside makes breaking single-winner: ``os.replace``
        is atomic, so of N breakers exactly one moves the stale file
        (the rest see the path gone and re-enter the acquire loop),
        and a fresh lock created after the rename is never collateral.
        """
        aside = self._path.with_name(self._path.name + ".stale")
        try:
            os.replace(self._path, aside)
        except OSError:
            return  # another breaker won, or the owner released
        try:
            os.unlink(aside)
        except OSError:  # pragma: no cover - raced unlink
            pass

    def _record_pid(self, fd: int) -> None:
        os.ftruncate(fd, 0)
        os.lseek(fd, 0, os.SEEK_SET)
        os.write(fd, f"{os.getpid()}\n".encode("ascii"))

    def _describe_owner(self) -> str:
        owner = read_owner(self._path)
        if owner is None:
            return "an unknown process"
        state = "alive" if pid_alive(owner) else "dead"
        return f"pid {owner} ({state})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "held" if self._fd is not None else "free"
        return f"StoreLock({str(self._path)!r}, {state})"
