""":class:`ClusterFrontend`: the router tier clients actually talk to.

One address for a fleet of worker processes.  The frontend terminates
client HTTP, looks the graph name up in the cluster's
:class:`~repro.cluster.shardmap.ShardMap`, and relays the request to
the owning worker over a pooled keep-alive
:class:`~repro.server.client.ServerClient` — status and body are
passed through **byte-for-byte**, so a routed answer is exactly what a
single-process :class:`~repro.server.router.DiversityRouter` serving
that graph would have returned.  Fleet-wide endpoints fan out to every
live worker and merge the JSON:

=========  =============================  ==============================
Method     Path                           Behaviour
=========  =============================  ==============================
``GET``    ``/graphs/<name>[/...]``       proxied to the owning worker
``POST``   ``/graphs/<name>/...``         proxied to the owning worker
``GET``    ``/graphs``                    fan-out, lists merged by name
``GET``    ``/stats``                     fan-out, counters summed
``GET``    ``/healthz``                   fan-out, ``degraded`` when a
                                          worker is down
``POST``   ``/compact``                   fan-out, reports summed
``GET``    ``/cluster``                   topology: slots, ports, pins,
                                          per-worker graph placement
=========  =============================  ==============================

When the owning worker is down the frontend answers **503** with a
``Retry-After`` header sized to the supervisor's restart interval —
the contractual "come back in a moment, the supervisor is respawning
it" — and never touches any other worker's graphs: a dead shard
degrades exactly one arc of the hash ring.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import InvalidParameterError, ServerError

#: Fleet-wide fan-out endpoints (everything else under /graphs routes).
_FANOUT_GET = ("healthz", "stats", "graphs", "cluster")


class ClusterRequestHandler(BaseHTTPRequestHandler):
    """Routes one request: proxy to the owning worker, or fan out."""

    server_version = "repro-cluster/1.0"
    protocol_version = "HTTP/1.1"
    # See DiversityRequestHandler: keep-alive + Nagle = ~40ms stalls.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def cluster(self):
        return self.server.cluster

    # -- plumbing (mirrors the worker handler's keep-alive care) -------
    def _respond(self, status: int, payload: Dict[str, object],
                 headers: Optional[Dict[str, str]] = None) -> None:
        self._relay(status, json.dumps(payload).encode("utf-8"),
                    headers=headers)

    def _relay(self, status: int, body: bytes,
               headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _drain_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            raise InvalidParameterError(
                f"bad Content-Length header: "
                f"{self.headers.get('Content-Length')!r}") from None
        return self.rfile.read(length) if length > 0 else b""

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        parsed = urlsplit(self.path)
        segments = [s for s in parsed.path.split("/") if s]
        try:
            body = self._drain_body()
            handled = self._route(method, segments, body)
        except InvalidParameterError as exc:
            self._respond(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover; repro-lint: disable=RL003 -- router threads must outlive any single bad request
            self._respond(500, {"error": f"internal error: {exc}"})
        else:
            if not handled:
                self._respond(404, {"error": f"no such endpoint: "
                                             f"{method} {parsed.path}"})

    def _route(self, method: str, segments: List[str],
               body: bytes) -> bool:
        if len(segments) >= 2 and segments[0] == "graphs":
            self._proxy(method, segments[1], segments[2:], body)
            return True
        if method == "GET" and len(segments) == 1 \
                and segments[0] in _FANOUT_GET:
            getattr(self, f"_fan_{segments[0]}")()
            return True
        if method == "POST" and segments == ["compact"]:
            self._fan_compact()
            return True
        return False

    # -- routed proxy --------------------------------------------------
    def _proxy(self, method: str, name: str, rest: List[str],
               body: bytes) -> None:
        if method == "GET":
            self._proxy_resolved(method, name, rest, body)
            return
        # Writes serialise through the graph's gate: a shard move's
        # final catch-up closes it while replaying the journal tail and
        # flipping the pin, so no write can land on the old owner after
        # the tail was captured — and mid-move writes *wait* (for
        # milliseconds) instead of failing.  Reads never gate: they
        # double-serve from the old owner until the flip.
        with self.cluster.write_gate(name):
            self._proxy_resolved(method, name, rest, body)

    def _proxy_resolved(self, method: str, name: str, rest: List[str],
                        body: bytes) -> None:
        cluster = self.cluster
        # Owner resolved *after* any gate acquisition: a write that
        # waited out a shard move must go to the new owner.
        slot = cluster.owner(name)
        client = cluster.client_for(slot)
        if client is None:
            self._worker_down(name, slot)
            return
        headers = {}
        if body:
            headers["Content-Type"] = self.headers.get(
                "Content-Type", "application/json")
        try:
            status, payload = client.request_raw(
                method, self.path, body=body or None, headers=headers)
        except ServerError:
            cluster.note_worker_failure(slot)
            retried = self._fast_retry(method, slot, body, headers)
            if retried is None:
                self._worker_down(name, slot)
                return
            status, payload = retried
        if method == "POST" and rest == ["updates"] and status == 200:
            # Journaled only after the owner confirmed the apply — the
            # journal replays exactly what the fleet acknowledged.  The
            # ack's post-apply store version/key ride along: they are
            # what checkpointing compares against replication's shipped
            # floors to decide when this batch may be folded away.
            version = key = None
            try:
                answer = json.loads(payload.decode("utf-8"))
                version = answer.get("version")
                key = answer.get("key")
            except (ValueError, AttributeError):
                pass  # non-JSON/odd ack: journal untagged (never folds
                #       under followers; still replays correctly)
            cluster.note_update(name, body, version=version, key=key)
        self._relay(status, payload)

    def _fast_retry(self, method: str, slot: int, body: bytes,
                    headers: Dict[str, str]
                    ) -> Optional[Tuple[int, bytes]]:
        """One immediate re-probe of the owner after a connection-level
        relay failure, before conceding 503.

        Covers the commonest non-failure: the worker recycled an idle
        keep-alive socket (or was respawned between requests) and a
        fresh connection succeeds instantly.  Only idempotent ``GET``s
        re-send — a ``POST`` may have been mid-apply when the socket
        died, and re-sending could double-apply a batch.
        """
        if method != "GET":
            return None
        client = self.cluster.client_for(slot)
        if client is None:
            return None
        try:
            return client.request_raw(method, self.path,
                                      body=body or None, headers=headers)
        except ServerError:
            self.cluster.note_worker_failure(slot)
            return None

    def _worker_down(self, name: str, slot: int) -> None:
        retry = self.cluster.retry_after_seconds
        self._respond(503, {
            "error": f"worker {slot} (serving graph {name!r}) is down; "
                     f"retry in {retry}s",
            "worker": slot,
        }, headers={"Retry-After": str(retry)})

    # -- fan-out -------------------------------------------------------
    def _fan_out(self, call) -> Tuple[List[Tuple[int, Dict]], List[int],
                                      Dict[str, str]]:
        """Apply ``call(client)`` to every live worker.

        Returns ``(answers, down_slots, errors)``.  Connection-level
        failures (status 0) mean the worker is *down*: it is reported
        and the supervisor woken.  An HTTP error from a live worker is
        an application failure, not a death — the worker stays in
        service and its message is surfaced under its slot in
        ``errors``.  Nothing is silently skipped.
        """
        answers: List[Tuple[int, Dict]] = []
        down: List[int] = []
        errors: Dict[str, str] = {}
        for slot, client in self.cluster.live_clients():
            if client is None:
                down.append(slot)
                continue
            try:
                answers.append((slot, call(client)))
            except ServerError as exc:
                if exc.status == 0:
                    self.cluster.note_worker_failure(slot)
                    down.append(slot)
                else:
                    errors[str(slot)] = exc.message
        return answers, down, errors

    @staticmethod
    def _flag_errors(payload: Dict, errors: Dict[str, str]) -> Dict:
        if errors:
            payload["worker_errors"] = errors
        return payload

    def _fan_healthz(self) -> None:
        answers, down, errors = self._fan_out(lambda client:
                                              client.healthz())
        supervision = self.cluster.supervision_payload()
        self._respond(200, self._flag_errors({
            "status": "ok" if not down and not errors else "degraded",
            "graphs": sum(payload["graphs"] for _, payload in answers),
            "workers": self.cluster.num_workers,
            "workers_alive": len(answers),
            "workers_down": sorted(down),
            "respawns": supervision["respawns"],
            "last_respawn_error": supervision["last_respawn_error"],
        }, errors))

    def _fan_graphs(self) -> None:
        answers, down, errors = self._fan_out(lambda client:
                                              client.graphs())
        merged = [entry for _, listing in answers for entry in listing]
        merged.sort(key=lambda entry: entry["name"])
        # workers_down distinguishes "deregistered" from "temporarily
        # unlisted because its worker is down" for inventory readers.
        self._respond(200, self._flag_errors(
            {"graphs": merged, "workers_down": sorted(down)}, errors))

    def _fan_stats(self) -> None:
        answers, down, errors = self._fan_out(lambda client:
                                              client.stats())
        graphs: Dict[str, Dict] = {}
        workers = []
        for slot, payload in sorted(answers):
            graphs.update(payload["graphs"])
            entry: Dict[str, object] = {
                "slot": slot,
                "port": self.cluster.worker_port(slot),
                "queries_total": payload["queries_total"],
                "updates_total": payload["updates_total"],
            }
            if "store" in payload:
                entry["store"] = payload["store"]
            workers.append(entry)
        self._respond(200, self._flag_errors({
            "graphs": dict(sorted(graphs.items())),
            "queries_total": sum(w["queries_total"] for w in workers),
            "updates_total": sum(w["updates_total"] for w in workers),
            "workers": workers,
            "workers_down": sorted(down),
            "supervision": self.cluster.supervision_payload(),
            "journal": self.cluster.journal_payload(),
        }, errors))

    def _fan_compact(self) -> None:
        answers, down, errors = self._fan_out(lambda client:
                                              client.compact())
        merged = {
            "removed_versions": 0, "removed_keys": [],
            "removed_files": 0, "reclaimed_bytes": 0, "kept_versions": 0,
        }
        for _, payload in sorted(answers):
            merged["removed_versions"] += payload["removed_versions"]
            merged["removed_keys"].extend(payload["removed_keys"])
            merged["removed_files"] += payload["removed_files"]
            merged["reclaimed_bytes"] += payload["reclaimed_bytes"]
            merged["kept_versions"] += payload["kept_versions"]
        merged["workers_compacted"] = len(answers)
        merged["workers_down"] = sorted(down)
        self._respond(200, self._flag_errors(merged, errors))

    def _fan_cluster(self) -> None:
        self._respond(200, self.cluster.topology_payload())


class ClusterFrontend(ThreadingHTTPServer):
    """The cluster's public :class:`ThreadingHTTPServer`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], cluster,
                 quiet: bool = True) -> None:
        super().__init__(address, ClusterRequestHandler)
        self.cluster = cluster
        self.quiet = quiet


def serve_frontend(cluster, port: int, host: str = "127.0.0.1",
                   quiet: bool = True) -> ClusterFrontend:
    """Start the frontend's accept loop on a daemon thread."""
    frontend = ClusterFrontend((host, port), cluster, quiet=quiet)
    thread = threading.Thread(target=frontend.serve_forever,
                              name="repro-cluster-frontend", daemon=True)
    thread.start()
    return frontend
