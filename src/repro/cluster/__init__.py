"""Process-sharded serving: a consistent-hash router tier over workers.

The server layer (:mod:`repro.server`) hosts many graphs in one
process — one GIL.  This package is the scale-out step the ROADMAP's
server-layer item names: shard graphs across *processes* behind a
router tier.

* :mod:`repro.cluster.shardmap` — :class:`ShardMap`, the deterministic
  consistent-hash assignment of graph names to worker slots (SHA-256
  ring, explicit pins, resize moves ~1/N of the names);
* :mod:`repro.cluster.worker` — the worker process: an unmodified
  :class:`~repro.server.router.DiversityRouter` + HTTP API on its own
  port and :class:`~repro.service.IndexStore` root, plus the private
  ``/admin`` registration surface the parent drives;
* :mod:`repro.cluster.frontend` — :class:`ClusterFrontend`, the public
  :class:`ThreadingHTTPServer` that proxies ``/graphs/<name>/*`` to
  the owning worker byte-for-byte (pooled keep-alive connections),
  fans ``/graphs``, ``/stats``, ``/healthz``, ``POST /compact`` out to
  the fleet, and answers 503 + ``Retry-After`` while a worker is down;
* :mod:`repro.cluster.cluster` — :class:`ShardedCluster`, which
  spawns, registers, supervises (dead workers respawn on their old
  store root and replay their registrations), and stops the lot.

Exposed on the CLI as ``repro serve --http PORT --workers N``
(``--workers 0`` or absent keeps the single-process router).  Cluster
answers uphold the canonical ranking contract end to end: wire answers
are byte-identical to a single-process router over the same graphs.
"""

from repro.cluster.shardmap import DEFAULT_REPLICAS, ShardMap
from repro.cluster.cluster import ShardedCluster
from repro.cluster.frontend import (
    ClusterFrontend,
    ClusterRequestHandler,
    serve_frontend,
)
from repro.cluster.worker import (
    WorkerHTTPServer,
    WorkerRequestHandler,
    run_worker,
)

__all__ = [
    "DEFAULT_REPLICAS",
    "ClusterFrontend",
    "ClusterRequestHandler",
    "ShardMap",
    "ShardedCluster",
    "WorkerHTTPServer",
    "WorkerRequestHandler",
    "run_worker",
    "serve_frontend",
]
