""":class:`ShardMap`: a consistent-hash assignment of graph names to workers.

The cluster places each named graph on exactly one worker process, and
three properties make that placement operable at fleet scale:

* **Determinism.**  The map is a pure function of ``(name, workers,
  replicas, pins)`` built on SHA-256 — no process-local ``hash()``
  randomisation — so every frontend, supervisor, and operator shell
  that constructs a map with the same parameters routes identically,
  across processes and across restarts.
* **Stability under resize.**  Workers sit on a hash ring via
  ``replicas`` virtual points each; a name maps to the first point
  clockwise from its own hash.  Adding or removing one worker moves
  only the names whose arc changed — expected ``1/workers`` of them —
  instead of reshuffling the world (a modulo map would move almost
  everything, stampeding every store with cold rebuilds).
* **Pins.**  An explicit ``pin(name, worker)`` overrides the ring for
  one name — the escape hatch for a graph that outgrows its neighbours
  and needs a dedicated worker.  Pins survive resizes verbatim.

Examples
--------
>>> shard_map = ShardMap(workers=4)
>>> shard_map.owner("social-us") == shard_map.owner("social-us")
True
>>> 0 <= shard_map.owner("social-us") < 4
True
>>> shard_map.pin("whale", 3)
>>> shard_map.owner("whale")
3
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InvalidParameterError

#: Virtual points per worker on the ring.  More points smooth the load
#: split (relative imbalance shrinks like 1/sqrt(replicas * workers))
#: at the cost of ring size; 64 keeps a 16-worker ring under 1k points.
DEFAULT_REPLICAS = 64


def _ring_hash(text: str) -> int:
    """Stable 64-bit position on the ring (prefix of SHA-256)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardMap:
    """Consistent-hash map of graph names onto ``workers`` slots.

    Parameters
    ----------
    workers:
        Number of worker slots (>= 1).  Slots are identities: slot 2
        means "the third worker", whatever process currently fills it.
    replicas:
        Virtual ring points per worker.
    pins:
        Initial explicit overrides, ``{name: slot}``.
    """

    def __init__(self, workers: int, replicas: int = DEFAULT_REPLICAS,
                 pins: Optional[Dict[str, int]] = None) -> None:
        if workers < 1:
            raise InvalidParameterError(
                f"a shard map needs >= 1 worker, got {workers}")
        if replicas < 1:
            raise InvalidParameterError(
                f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._pins: Dict[str, int] = {}
        self._build_ring(workers)
        for name, slot in (pins or {}).items():
            self.pin(name, slot)

    def _build_ring(self, workers: int) -> None:
        self._workers = workers
        points: List[Tuple[int, int]] = []
        for slot in range(workers):
            for replica in range(self._replicas):
                points.append((_ring_hash(f"worker-{slot}#{replica}"), slot))
        points.sort()
        self._ring_keys = [key for key, _ in points]
        self._ring_slots = [slot for _, slot in points]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of worker slots this map distributes over."""
        return self._workers

    @property
    def pins(self) -> Dict[str, int]:
        """The explicit overrides, ``{name: slot}`` (a copy)."""
        return dict(self._pins)

    def owner(self, name: str) -> int:
        """The worker slot serving ``name`` (pin first, then the ring)."""
        pinned = self._pins.get(name)
        if pinned is not None:
            return pinned
        index = bisect_right(self._ring_keys, _ring_hash(name))
        if index == len(self._ring_keys):
            index = 0  # wrap past the top of the ring
        return self._ring_slots[index]

    def assignments(self, names: Iterable[str]) -> Dict[str, int]:
        """``{name: owner}`` for a batch of names."""
        return {name: self.owner(name) for name in names}

    # ------------------------------------------------------------------
    # Pins
    # ------------------------------------------------------------------
    def pin(self, name: str, slot: int) -> None:
        """Force ``name`` onto ``slot``, overriding the ring."""
        if not 0 <= slot < self._workers:
            raise InvalidParameterError(
                f"cannot pin {name!r} to worker {slot}: have "
                f"{self._workers} worker(s)")
        self._pins[name] = slot

    def unpin(self, name: str) -> None:
        """Drop an override; ``name`` falls back to its ring owner."""
        self._pins.pop(name, None)

    # ------------------------------------------------------------------
    # Resize
    # ------------------------------------------------------------------
    def resize(self, workers: int,
               names: Iterable[str] = ()) -> Dict[str, Tuple[int, int]]:
        """Re-ring over ``workers`` slots; report who moved.

        Returns ``{name: (old_slot, new_slot)}`` for the given ``names``
        whose owner changed — by consistency, an expected
        ``|old - new| / max(old, new)`` fraction of them.  Pins to slots
        that no longer exist are dropped (with their names reported as
        moved to their new ring owner).
        """
        if workers < 1:
            raise InvalidParameterError(
                f"a shard map needs >= 1 worker, got {workers}")
        names = list(names)
        before = self.assignments(names)
        for name, slot in list(self._pins.items()):
            if slot >= workers:
                del self._pins[name]
        self._build_ring(workers)
        after = self.assignments(names)
        return {name: (before[name], after[name]) for name in names
                if before[name] != after[name]}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardMap(workers={self._workers}, "
                f"replicas={self._replicas}, pins={self._pins})")
