""":class:`ShardedCluster`: worker processes behind one supervised frontend.

``repro serve`` used to put every graph in one Python process — one
GIL, so routed throughput capped at roughly one core no matter how
many graphs were hosted.  The cluster breaks that cap along the natural
boundary the paper's workload offers: *graphs are independent*, so each
named graph lives on exactly one worker process (a full
:class:`~repro.server.router.DiversityRouter` + HTTP stack over its own
:class:`~repro.service.IndexStore` root) and the
:class:`~repro.cluster.frontend.ClusterFrontend` relays each request to
the owner chosen by a deterministic consistent-hash
:class:`~repro.cluster.shardmap.ShardMap`.

Responsibilities, in order of appearance:

* **Spawn.**  ``start()`` launches the worker fleet (daemonic
  :mod:`multiprocessing` processes; fork when this process is
  single-threaded, forkserver otherwise — forking a threaded process
  can copy held locks) and waits for each worker's ready handshake.
* **Register.**  ``add_graph`` posts the graph to its owning worker's
  private ``/admin/graphs`` endpoint and remembers the registration
  spec — the replay script for that worker's next incarnation.
* **Supervise.**  A monitor thread respawns dead workers on their old
  store root (replayed graphs warm-start from persisted artifacts) and
  replays their registrations.  Until the respawn lands, the frontend
  answers 503 + ``Retry-After`` for that shard's graphs — and *only*
  that shard's: a worker death never touches the rest of the fleet.
* **Answer-preservation.**  Workers run the unmodified single-process
  API and the frontend relays bodies byte-for-byte, so a cluster
  answer is exactly the single-process answer for the same graph
  (asserted end to end by ``tests/test_cluster.py``).

* **Replicate.**  With ``followers=N``, a replication thread mirrors
  every worker's store root into ``N`` follower roots
  (``<root>/worker<slot>-replica<f>``) via
  :func:`repro.replication.sync.replicate_store` — binary re-versions
  ship as byte-range deltas, every arrival checksum-verified.  When a
  worker's *primary* store root is lost (disk death, simulated by
  :meth:`destroy_worker_store`), the respawn seeds a fresh primary
  from the newest valid replica before the worker comes up, so it
  still warm-starts.
* **Replay.**  The frontend journals every successfully relayed update
  batch (:meth:`note_update`); a respawned worker gets its graph
  registrations *and* the post-registration update stream replayed, so
  recovery restores the graph as last served, not as registered.
* **Checkpoint.**  The journal is *bounded*: once replication has
  durably shipped the store versions covering a prefix of acked
  batches (immediately, with no followers), the prefix is folded into
  the graph's effective registration and truncated
  (:meth:`checkpoint_journals`), and the owning worker's feed floor is
  raised to match — recovery replays a bounded suffix, not everything
  since boot, and frontend memory stays O(window) per graph.
* **Move.**  :meth:`move_graph` hands a graph to another worker with
  zero 503s: replicate the artifacts, register the target, replay the
  journal, then close the graph's write gate only for the final
  catch-up + pin flip (reads double-serve from the old owner until the
  flip, writes stall for milliseconds instead of failing).

Examples
--------
>>> from repro.graph.graph import Graph
>>> with ShardedCluster(workers=2).start(port=0) as cluster:
...     _ = cluster.add_graph("tri", graph=Graph(edges=[(0, 1), (1, 2),
...                                                     (0, 2)]))
...     from repro.server.client import ServerClient
...     client = ServerClient(cluster.url)
...     client.top_r("tri", k=3, r=1)["vertices"]
[0]
"""

from __future__ import annotations

import json
import math
import multiprocessing
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ClusterError,
    InvalidParameterError,
    ServerError,
    StoreError,
)
from repro.graph.graph import Graph
from repro.graph.io import graph_to_payload
from repro.replication.sync import read_store_manifest, replicate_store
from repro.server.client import ServerClient
from repro.server.http import _coerce_updates
from repro.server.router import _NAME_PATTERN
from repro.cluster.frontend import ClusterFrontend, serve_frontend
from repro.cluster.shardmap import DEFAULT_REPLICAS, ShardMap
from repro.cluster.worker import load_graph_spec, run_worker


def _spawn_context():
    """Fork where it is safe, forkserver where it is not (same
    reasoning as :func:`repro.build.parallel._pool_context`).

    Re-evaluated at every spawn, not cached: the *initial* fleet is
    usually spawned from a single-threaded process (fork is cheap and
    safe), but supervised *respawns* run on the supervisor thread with
    the frontend's handler threads live — forking there could copy a
    lock in a held state into the child, so those take forkserver.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context()


class _WorkerHandle:
    """One worker slot's live state (process, port, pooled client)."""

    def __init__(self, slot: int, process, port: int,
                 client: ServerClient) -> None:
        self.slot = slot
        self.process = process
        self.port = port
        self.client = client
        #: Set by the frontend when a request to this worker failed at
        #: the connection level; the supervisor probes (and respawns if
        #: the probe fails) instead of waiting for ``is_alive`` to flip.
        self.suspect = False

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _JournalEntry:
    """One journaled update batch: the raw acked wire body plus the
    owner's post-apply store coordinates, when its response carried
    them (the checkpoint-eligibility signal)."""

    __slots__ = ("body", "version", "key")

    def __init__(self, body: bytes, version: Optional[int],
                 key: Optional[str]) -> None:
        self.body = body
        self.version = version
        self.key = key


class _JournalRecord:
    """One graph's bounded update journal plus its checkpoint.

    ``entries`` holds only the *suffix* past the checkpoint; the
    ``base`` batches before it have been folded into ``folded`` — the
    registration graph with those batches applied, mutation-for-
    mutation as the worker applied them, so its content fingerprint
    equals the checkpointed store key and a respawn warm-starts at the
    chain tip.  Positions handed to replay are absolute
    (``base + index``), which keeps them valid across a truncation.
    """

    __slots__ = ("entries", "base", "bytes_retained",
                 "checkpoint_version", "checkpoint_key", "folded")

    def __init__(self) -> None:
        self.entries: List[_JournalEntry] = []
        self.base = 0
        self.bytes_retained = 0
        self.checkpoint_version: Optional[int] = None
        self.checkpoint_key: Optional[str] = None
        self.folded: Optional[Graph] = None


class ShardedCluster:
    """N worker processes + consistent-hash router tier + supervisor.

    Parameters
    ----------
    workers:
        Worker process count (>= 1).
    store_root:
        Directory under which each worker gets its own IndexStore root
        (``<root>/worker<slot>``).  Defaults to a cluster-owned
        temporary directory removed on :meth:`stop`; pass a real path
        to keep artifacts across cluster restarts.
    build_jobs:
        Forwarded to every worker's router (the PR-4 ``BuildPlan``
        knob).  Workers are daemonic, where pool dispatch degrades to
        the byte-identical in-process build.
    store_codec:
        Artifact codec of every worker's store (``"json"`` or
        ``"bin"``).  ``"bin"`` makes supervised respawns warm-start by
        opening the mmap reader instead of re-parsing JSON forests.
    pins:
        Explicit ``{name: slot}`` shard overrides.
    supervise:
        Run the restart loop (disable in tests that stage worker death
        by hand and call :meth:`restart_dead_workers` themselves).
    restart_interval:
        Seconds between supervisor checks; also sizes the 503
        ``Retry-After`` hint.
    followers:
        Follower store copies per worker (>= 0).  With ``followers=N``
        a background thread keeps ``N`` replica roots per slot in sync
        (see :meth:`replicate_followers`); a lost primary store root is
        then rebuilt from the newest valid replica at respawn.  Note
        this is *store* replication — ``replicas=`` above is the
        unrelated consistent-hash ring-point count.
    replication_interval:
        Seconds between follower sync passes.
    journal_window:
        Retained-batch threshold that triggers an opportunistic journal
        checkpoint from the write path (``0`` disables checkpointing
        entirely — the journal then grows with history, as before).
        Replication passes checkpoint eagerly regardless of the window;
        the window is the backstop for follower-less clusters and for
        write bursts between passes.
    """

    def __init__(self, workers: int, *,
                 store_root=None,
                 build_jobs: Optional[int] = 0,
                 store_codec: str = "json",
                 pins: Optional[Dict[str, int]] = None,
                 replicas: int = DEFAULT_REPLICAS,
                 host: str = "127.0.0.1",
                 supervise: bool = True,
                 restart_interval: float = 0.5,
                 followers: int = 0,
                 replication_interval: float = 0.25,
                 journal_window: int = 128,
                 spawn_timeout: float = 30.0,
                 quiet: bool = True) -> None:
        if workers < 1:
            raise ClusterError(f"a cluster needs >= 1 worker, got {workers}")
        if followers < 0:
            raise ClusterError(f"followers must be >= 0, got {followers}")
        if journal_window < 0:
            raise ClusterError(
                f"journal_window must be >= 0, got {journal_window}")
        self.shard_map = ShardMap(workers, replicas=replicas, pins=pins)
        self.followers = followers
        self.replication_interval = replication_interval
        self.build_jobs = build_jobs
        self.store_codec = store_codec
        self.host = host
        self.supervise = supervise
        self.restart_interval = restart_interval
        self.spawn_timeout = spawn_timeout
        self.quiet = quiet
        if store_root is None:
            self._store_root = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
            self._owns_store_root = True
        else:
            self._store_root = Path(store_root)
            self._owns_store_root = False
        self.journal_window = journal_window
        self._handles: List[Optional[_WorkerHandle]] = [None] * workers
        self._registrations: Dict[str, Dict[str, object]] = {}
        #: Per-graph bounded update journal: the raw wire bodies of
        #: acked update batches *past the checkpoint*, in relay order —
        #: the replay script that restores a respawned worker (or a
        #: shard-move target) to *as last served*.  Once replication
        #: has durably shipped the store versions covering a prefix
        #: (or, with no followers, once the window fills), the prefix
        #: is folded into the record's effective registration graph and
        #: truncated (:meth:`checkpoint_journals`), so recovery replays
        #: a bounded suffix instead of everything since boot.
        self._journal: Dict[str, _JournalRecord] = {}
        #: Per-graph write gates.  The frontend holds a graph's gate
        #: across each relayed write; a shard move's final catch-up
        #: closes it while flipping the pin, which is what makes the
        #: handoff lossless *and* 503-free (writes wait, reads never
        #: gate — they double-serve from the old owner until the flip).
        self._write_gates: Dict[str, threading.Lock] = {}
        self._respawn_counts: List[int] = [0] * workers
        #: Per-slot summary of the last follower sync pass.
        self._replication_reports: Dict[int, Dict[str, object]] = {}
        #: ``{slot: {follower: {graph key: newest shipped version}}}``
        #: from the last sync pass — the durability floors journal
        #: checkpointing compares acked batches against.
        self._follower_floors: Dict[int, Dict[int, Dict[str, int]]] = {}
        self.last_replication_error: Optional[str] = None
        #: Fault-injection hook: seconds to sleep per replicated file
        #: (a "slow follower"); the chaos harness sets it, sync passes
        #: honour it through replicate_store's throttle callback.
        self.replication_delay: float = 0.0
        # _lock guards only quick handle/registration reads and writes
        # (it sits on the frontend's per-request path via client_for);
        # _respawn_lock serialises whole respawn passes, whose probe /
        # spawn / replay steps block for seconds and must never stall
        # routed requests to healthy workers.
        self._lock = threading.RLock()
        self._respawn_lock = threading.Lock()
        # Serialises shard moves: two concurrent move_graph calls for
        # any graphs could interleave their replicate/replay/flip
        # phases against the same worker stores.
        self._move_lock = threading.Lock()
        self._replicator: Optional[threading.Thread] = None
        #: Last respawn failure (visible to operators via repr/debug);
        #: cleared by the next successful pass.
        self.last_respawn_error: Optional[str] = None
        #: Last restore-from-replica note ("worker N: store restored
        #: from ..."), kept until the next restore.
        self.last_restore_note: Optional[str] = None
        self._frontend: Optional[ClusterFrontend] = None
        self._supervisor: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._wake_event = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, port: int = 0) -> "ShardedCluster":
        """Spawn the fleet, bind the frontend, start supervising."""
        if self._started:
            raise ClusterError("this cluster is already started")
        for slot in range(self.num_workers):
            self._handles[slot] = self._spawn(slot)  # repro-lint: disable=RL002 -- pre-start: the supervisor thread does not exist yet
        self._frontend = serve_frontend(self, port, host=self.host,
                                        quiet=self.quiet)
        self._started = True
        if self.supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-cluster-supervisor",
                daemon=True)
            self._supervisor.start()
        if self.followers > 0:
            self._replicator = threading.Thread(
                target=self._replicate_loop,
                name="repro-cluster-replicator", daemon=True)
            self._replicator.start()
        return self

    def stop(self) -> None:
        """Shut the frontend, supervisor, and every worker down."""
        self._stop_event.set()
        self._wake_event.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10)
            self._supervisor = None
        if self._replicator is not None:
            self._replicator.join(timeout=10)
            self._replicator = None
        if self._frontend is not None:
            self._frontend.shutdown()
            self._frontend.server_close()
            self._frontend = None
        # _respawn_lock: an in-flight supervisor pass (the join above
        # can time out while _spawn blocks) must finish — and see the
        # stop flag instead of publishing a fresh worker — before the
        # handles are snapshotted and the store root removed.
        with self._respawn_lock, self._lock:
            handles, self._handles = (list(self._handles),
                                      [None] * self.num_workers)
        for handle in handles:
            if handle is None:
                continue
            handle.client.close()
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
                if handle.process.is_alive():  # pragma: no cover
                    handle.process.kill()
                    handle.process.join(timeout=5)
        if self._owns_store_root:
            shutil.rmtree(self._store_root, ignore_errors=True)
        self._started = False

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Spawning and supervision
    # ------------------------------------------------------------------
    def _spawn(self, slot: int) -> _WorkerHandle:
        ctx = _spawn_context()
        parent, child = ctx.Pipe(duplex=False)
        store_root = self._store_root / f"worker{slot}"
        process = ctx.Process(
            target=run_worker,
            args=(slot, self.host, 0, str(store_root), self.build_jobs,
                  child, self.quiet, self.store_codec),
            name=f"repro-worker-{slot}", daemon=True)
        process.start()
        child.close()
        try:
            try:
                if not parent.poll(self.spawn_timeout):
                    raise ClusterError(
                        f"worker {slot} did not come up within "
                        f"{self.spawn_timeout}s")
                kind, value = parent.recv()
            except EOFError:
                raise ClusterError(
                    f"worker {slot} died before reporting ready") from None
            finally:
                parent.close()
            if kind != "ready":
                raise ClusterError(
                    f"worker {slot} failed to start: {value}")
        except ClusterError:
            # Never leak the process: a slow-but-alive worker left
            # behind here would hold the slot's store root and a port
            # with no handle pointing at it (even stop() couldn't
            # reach it), and the next retry would double-occupy both.
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
                if process.is_alive():  # pragma: no cover
                    process.kill()
            raise
        client = ServerClient(f"http://{self.host}:{value}")
        return _WorkerHandle(slot, process, value, client)

    def _supervise(self) -> None:  # pragma: no cover - timing-dependent
        while not self._stop_event.is_set():
            self._wake_event.wait(self.restart_interval)
            self._wake_event.clear()
            if self._stop_event.is_set():
                return
            try:
                self.restart_dead_workers()
            except Exception as exc:  # repro-lint: disable=RL003 -- a dead supervisor means permanent 503s; record and retry next tick
                # The supervisor must outlive any single bad pass — a
                # dead supervisor means permanent 503s for every later
                # worker death.  Record and retry next tick.
                self.last_respawn_error = f"{type(exc).__name__}: {exc}"

    def restart_dead_workers(self) -> List[int]:
        """One supervisor pass: respawn every dead worker and replay
        its graph registrations.  Returns the restarted slots.

        The blocking steps (health probe, process spawn, registration
        replay) run *outside* the handle lock, so routed requests to
        healthy workers never stall behind a recovery; a slot whose
        respawn or replay fails is left empty (503s) for the next pass
        to retry, and never published half-registered.
        """
        restarted: List[int] = []
        errors: List[str] = []
        with self._respawn_lock:
            for slot in range(self.num_workers):
                if self._stop_event.is_set():
                    break  # stop() is tearing the fleet down
                with self._lock:
                    handle = self._handles[slot]
                if handle is not None and handle.alive \
                        and not handle.suspect:
                    continue
                if handle is not None and handle.alive and handle.suspect:
                    try:  # probe before declaring a live process dead
                        handle.client.healthz()
                        handle.suspect = False
                        continue
                    except ServerError:
                        handle.process.terminate()
                        handle.process.join(timeout=5)
                if handle is not None:
                    handle.client.close()
                    with self._lock:
                        self._handles[slot] = None
                restored = self._restore_store_if_needed(slot)
                if restored:
                    self.last_restore_note = restored
                try:
                    replacement = self._spawn(slot)
                except ClusterError as exc:
                    errors.append(f"worker {slot}: {exc}")
                    continue
                try:
                    if self._stop_event.is_set():
                        raise ClusterError("cluster stopping")
                    self._replay_registrations(replacement)
                except (ServerError, ClusterError) as exc:
                    # Died again mid-replay: discard the half-registered
                    # incarnation; this slot stays down until next pass.
                    errors.append(f"worker {slot} replay: {exc}")
                    replacement.client.close()
                    if replacement.process.is_alive():
                        replacement.process.terminate()
                        replacement.process.join(timeout=5)
                    continue
                with self._lock:
                    self._handles[slot] = replacement
                    self._respawn_counts[slot] += 1
                restarted.append(slot)
        self.last_respawn_error = "; ".join(errors) or None
        return restarted

    def _restore_store_if_needed(self, slot: int) -> Optional[str]:
        """Seed a lost/unreadable primary store root from the newest
        valid replica before a respawn (returns a note, or ``None``
        when the primary was healthy or no replica could help).

        No published handle exists for this slot while this runs, so
        no concurrent sync pass can write the primary mid-restore.
        Every restored artifact is checksum-verified by
        :func:`replicate_store` — a corrupt replica is *refused* and
        the next one tried; with none usable the worker cold-starts,
        which is slow but never wrong.
        """
        if self.followers < 1:
            return None
        primary = self._store_root / f"worker{slot}"
        try:
            read_store_manifest(primary)
            return None  # primary intact: normal warm start
        except StoreError:
            pass  # lost or unreadable: fall through to the replicas
        # Rank replicas newest-first (highest shipped store version):
        # with checkpointed journals the suffix replay only reaches
        # back to the checkpoint, so restoring a *stale* replica when a
        # fresher one exists would cost a cold rebuild of the folded
        # registration instead of a chain-tip warm start.
        ranked: List[Tuple[int, int, Path]] = []
        for follower in range(self.followers):
            replica = self.replica_root(slot, follower)
            try:
                manifest = read_store_manifest(replica)
            except StoreError:
                continue  # missing/corrupt replica: skip
            newest = max(
                (int(number) for entry in manifest["graphs"].values()
                 for number in entry["versions"]), default=0)
            ranked.append((newest, follower, replica))
        ranked.sort(key=lambda item: (-item[0], item[1]))
        for _, _, replica in ranked:
            try:
                report = replicate_store(replica, primary)
            except StoreError:
                continue  # replica failed verification: try the next
            return (f"worker {slot}: store restored from "
                    f"{replica.name} ({report.summary()})")
        return None  # cold start; registrations replay regardless

    def _replay_registrations(self, handle: _WorkerHandle) -> None:
        """Re-register the slot's graphs, then replay their journaled
        post-checkpoint update batches (in relay order).

        The registration is the *effective* spec — the folded graph
        when a checkpoint exists — so the replay starts at the
        checkpoint and streams only the retained suffix, however long
        the cluster has been up.  The suffix cannot miss a batch: this
        slot has no published handle while replay runs, so the frontend
        answers 503 for its graphs — no *new* update can be relayed
        (and journaled) until the replayed worker is published; and the
        caller holds ``_respawn_lock``, which excludes a concurrent
        checkpoint from folding entries out from under the replay.
        """
        with self._lock:
            owned = []
            for name in self._registrations:
                if self.shard_map.owner(name) != handle.slot:
                    continue
                spec, start = self._effective_spec_locked(name)
                owned.append((name, spec, start))
        for name, spec, start in owned:
            handle.client._request("POST", "/admin/graphs", body=spec)
            self._replay_journal(handle.client, name, start)

    def note_worker_failure(self, slot: int) -> None:
        """Frontend hook: a request to this worker failed at the
        connection level.  Mark it suspect and wake the supervisor."""
        with self._lock:
            handle = self._handles[slot]
            if handle is not None:
                handle.suspect = True
        self._wake_event.set()

    def kill_worker(self, slot: int) -> int:
        """SIGKILL one worker (chaos hook for tests and the smoke
        script); returns the killed pid."""
        with self._lock:
            handle = self._handles[slot]
            if handle is None or not handle.alive:
                raise ClusterError(f"worker {slot} is not running")
            pid = handle.process.pid
            handle.process.kill()
            handle.process.join(timeout=10)
        return pid

    def destroy_worker_store(self, slot: int) -> Path:
        """Chaos hook: SIGKILL one worker **and** delete its primary
        store root — the disk-died scenario.  Recovery must then come
        from a follower replica (or a cold rebuild); returns the
        removed root."""
        self.kill_worker(slot)
        root = self._store_root / f"worker{slot}"
        shutil.rmtree(root, ignore_errors=True)
        return root

    # ------------------------------------------------------------------
    # Follower replication
    # ------------------------------------------------------------------
    def replica_root(self, slot: int, follower: int) -> Path:
        """One follower copy's store root
        (``<store_root>/worker<slot>-replica<follower>``)."""
        return self._store_root / f"worker{slot}-replica{follower}"

    def replicate_followers(self) -> Dict[int, Dict[str, object]]:
        """One follower sync pass over every worker's store root.

        Returns ``{slot: last-report-payload}``; per-slot failures are
        recorded in :attr:`last_replication_error` (and retried next
        pass) rather than raised — one slot's mid-compaction wobble
        must not starve the rest of the fleet of fresh replicas.
        """
        throttle = None
        if self.replication_delay > 0:
            delay = self.replication_delay
            throttle = lambda relpath: time.sleep(delay)  # noqa: E731
        errors: List[str] = []
        for slot in range(self.num_workers):
            primary = self._store_root / f"worker{slot}"
            try:
                read_store_manifest(primary)
            except StoreError:
                continue  # nothing to replicate yet (or primary lost)
            for follower in range(self.followers):
                try:
                    report = replicate_store(
                        primary, self.replica_root(slot, follower),
                        throttle=throttle)
                except StoreError as exc:
                    errors.append(
                        f"worker {slot} replica {follower}: {exc}")
                    continue
                with self._lock:
                    self._replication_reports[slot] = report.to_payload()
                    self._follower_floors.setdefault(slot, {})[follower] \
                        = dict(report.version_floors)
        self.last_replication_error = "; ".join(errors) or None
        # Every batch whose store version all followers now hold is
        # durably recoverable from a replica: fold and truncate.
        self.checkpoint_journals()
        with self._lock:
            return dict(self._replication_reports)

    def _replicate_loop(self) -> None:  # pragma: no cover - timing
        while not self._stop_event.is_set():
            self._stop_event.wait(self.replication_interval)
            if self._stop_event.is_set():
                return
            try:
                self.replicate_followers()
            except Exception as exc:  # repro-lint: disable=RL003 -- a dead replicator means silently stale replicas; record and retry next tick
                self.last_replication_error = \
                    f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    # Update journal, checkpointing, and write gates
    # ------------------------------------------------------------------
    def note_update(self, name: str, body: bytes,
                    version: Optional[int] = None,
                    key: Optional[str] = None) -> None:
        """Frontend hook: journal one successfully relayed update body
        (the replay script for respawns and shard moves), tagged with
        the owner's post-apply store ``version``/``key`` when its
        response carried them — the coordinates checkpointing compares
        against the followers' shipped floors."""
        with self._lock:
            rec = self._journal.setdefault(name, _JournalRecord())
            entry = _JournalEntry(
                bytes(body),
                int(version) if version is not None else None,
                str(key) if key is not None else None)
            rec.entries.append(entry)
            rec.bytes_retained += len(entry.body)
            crowded = (self.journal_window > 0
                       and len(rec.entries) >= self.journal_window)
        if crowded:
            # Opportunistic fold on the write path: never blocks — a
            # concurrent respawn/move/checkpoint keeps the locks and
            # the next update (or replication pass) retries.
            self.checkpoint_journals(blocking=False)

    def journal_length(self, name: str) -> int:
        """*Retained* (post-checkpoint) batches for one graph — what a
        recovery would replay (observability + tests)."""
        with self._lock:
            rec = self._journal.get(name)
            return len(rec.entries) if rec is not None else 0

    def journal_total(self, name: str) -> int:
        """All batches ever journaled for one graph: checkpointed
        (folded away) + retained."""
        with self._lock:
            rec = self._journal.get(name)
            return rec.base + len(rec.entries) if rec is not None else 0

    def journal_payload(self) -> Dict[str, object]:
        """Per-graph journal/checkpoint state (frontend ``/stats``)."""
        with self._lock:
            graphs: Dict[str, Dict[str, object]] = {}
            for name in sorted(self._journal):
                rec = self._journal[name]
                graphs[name] = {
                    "entries": len(rec.entries),
                    "total": rec.base + len(rec.entries),
                    "checkpointed": rec.base,
                    "checkpoint_version": rec.checkpoint_version,
                    "checkpoint_key": rec.checkpoint_key,
                    "bytes_retained": rec.bytes_retained,
                }
            return {"window": self.journal_window, "graphs": graphs}

    def write_gate(self, name: str) -> threading.Lock:
        """The per-graph lock serialising relayed writes against a
        shard move's final catch-up (created on first use)."""
        with self._lock:
            gate = self._write_gates.get(name)
            if gate is None:
                gate = threading.Lock()
                self._write_gates[name] = gate
            return gate

    def checkpoint_journals(self, blocking: bool = True
                            ) -> Dict[str, int]:
        """Fold every graph's durably covered journal prefix into its
        effective registration and truncate the retained list.

        A batch is *covered* when every follower's last sync pass
        shipped the store version its ack reported (with no followers,
        folding itself is the durability: the frontend replays the
        folded registration + suffix, which never consults a store).
        After folding, the owning worker's ``UpdateFeed`` floor is
        raised to match (best-effort RPC) so feed consumers that slept
        past the truncation take the ``complete=False`` resync path.

        Runs under the respawn *and* move locks: both replay paths read
        an (effective spec, position) pair and then stream entries, and
        a fold in between would drop batches out from under them.
        Returns ``{graph: batches folded}`` for this pass.
        """
        if self.journal_window <= 0 or self._stop_event.is_set():
            return {}
        if not self._respawn_lock.acquire(blocking=blocking):
            return {}
        try:
            if not self._move_lock.acquire(blocking=blocking):
                return {}
            try:
                return self._checkpoint_under_locks()
            finally:
                self._move_lock.release()
        finally:
            self._respawn_lock.release()

    def _checkpoint_under_locks(self) -> Dict[str, int]:
        with self._lock:
            names = sorted(self._journal)
        folded: Dict[str, int] = {}
        truncations: List[Tuple[int, str, int]] = []
        for name in names:
            count, version = self._fold_one(name)
            if count:
                folded[name] = count
                if version is not None:
                    truncations.append(
                        (self.shard_map.owner(name), name, version))
        for slot, name, version in truncations:
            client = self.client_for(slot)
            if client is None:
                continue
            try:
                client.truncate_feed(name, version=version)
            except ServerError:
                # Worker down or mid-handoff: the feed floor is an
                # optimisation (lagging consumers resync a little
                # later); the next checkpoint retries.
                pass
        return folded

    def _fold_one(self, name: str) -> Tuple[int, Optional[int]]:
        """Fold one graph's eligible journal prefix; returns
        ``(batches folded, checkpoint version)``."""
        with self._lock:
            rec = self._journal.get(name)
            spec = self._registrations.get(name)
            if rec is None or spec is None or not rec.entries:
                return 0, None if rec is None else rec.checkpoint_version
            eligible = self._eligible_prefix(name, rec)
            if eligible == 0:
                return 0, rec.checkpoint_version
            if rec.folded is None:
                rec.folded = load_graph_spec(spec)
            prefix = rec.entries[:eligible]
            # Decode every body up front: a body that no longer parses
            # must fail the fold *before* any graph mutation, leaving
            # the journal intact rather than half-advanced.
            batches = [_coerce_updates(json.loads(
                entry.body.decode("utf-8"))) for entry in prefix]
            for entry, updates in zip(prefix, batches):
                # Mirror apply_batch's graph mutations exactly — same
                # ops, same order — so the folded graph's fingerprint
                # equals the worker's post-batch store key.
                for op, u, v in updates:
                    if op == "insert":
                        rec.folded.add_edge(u, v)
                    else:
                        rec.folded.remove_edge(u, v)
                rec.base += 1
                rec.bytes_retained -= len(entry.body)
                if entry.version is not None:
                    rec.checkpoint_version = entry.version
                if entry.key is not None:
                    rec.checkpoint_key = entry.key
            del rec.entries[:eligible]
            return eligible, rec.checkpoint_version

    def _eligible_prefix(self, name: str, rec: _JournalRecord) -> int:
        """How many leading retained entries are durably covered."""
        if self.followers < 1:
            # No replicas to wait for: the folded registration *is* the
            # recovery source (registration + suffix replay never needs
            # a store — a lost primary just costs a cold build).
            return len(rec.entries)
        slot = self.shard_map.owner(name)
        floors = self._follower_floors.get(slot)
        if floors is None or len(floors) < self.followers:
            return 0  # not every follower has completed a pass yet
        count = 0
        for entry in rec.entries:
            if entry.key is None or not all(
                    entry.key in floor
                    and (entry.version is None
                         or floor[entry.key] >= entry.version)
                    for floor in floors.values()):
                break
            count += 1
        return count

    def _effective_spec_locked(self, name: str
                               ) -> Tuple[Dict[str, object], int]:
        """The registration a recovery replays *now*, plus the absolute
        journal position to resume from: the original spec when nothing
        is checkpointed, otherwise the folded graph shipped inline (its
        fingerprint matches the checkpointed store key, so the worker
        warm-starts at the chain tip instead of re-applying history).
        Callers hold ``_lock`` *and* the respawn or move lock — the
        pair must stay coherent until the replay finishes."""
        spec = self._registrations[name]
        rec = self._journal.get(name)
        if rec is None or rec.folded is None:
            return dict(spec), rec.base if rec is not None else 0
        return {"name": name, "graph": graph_to_payload(rec.folded)}, \
            rec.base

    def _replay_journal(self, client: ServerClient, name: str,
                        start: int) -> int:
        """POST journaled batches at absolute positions ``>= start``
        for one graph to a worker; returns the new absolute position.

        Positions are absolute (checkpointed + retained), so they stay
        meaningful across truncations; the suffix is sliced under the
        lock at O(suffix) — the journal is never copied wholesale.
        """
        with self._lock:
            rec = self._journal.get(name)
            if rec is None:
                return start
            first = max(start, rec.base)
            pending = rec.entries[first - rec.base:]
        for entry in pending:
            status, payload = client.request_raw(
                "POST", f"/graphs/{name}/updates", body=entry.body,
                headers={"Content-Type": "application/json"})
            if status >= 400:
                raise ClusterError(
                    f"replaying an update batch to graph {name!r} "
                    f"failed with status {status}: "
                    f"{payload[:200].decode('utf-8', 'replace')}")
        return first + len(pending)

    # ------------------------------------------------------------------
    # Shard handoff
    # ------------------------------------------------------------------
    def move_graph(self, name: str, target: int, *,
                   drain_seconds: float = 0.2) -> Dict[str, object]:
        """Hand one graph to another worker with zero 503s.

        The drain/double-serve protocol:

        1. **Replicate** the source worker's store into the target's
           (``merge=True`` — the target keeps its own graphs), so the
           target can warm-start the graph.
        2. **Register** the graph on the target (idempotent admin
           endpoint) and **replay** the journaled update stream while
           the source keeps serving reads *and* writes.
        3. **Flip** under the graph's write gate: with writes briefly
           parked (not failed), replay whatever landed since step 2,
           then pin the graph to the target.  Gated writes resume
           against the new owner; reads were never blocked at all —
           they double-serve from the source until the flip.
        4. **Drain**: after ``drain_seconds`` (covering requests that
           resolved the old owner just before the flip), deregister the
           graph from the source, which keeps answering in-flight reads
           until then.

        The store merge in step 1 assumes the *target's own* graphs are
        not mid-write during the brief manifest merge; move graphs in a
        write lull (reads are unrestricted throughout).
        """
        if not self._started:
            raise ClusterError("start() the cluster before moving graphs")
        if not 0 <= target < self.num_workers:
            raise ClusterError(
                f"cannot move {name!r} to worker {target}: have "
                f"{self.num_workers} worker(s)")
        with self._lock:
            if name not in self._registrations:
                raise ClusterError(f"no graph named {name!r} is registered")
        with self._move_lock:
            source = self.shard_map.owner(name)
            if source == target:
                return {"graph": name, "source": source, "target": target,
                        "moved": False}
            target_client = self.client_for(target)
            if target_client is None:
                raise ClusterError(
                    f"cannot move {name!r}: target worker {target} is down")
            try:
                replicate_store(self._store_root / f"worker{source}",
                                self._store_root / f"worker{target}",
                                merge=True)
            except StoreError:
                # No readable source store (e.g. an all-JSON fleet that
                # never persisted): the target cold-builds at
                # registration instead of warm-starting.  Correctness
                # comes from registration + journal replay either way.
                pass
            # Effective spec + suffix: the target warm-starts at the
            # checkpoint (the folded graph's fingerprint is the
            # checkpointed store key, which step 1 just replicated in)
            # and only the retained journal streams over.  Holding
            # _move_lock keeps (spec, start) coherent: a concurrent
            # checkpoint cannot fold entries past ``start``.
            with self._lock:
                spec, start = self._effective_spec_locked(name)
            target_client._request("POST", "/admin/graphs", body=spec)
            position = self._replay_journal(target_client, name, start)
            gate = self.write_gate(name)
            with gate:
                # Writes are parked here (frontend relays hold this
                # gate); catch up on what landed since, then flip.
                self._replay_journal(target_client, name, position)
                self.shard_map.pin(name, target)
            time.sleep(drain_seconds)
            source_client = self.client_for(source)
            if source_client is not None:
                # Best-effort: a dead source has nothing to deregister.
                source_client._request("POST", "/admin/graphs/remove",
                                       body={"name": name})
            return {"graph": name, "source": source, "target": target,
                    "moved": True}

    def remove_graph(self, name: str) -> Dict[str, object]:
        """Deregister a graph fleet-wide and drop every piece of
        frontend-side state that tracked it.

        Before this existed, a graph's ``_journal`` record and write
        gate lived for the cluster's lifetime even after its worker
        stopped serving it — a slow per-graph leak.  The worker-side
        removal also drops the graph's :class:`UpdateFeed` journal
        (``DiversityRouter.remove_graph`` calls ``feed.drop``); the
        shard pin is released so a later re-add hashes freshly.
        """
        if not self._started:
            raise ClusterError("start() the cluster before removing graphs")
        with self._lock:
            if name not in self._registrations:
                raise ClusterError(f"no graph named {name!r} is registered")
        # Serialised against shard moves: a move in flight reads the
        # spec and streams the journal; removing them under it would
        # strand the target half-registered.
        with self._move_lock:
            slot = self.shard_map.owner(name)
            client = self.client_for(slot)
            if client is not None:
                # Best-effort: a dead worker simply never re-registers
                # the graph (its registration is gone below).
                client._request("POST", "/admin/graphs/remove",
                                body={"name": name})
            with self._lock:
                self._registrations.pop(name, None)
                self._journal.pop(name, None)
                self._write_gates.pop(name, None)
            self.shard_map.unpin(name)
        return {"graph": name, "worker": slot, "removed": True}

    def add_graph(self, name: str, graph: Optional[Graph] = None,
                  path=None) -> Dict[str, object]:
        """Register a graph on its owning worker.

        Exactly one of ``graph`` (shipped inline as a ``repro-graph``
        payload) or ``path`` (a file the worker process reads itself —
        cheaper for large graphs) is required.  Returns the worker's
        registration answer (the graph's stats payload).
        """
        if not self._started:
            raise ClusterError("start() the cluster before adding graphs")
        if not _NAME_PATTERN.match(name or ""):
            raise InvalidParameterError(
                f"bad graph name {name!r}: use letters, digits, '.', '_' "
                "or '-' (it becomes a URL path segment)")
        if name in self._registrations:
            raise InvalidParameterError(
                f"a graph named {name!r} is already registered")
        if (graph is None) == (path is None):
            raise InvalidParameterError(
                "pass exactly one of graph= or path=")
        spec: Dict[str, object] = {"name": name}
        if path is not None:
            spec["path"] = str(path)
        else:
            spec["graph"] = graph_to_payload(graph)
        slot = self.shard_map.owner(name)
        client = self.client_for(slot)
        if client is None:
            raise ClusterError(
                f"worker {slot} (owner of {name!r}) is down; wait for "
                "the supervisor or call restart_dead_workers()")
        answer = client._request("POST", "/admin/graphs", body=spec)
        with self._lock:
            self._registrations[name] = spec
        return answer

    def graphs(self) -> List[str]:
        """Registered graph names, sorted."""
        with self._lock:
            return sorted(self._registrations)

    # ------------------------------------------------------------------
    # Frontend interface
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self.shard_map.workers

    def owner(self, name: str) -> int:
        """The worker slot serving ``name``."""
        return self.shard_map.owner(name)

    def client_for(self, slot: int) -> Optional[ServerClient]:
        """The pooled client for one worker, or ``None`` when down."""
        with self._lock:
            handle = self._handles[slot]
            if handle is None or not handle.alive:
                return None
            return handle.client

    def live_clients(self) -> List[Tuple[int, Optional[ServerClient]]]:
        """``(slot, client-or-None)`` for every worker slot."""
        return [(slot, self.client_for(slot))
                for slot in range(self.num_workers)]

    def worker_port(self, slot: int) -> Optional[int]:
        """The port a worker currently listens on (``None`` when down)."""
        with self._lock:
            handle = self._handles[slot]
            return handle.port if handle is not None else None

    @property
    def retry_after_seconds(self) -> int:
        """The 503 ``Retry-After`` hint: one supervisor interval up."""
        return max(1, math.ceil(self.restart_interval))

    @property
    def frontend_port(self) -> int:
        if self._frontend is None:
            raise ClusterError("the cluster frontend is not running")
        return self._frontend.server_port

    @property
    def url(self) -> str:
        """The frontend's base URL."""
        return f"http://{self.host}:{self.frontend_port}"

    @property
    def store_root(self) -> Path:
        """Directory holding the per-worker IndexStore roots."""
        return self._store_root

    def supervision_payload(self) -> Dict[str, object]:
        """Recovery observability: per-worker respawn counts, the last
        respawn failure, and (with followers) replication state.
        Surfaced through the frontend's ``/healthz`` and ``/stats``."""
        with self._lock:
            payload: Dict[str, object] = {
                "respawns": list(self._respawn_counts),
                "respawns_total": sum(self._respawn_counts),
                "last_respawn_error": self.last_respawn_error,
            }
            if self.followers:
                payload["followers"] = self.followers
                payload["last_replication_error"] = \
                    self.last_replication_error
                payload["last_restore_note"] = self.last_restore_note
                payload["replication"] = {
                    str(slot): report for slot, report
                    in sorted(self._replication_reports.items())}
            return payload

    def topology_payload(self) -> Dict[str, object]:
        """The ``GET /cluster`` body: who serves what, from where."""
        with self._lock:
            placement: Dict[int, List[str]] = {
                slot: [] for slot in range(self.num_workers)}
            for name in sorted(self._registrations):
                placement[self.shard_map.owner(name)].append(name)
            workers = []
            for slot in range(self.num_workers):
                handle = self._handles[slot]
                workers.append({
                    "slot": slot,
                    "alive": handle is not None and handle.alive,
                    "port": handle.port if handle is not None else None,
                    "pid": handle.process.pid
                    if handle is not None else None,
                    "graphs": placement[slot],
                })
            return {
                "workers": workers,
                "pins": self.shard_map.pins,
                "supervised": self.supervise,
                "restart_interval": self.restart_interval,
                "followers": self.followers,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "started" if self._started else "stopped"
        return (f"ShardedCluster(workers={self.num_workers}, {state}, "
                f"graphs={len(self._registrations)})")
