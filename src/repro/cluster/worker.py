"""The cluster's worker process: one shard of the graph fleet.

A worker is the *existing* single-process serving stack — a
:class:`~repro.server.router.DiversityRouter` behind the
:mod:`repro.server.http` JSON API — running in its own process, on its
own port, over its own :class:`~repro.service.IndexStore` root.  The
public API is untouched byte-for-byte (that is what makes the
frontend's routed proxy answer-preserving); what a worker adds is a
private control surface the cluster parent drives:

=========  ==========================  ==================================
Method     Path                        Meaning
=========  ==========================  ==================================
``POST``   ``/admin/graphs``           register a graph on this worker
                                       (``{"name": .., "path": ..}`` or
                                       ``{"name": .., "graph": payload}``)
``GET``    ``/admin/info``             worker identity: slot, pid, graphs
=========  ==========================  ==================================

Registration is idempotent — re-posting a name the router already
serves answers 200 with the existing graph's stats — because the
supervisor *replays* registrations at a respawned worker, and a replay
must never fail halfway.  A respawned worker keeps its store root, so
replayed graphs warm-start from the artifacts their previous
incarnation persisted: recovery costs a process spawn plus artifact
loads, not index rebuilds.

Index builds inside the worker go through the PR-4
:class:`~repro.build.BuildPlan` machinery (``build_jobs`` is forwarded
to the router); cluster workers are daemonic, where
:mod:`repro.build.parallel` already degrades pool dispatch to the
byte-identical in-process path.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.errors import InvalidParameterError
from repro.graph.io import graph_from_payload, read_edge_list, read_json_graph
from repro.server.http import DiversityHTTPServer, DiversityRequestHandler
from repro.server.router import DiversityRouter
from repro.service.store import IndexStore


def load_graph_spec(spec: Dict[str, object]):
    """Materialise a registration spec's graph.

    ``spec`` carries either ``path`` (an edge-list or ``.json`` graph
    file readable from this process) or ``graph`` (an inline
    :func:`~repro.graph.io.graph_to_payload` dict).
    """
    path = spec.get("path")
    if path is not None:
        path = str(path)
        if path.endswith(".json"):
            return read_json_graph(path)
        return read_edge_list(path)
    payload = spec.get("graph")
    if isinstance(payload, dict):
        return graph_from_payload(payload)
    raise InvalidParameterError(
        'a graph registration needs "path" or "graph" (a repro-graph '
        "payload)")


class WorkerRequestHandler(DiversityRequestHandler):
    """The public JSON API plus the cluster-private ``/admin`` routes."""

    server_version = "repro-cluster-worker/1.0"

    def _route(self, method: str, segments: List[str],
               params: Dict[str, str]) -> bool:
        if segments[:1] == ["admin"]:
            return self._route_admin(method, segments[1:])
        return super()._route(method, segments, params)

    def _route_admin(self, method: str, rest: List[str]) -> bool:
        router = self.router
        if method == "POST" and rest == ["graphs"]:
            body = self._read_body()
            if not isinstance(body, dict) or "name" not in body:
                raise InvalidParameterError(
                    'expected {"name": .., "path"|"graph": ..}')
            name = body["name"]
            if name in router:
                service = router.service(name)  # idempotent replay
            else:
                service = router.add_graph(name, load_graph_spec(body))
            self._respond(200, dict(service.stats_payload(), name=name))
            return True
        if method == "POST" and rest == ["graphs", "remove"]:
            # Shard-handoff drain: the cluster deregisters a moved
            # graph from its old owner once the pin points elsewhere.
            # Idempotent — removing an unknown name reports removed
            # False instead of erroring, so a retried drain is safe.
            body = self._read_body()
            if not isinstance(body, dict) or "name" not in body:
                raise InvalidParameterError('expected {"name": ..}')
            name = body["name"]
            removed = name in router
            if removed:
                router.remove_graph(name)
            self._respond(200, {"name": name, "removed": removed})
            return True
        if method == "GET" and rest == ["info"]:
            server = self.server
            self._respond(200, {
                "slot": server.slot,
                "pid": os.getpid(),
                "graphs": router.graphs(),
                "store": str(router.store.root)
                if router.store is not None else None,
            })
            return True
        return False


class WorkerHTTPServer(DiversityHTTPServer):
    """A worker's HTTP server: the shared handler plus a slot identity."""

    def __init__(self, address, router: DiversityRouter, slot: int,
                 quiet: bool = True) -> None:
        super().__init__(address, router, quiet=quiet,
                         handler_class=WorkerRequestHandler)
        self.slot = slot


def run_worker(slot: int, host: str, port: int,
               store_root: Optional[str],
               build_jobs: Optional[int],
               ready, quiet: bool = True,
               store_codec: str = "json") -> None:  # pragma: no cover
    """Worker process entry point (target of the cluster's spawn).

    Builds an empty router (graphs arrive via ``POST /admin/graphs``),
    binds the HTTP server, reports ``("ready", port)`` through the
    ``ready`` pipe, then serves until the parent terminates the
    process.  ``store_codec`` selects the artifact codec of the
    worker's store — ``"bin"`` makes respawn warm starts open the mmap
    reader instead of re-parsing JSON forests.  Excluded from
    in-process coverage — this function only ever runs inside spawned
    worker processes (the cluster tests exercise it end to end over
    the wire).
    """
    try:
        store = (IndexStore(store_root, codec=store_codec)
                 if store_root else None)
        router = DiversityRouter(store=store, build_jobs=build_jobs)
        server = WorkerHTTPServer((host, port), router, slot, quiet=quiet)
    except BaseException as exc:
        try:
            ready.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            ready.close()
        raise
    ready.send(("ready", server.server_port))
    ready.close()
    try:
        server.serve_forever()
    finally:
        server.server_close()
