"""Statistical analysis of structural diversity and contagion.

The paper's central effectiveness claim (Exp-7) is a *correlation*:
vertices with higher truss-based structural diversity are more likely
to be activated.  This module quantifies that claim properly —
distribution summaries, rank correlations with p-values (scipy), and a
model-comparison helper — instead of eyeballing grouped bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from scipy import stats as _scipy_stats

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a score distribution."""

    count: int
    nonzero: int
    mean: float
    maximum: int
    histogram: Dict[int, int]

    @property
    def nonzero_fraction(self) -> float:
        if self.count == 0:
            return 0.0
        return self.nonzero / self.count


def summarize_scores(scores: Mapping[Vertex, int]) -> DistributionSummary:
    """Summary statistics of a per-vertex score mapping."""
    values = list(scores.values())
    histogram: Dict[int, int] = {}
    for s in values:
        histogram[s] = histogram.get(s, 0) + 1
    return DistributionSummary(
        count=len(values),
        nonzero=sum(1 for s in values if s > 0),
        mean=(sum(values) / len(values)) if values else 0.0,
        maximum=max(values, default=0),
        histogram=dict(sorted(histogram.items())),
    )


@dataclass(frozen=True)
class CorrelationResult:
    """A rank correlation between diversity scores and activation."""

    spearman_rho: float
    spearman_p: float
    pearson_r: float
    pearson_p: float
    sample_size: int

    @property
    def is_positive(self) -> bool:
        """Positive association (the paper's claim)."""
        return self.spearman_rho > 0

    def is_significant(self, alpha: float = 0.05) -> bool:
        """Whether the rank correlation is significant at ``alpha``."""
        return self.spearman_p < alpha


def diversity_contagion_correlation(
        scores: Mapping[Vertex, int],
        activation: Mapping[Vertex, float],
        include_zero_scores: bool = True) -> CorrelationResult:
    """Correlate diversity scores with activation probabilities.

    Both Spearman (rank, robust to the heavy ties of integer scores)
    and Pearson are reported; Exp-7's claim corresponds to a positive,
    significant Spearman rho.
    """
    common = [v for v in scores if v in activation
              and (include_zero_scores or scores[v] > 0)]
    if len(common) < 3:
        raise InvalidParameterError(
            f"need at least 3 overlapping vertices, got {len(common)}")
    xs = [scores[v] for v in common]
    ys = [activation[v] for v in common]
    if len(set(xs)) < 2 or len(set(ys)) < 2:
        raise InvalidParameterError(
            "correlation undefined: one of the variables is constant")
    spearman = _scipy_stats.spearmanr(xs, ys)
    pearson = _scipy_stats.pearsonr(xs, ys)
    return CorrelationResult(
        spearman_rho=float(spearman.statistic),
        spearman_p=float(spearman.pvalue),
        pearson_r=float(pearson.statistic),
        pearson_p=float(pearson.pvalue),
        sample_size=len(common),
    )


def compare_selections(activation: Mapping[Vertex, float],
                       selections: Mapping[str, Sequence[Vertex]]
                       ) -> List[Tuple[str, float]]:
    """Mean activation probability per model's selection, best first.

    The Exp-8 comparison as a number per model: how activatable are the
    vertices each diversity model crowns as most diverse?
    """
    ranking: List[Tuple[str, float]] = []
    for name, chosen in selections.items():
        present = [activation[v] for v in chosen if v in activation]
        mean = sum(present) / len(present) if present else 0.0
        ranking.append((name, mean))
    ranking.sort(key=lambda pair: -pair[1])
    return ranking
