"""GCT: global-information-based search with a compressed index (Section 6).

GCT improves on the TSD approach in three ways, all reproduced here:

1. **Fast ego-network extraction** (Algorithm 7 lines 1–4): one global
   triangle pass appends each edge ``(u, v)`` to the ego-network of each
   common neighbour ``w``; every triangle is touched three times instead
   of six.
2. **Bitmap-based truss decomposition** (lines 5–14): ego-networks are
   decomposed with bitmap adjacency and popcount supports.
3. **GCT-index** (Algorithm 8): the TSD forest is compressed into
   *supernodes* (vertices connected by edges of one trussness level
   within a social context) and *superedges* (the forest edges between
   different levels).  A query needs only Lemma 3:
   ``score(v) = N_k − M_k`` where ``N_k``/``M_k`` count supernodes /
   superedges with trussness/weight ≥ ``k``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import IndexFormatError, InvalidParameterError
from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.egonet import iter_ego_edge_lists
from repro.truss.bitmap_decomposition import bitmap_truss_decomposition
from repro.core.bounds import count_at_least
from repro.core.results import (
    CanonicalTopR,
    SearchResult,
    build_entries,
    canonical_zero_fill,
)
from repro.core.tsd import TSDIndex, BuildProfile, canonical_kruskal_order
from repro.util.dsu import DisjointSet
from repro.util.jsonio import dumps_payload
from repro.util.timing import StopWatch

# Supernode: (trussness, members tuple).  Superedge: (i, j, weight) with
# i/j indexing the vertex's supernode list.
Supernode = Tuple[int, Tuple[Vertex, ...]]
Superedge = Tuple[int, int, int]

_PERSIST_VERSION = 1


def assemble_gct(vertices: Sequence[Vertex],
                 weighted_edges: Iterable[Tuple[Edge, int]]
                 ) -> Tuple[List[Supernode], List[Superedge]]:
    """Algorithm 8: build supernodes and superedges for one ego-network.

    ``weighted_edges`` carries ego edge trussnesses (or, equivalently,
    TSD forest edges — the bottleneck property makes both yield the same
    query answers).  Edges are scanned in decreasing weight; equal-tau
    endpoints merge supernodes, unequal ones add a superedge, and a
    connectivity union-find rejects anything that would close a cycle.

    The returned structure is *canonical with respect to* ``vertices``:
    supernode member tuples are ordered by position in ``vertices``,
    supernodes by their earliest member, and superedges are normalised
    to ``i < j`` and sorted — so any two edge sets describing the same
    weighted connectivity (full ego edges, a TSD forest) assemble to an
    identical index payload.
    """
    vertex_list = list(vertices)
    edge_list = list(weighted_edges)
    position = {u: i for i, u in enumerate(vertex_list)}
    # Vertex trussness = max incident edge weight (0 for isolated).
    vertex_tau: Dict[Vertex, int] = {u: 0 for u in vertex_list}
    for (u, w), tau in edge_list:
        if tau > vertex_tau[u]:
            vertex_tau[u] = tau
        if tau > vertex_tau[w]:
            vertex_tau[w] = tau

    snode: DisjointSet = DisjointSet(vertex_list)   # supernode membership
    conn: DisjointSet = DisjointSet(vertex_list)    # overall GCT connectivity
    members: Dict[Vertex, List[Vertex]] = {u: [u] for u in vertex_list}
    tau_of: Dict[Vertex, int] = dict(vertex_tau)    # valid at snode roots
    raw_superedges: List[Tuple[Vertex, Vertex, int]] = []

    for (u, w), tau in canonical_kruskal_order(vertex_list, edge_list,
                                               position, vertex_tau):
        if conn.connected(u, w):
            continue
        ru, rw = snode.find(u), snode.find(w)
        if ru != rw and tau_of[ru] == tau_of[rw] == tau:
            # Merge the two supernodes (Algorithm 8 lines 10-12).
            snode.union(ru, rw)
            root = snode.find(ru)
            other = rw if root == ru else ru
            members[root].extend(members.pop(other))
            tau_of[root] = tau
        else:
            # Superedge insertion (lines 13-15).
            raw_superedges.append((u, w, tau))
        conn.union(u, w)

    roots: Dict[Vertex, int] = {}
    supernodes: List[Supernode] = []
    for u in vertex_list:
        root = snode.find(u)
        if root in roots:
            continue
        if tau_of[root] < 2:
            # Isolated ego vertices: trussness 0, invisible to every
            # query with k >= 2 — not worth an index slot.
            continue
        roots[root] = len(supernodes)
        supernodes.append((tau_of[root],
                           tuple(sorted(members[root],
                                        key=position.__getitem__))))
    superedges: List[Superedge] = sorted(
        (min(roots[snode.find(u)], roots[snode.find(w)]),
         max(roots[snode.find(u)], roots[snode.find(w)]),
         tau)
        for u, w, tau in raw_superedges
    )
    return supernodes, superedges


class GCTIndex:
    """GCT-index of a graph: supernode/superedge forests per vertex.

    Examples
    --------
    >>> from repro.datasets.paper import figure1_graph
    >>> index = GCTIndex.build(figure1_graph())
    >>> index.score("v", 4)
    3
    """

    def __init__(self,
                 supernodes: Dict[Vertex, List[Supernode]],
                 superedges: Dict[Vertex, List[Superedge]],
                 vertex_order: Sequence[Vertex],
                 build_profile: Optional[BuildProfile] = None) -> None:
        self._supernodes = supernodes
        self._superedges = superedges
        self._vertices: List[Vertex] = list(vertex_order)
        # Sorted (descending) weight arrays drive O(log) Lemma-3 queries.
        # With lazy providers (Mappings exposing ``tau_sorted(v)`` /
        # ``weight_sorted(v)``, e.g. the mmap-backed maps in
        # :mod:`repro.storage.lazy`) nothing is precomputed: the sorted
        # arrays decode per vertex from the record prefix on demand.
        if callable(getattr(supernodes, "tau_sorted", None)):
            self._tau_sorted: Optional[Dict[Vertex, List[int]]] = None
        else:
            self._tau_sorted = {
                v: sorted((tau for tau, _ in nodes), reverse=True)
                for v, nodes in supernodes.items()
            }
        if callable(getattr(superedges, "weight_sorted", None)):
            self._weight_sorted: Optional[Dict[Vertex, List[int]]] = None
        else:
            self._weight_sorted = {
                v: sorted((w for _, _, w in edges), reverse=True)
                for v, edges in superedges.items()
            }
        self.build_profile = build_profile

    def _taus(self, v: Vertex) -> List[int]:
        """Descending supernode taus of ``v`` (eager dict or provider)."""
        if self._tau_sorted is None:
            return self._supernodes.tau_sorted(v)
        return self._tau_sorted[v]

    def _edge_weights(self, v: Vertex) -> List[int]:
        """Descending superedge weights of ``v``."""
        if self._weight_sorted is None:
            return self._superedges.weight_sorted(v)
        return self._weight_sorted[v]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, jobs: Optional[int] = None,
              plan=None) -> "GCTIndex":
        """Algorithm 7 end-to-end: one-shot extraction, bitmap peeling,
        Algorithm 8 assembly.  Phase timings land in :attr:`build_profile`.

        ``jobs=None`` (default) keeps this single-threaded loop; any
        other value routes through the :mod:`repro.build` pipeline
        (``0`` auto-plans, ``1`` forces the serial shared pass, ``>= 2``
        requests a worker pool — see
        :meth:`repro.build.BuildPlan.decide`), producing a
        byte-identical index (modulo the build profile).
        """
        if jobs is not None or plan is not None:
            from repro.build import build_gct_index
            return build_gct_index(graph, jobs=jobs, plan=plan)
        watch = StopWatch()
        with watch.phase("extraction"):
            ego_lists = list(iter_ego_edge_lists(graph))
        supernodes: Dict[Vertex, List[Supernode]] = {}
        superedges: Dict[Vertex, List[Superedge]] = {}
        for v, edges in ego_lists:
            neighbours = sorted(graph.neighbors(v), key=graph.vertex_index)
            with watch.phase("decomposition"):
                weights = bitmap_truss_decomposition(neighbours, edges)
            with watch.phase("assembly"):
                supernodes[v], superedges[v] = assemble_gct(
                    neighbours, weights.items())
        profile = BuildProfile(
            extraction_seconds=watch.seconds("extraction"),
            decomposition_seconds=watch.seconds("decomposition"),
            assembly_seconds=watch.seconds("assembly"),
        )
        return cls(supernodes, superedges, list(graph.vertices()), profile)

    @classmethod
    def compress(cls, tsd: TSDIndex) -> "GCTIndex":
        """Compress an existing TSD-index into a GCT-index.

        The paper describes GCT-index as "compressed from TSD-index";
        running Algorithm 8 over the stored forests yields an index with
        identical query answers (bottleneck property) without touching
        the graph again.  Ego vertices are ordered by the TSD index's
        vertex positions — the same graph insertion order :meth:`build`
        uses — so a compressed index is structurally identical to a
        freshly built one, not merely query-equivalent.
        """
        position = {v: i for i, v in enumerate(tsd.vertices)}
        supernodes: Dict[Vertex, List[Supernode]] = {}
        superedges: Dict[Vertex, List[Superedge]] = {}
        for v in tsd.vertices:
            forest = tsd.forest(v)
            touched = {u for u, _, _ in forest} | {w for _, w, _ in forest}
            # Forests omit isolated ego vertices from edges; recovering
            # the full neighbour set from the forest alone is not
            # possible, so compression keeps only edge-touched vertices.
            # Isolated ego vertices have trussness 0 and never affect
            # any query with k >= 2 (build skips them too).
            supernodes[v], superedges[v] = assemble_gct(
                sorted(touched, key=position.__getitem__),
                (((u, w), weight) for u, w, weight in forest))
        return cls(supernodes, superedges, tsd.vertices)

    # ------------------------------------------------------------------
    # Queries (Lemma 3)
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._supernodes

    @property
    def vertices(self) -> List[Vertex]:
        """Indexed vertices, in the graph's insertion order."""
        return list(self._vertices)

    def supernodes(self, v: Vertex) -> List[Supernode]:
        """The supernodes of ``GCT_v`` as ``(trussness, members)`` pairs."""
        self._check_vertex(v)
        return list(self._supernodes[v])

    def superedges(self, v: Vertex) -> List[Superedge]:
        """The superedges of ``GCT_v`` as ``(i, j, weight)`` triples."""
        self._check_vertex(v)
        return list(self._superedges[v])

    def score(self, v: Vertex, k: int) -> int:
        """Lemma 3: ``score(v) = N_k − M_k`` via two binary searches."""
        self._check_k(k)
        self._check_vertex(v)
        n_k = count_at_least(self._taus(v), k)
        m_k = count_at_least(self._edge_weights(v), k)
        return n_k - m_k

    def contexts(self, v: Vertex, k: int) -> List[Set[Vertex]]:
        """Social contexts from the supernode forest.

        Supernodes with trussness ≥ ``k`` are grouped by superedges of
        weight ≥ ``k``; each group's member union is one context.
        """
        self._check_k(k)
        self._check_vertex(v)
        qualifying = [i for i, (tau, _) in enumerate(self._supernodes[v])
                      if tau >= k]
        dsu: DisjointSet = DisjointSet(qualifying)
        for i, j, weight in self._superedges[v]:
            if weight >= k:
                dsu.union(i, j)
        contexts: List[Set[Vertex]] = []
        nodes = self._supernodes[v]
        for group in dsu.components():
            context: Set[Vertex] = set()
            for i in group:
                context.update(nodes[i][1])
            contexts.append(context)
        return contexts

    def scores_for_all(self, k: int) -> Dict[Vertex, int]:
        """``score(v)`` for every indexed vertex at one threshold.

        Two binary searches per vertex — the batch scoring path the
        effectiveness experiments use.
        """
        self._check_k(k)
        return {v: self.score(v, k) for v in self._vertices}

    def score_profile(self, v: Vertex) -> Dict[int, int]:
        """``score(v)`` for every ``k`` from 2 to the max supernode tau."""
        self._check_vertex(v)
        taus = self._taus(v)
        if not taus or taus[0] < 2:
            return {}
        weights = self._edge_weights(v)
        return {
            k: count_at_least(taus, k) - count_at_least(weights, k)
            for k in range(2, taus[0] + 1)
        }

    def top_r(self, k: int, r: int, collect_contexts: bool = True) -> SearchResult:
        """GCT top-r search: score every vertex in O(log) each, pick r.

        No pruning is needed — Lemma 3 makes every score almost free, so
        GCT simply evaluates all vertices (the paper's O(m) query bound).
        """
        self._check_k(k)
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")
        start = time.perf_counter()
        r = min(r, max(len(self._vertices), 1))
        position = {v: i for i, v in enumerate(self._vertices)}
        collector = CanonicalTopR(r, position.__getitem__)
        for v in self._vertices:
            collector.offer(v, self.score(v, k))
        ranked = canonical_zero_fill(collector.ranked(), r, self._vertices)
        entries = build_entries(
            ranked, lambda v: self.contexts(v, k), collect_contexts)
        return SearchResult(
            method="GCT", k=k, r=r, entries=entries,
            search_space=len(self._vertices),
            elapsed_seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")

    def _check_vertex(self, v: Vertex) -> None:
        if v not in self._supernodes:
            raise InvalidParameterError(
                f"vertex {v!r} is not in the GCT-index")

    # ------------------------------------------------------------------
    # Size accounting and persistence (Table 3)
    # ------------------------------------------------------------------
    def payload_slots(self) -> int:
        """Logical slots: per supernode 1 tau + members; per superedge 3.

        Smaller than the TSD payload whenever social contexts contain
        internal structure — the compression Table 3 measures.
        """
        slots = len(self._supernodes)  # one key slot per vertex
        for nodes in self._supernodes.values():
            for _, members in nodes:
                slots += 1 + len(members)
        for edges in self._superedges.values():
            slots += 3 * len(edges)
        return slots

    def approx_size_bytes(self, bytes_per_slot: int = 8) -> int:
        """Size estimate for the Table 3 comparison."""
        return self.payload_slots() * bytes_per_slot

    def to_payload(self, include_profile: bool = True) -> Dict:
        """The JSON-encodable artifact form of this index.

        Shared by :meth:`save` and the service layer's
        :class:`~repro.service.store.IndexStore` (labels must be
        JSON-encodable).  ``include_profile=False`` strips the
        wall-clock build profile so equivalent indexes byte-compare.
        """
        vertices = self._vertices
        position = {v: i for i, v in enumerate(vertices)}
        payload = {
            "format": "repro-gct-index",
            "version": _PERSIST_VERSION,
            "vertices": vertices,
            "supernodes": {
                str(position[v]): [[tau, [position[m] for m in members]]
                                   for tau, members in nodes]
                for v, nodes in self._supernodes.items()
            },
            "superedges": {
                str(position[v]): [list(edge) for edge in edges]
                for v, edges in self._superedges.items()
            },
        }
        if include_profile and self.build_profile is not None:
            payload["build_profile"] = self.build_profile.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: Dict, source: str = "<payload>"
                     ) -> "GCTIndex":
        """Inverse of :meth:`to_payload`; ``source`` labels errors."""
        if payload.get("format") != "repro-gct-index":
            raise IndexFormatError(f"{source}: not a GCT-index payload")
        if payload.get("version") != _PERSIST_VERSION:
            raise IndexFormatError(
                f"{source}: unsupported version {payload.get('version')!r}")
        raw = payload["vertices"]
        vertices = [tuple(v) if isinstance(v, list) else v for v in raw]
        supernodes = {
            vertices[int(pos)]: [(tau, tuple(vertices[m] for m in members))
                                 for tau, members in nodes]
            for pos, nodes in payload["supernodes"].items()
        }
        superedges = {
            vertices[int(pos)]: [tuple(edge) for edge in edges]
            for pos, edges in payload["superedges"].items()
        }
        return cls(supernodes, superedges, vertices,
                   BuildProfile.from_payload(payload.get("build_profile")))

    def save(self, path) -> None:
        """Persist as JSON (labels must be JSON-encodable)."""
        Path(path).write_text(dumps_payload(self.to_payload()),
                              encoding="utf-8")

    @classmethod
    def load(cls, path) -> "GCTIndex":
        """Inverse of :meth:`save`, build profile included."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_payload(payload, source=str(path))
