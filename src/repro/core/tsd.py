"""TSD-index: the truss-based structural diversity index (paper Section 5).

For each vertex ``v`` the TSD-index stores a *maximum spanning forest*
``TSD_v`` of the ego-network ``G_N(v)`` weighted by ego edge trussness
(Algorithm 5).  Observations 2–3 justify the structure: a tree suffices
to represent membership of a maximal connected k-truss, and taking the
*maximum*-weight forest loses no structural diversity information
(bottleneck property of maximum spanning forests).

Queries (Algorithm 6) restrict the forest to edges of weight ≥ ``k`` and
count/collect connected components — ``O(|N(v)|)`` per vertex, giving
the ``O(m)`` total search cost of Theorem 3.  The index is parameter
free: one build answers any ``(k, r)``.

:meth:`TSDIndex.top_r` follows the canonical ranking contract of
:mod:`repro.core.results` — descending score, ties broken by graph
insertion order — even though it scans vertices in *bound* order: the
early-termination test is strict (``bound < threshold``) and zero-score
slots are refilled in insertion order, so the bound-ordered scan cannot
leak its visit order into the answer.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import IndexFormatError, InvalidParameterError
from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.egonet import ego_network
from repro.truss.decomposition import truss_decomposition
from repro.core.bounds import tsd_upper_bound, count_at_least
from repro.core.diversity import profile_from_weights
from repro.core.results import (
    CanonicalTopR,
    SearchResult,
    build_entries,
    canonical_zero_fill,
)
from repro.util.dsu import DisjointSet
from repro.util.jsonio import dumps_payload
from repro.util.timing import StopWatch

# One forest edge: (u, w, weight); per-vertex lists are weight-descending.
ForestEdge = Tuple[Vertex, Vertex, int]

_PERSIST_VERSION = 1


@dataclass(frozen=True)
class BuildProfile:
    """Phase timings of an index build (Table 4 columns)."""

    extraction_seconds: float
    decomposition_seconds: float
    assembly_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.extraction_seconds + self.decomposition_seconds
                + self.assembly_seconds)

    def to_payload(self) -> Dict[str, float]:
        """JSON form of this profile for index persistence."""
        return {
            "extraction_seconds": self.extraction_seconds,
            "decomposition_seconds": self.decomposition_seconds,
            "assembly_seconds": self.assembly_seconds,
        }

    @staticmethod
    def from_payload(payload: Optional[Dict[str, float]]
                     ) -> Optional["BuildProfile"]:
        """Inverse of :meth:`to_payload`; ``None`` stays ``None``."""
        if payload is None:
            return None
        return BuildProfile(
            extraction_seconds=float(payload["extraction_seconds"]),
            decomposition_seconds=float(payload["decomposition_seconds"]),
            assembly_seconds=float(payload["assembly_seconds"]),
        )


def canonical_kruskal_order(vertex_list: Sequence[Vertex],
                            edge_list: Sequence[Tuple[Edge, int]],
                            position: Optional[Dict[Vertex, int]] = None,
                            vertex_tau: Optional[Dict[Vertex, int]] = None
                            ) -> List[Tuple[Edge, int]]:
    """The deterministic Kruskal processing order shared by TSD forest
    construction and GCT assembly (Algorithm 8).

    Edges sort by descending weight; within one weight, *level-internal*
    edges (both endpoints' vertex trussness equal to the edge weight)
    come first, then edges order by their endpoint positions in
    ``vertex_list``.  Level-internal-first matters: it lets every
    same-level supernode merge happen before a cross-level edge can
    connect the endpoints through another supernode, which makes the
    assembled supernode partition a canonical function of the weighted
    connectivity rather than of the caller's edge iteration order.
    Sharing one order between forest construction and assembly is what
    makes ``GCTIndex.compress(TSDIndex)`` structurally identical to
    ``GCTIndex.build`` — the forest keeps exactly the edges assembly
    would accept.

    ``position`` (vertex → index in ``vertex_list``) and ``vertex_tau``
    (vertex → max incident edge weight) may be supplied by callers that
    already computed them; both are derived here otherwise.
    """
    if position is None:
        position = {u: i for i, u in enumerate(vertex_list)}
    if vertex_tau is None:
        vertex_tau = {u: 0 for u in vertex_list}
        for (u, w), tau in edge_list:
            if tau > vertex_tau[u]:
                vertex_tau[u] = tau
            if tau > vertex_tau[w]:
                vertex_tau[w] = tau

    def key(item: Tuple[Edge, int]) -> Tuple[int, int, int, int]:
        (u, w), tau = item
        pu, pw = position[u], position[w]
        if pu > pw:
            pu, pw = pw, pu
        internal = 0 if vertex_tau[u] == vertex_tau[w] == tau else 1
        return (-tau, internal, pu, pw)

    return sorted(edge_list, key=key)


def maximum_spanning_forest(vertices: Iterable[Vertex],
                            weighted_edges: Iterable[Tuple[Edge, int]]
                            ) -> List[ForestEdge]:
    """Kruskal's maximum spanning forest (Algorithm 5).

    Edges are processed in :func:`canonical_kruskal_order`, so among the
    many valid maximum spanning forests this always picks the one whose
    GCT compression (Algorithm 8) matches a from-scratch GCT build.
    Returns forest edges in descending weight order.
    """
    vertex_list = list(vertices)
    edge_list = list(weighted_edges)
    dsu: DisjointSet = DisjointSet(vertex_list)
    forest: List[ForestEdge] = []
    for (u, w), weight in canonical_kruskal_order(vertex_list, edge_list):
        if dsu.union(u, w):
            forest.append((u, w, weight))
    return forest


class TSDIndex:
    """The TSD-index of a graph: one maximum spanning forest per vertex.

    Build once with :meth:`build`; answer any ``(k, r)`` query with
    :meth:`top_r`, or per-vertex questions with :meth:`score` /
    :meth:`contexts` / :meth:`upper_bound`.

    Examples
    --------
    >>> from repro.datasets.paper import figure1_graph
    >>> index = TSDIndex.build(figure1_graph())
    >>> index.score("v", 4)
    3
    """

    def __init__(self, forests: Dict[Vertex, List[ForestEdge]],
                 vertex_order: Sequence[Vertex],
                 build_profile: Optional[BuildProfile] = None) -> None:
        self._forests = forests
        self._vertices: List[Vertex] = list(vertex_order)
        # ``forests`` is normally a plain dict, but any Mapping with the
        # lazy-provider protocol (``weights(v)`` + ``max_weight``, e.g.
        # :class:`repro.storage.lazy.LazyForestMap`) also works: then
        # nothing is precomputed here and per-vertex weight columns are
        # fetched from the provider on demand — the mmap warm-start
        # path.  Queries are bit-identical either way: the provider
        # serves the same stored edge lists a dict would hold.
        if callable(getattr(forests, "weights", None)):
            self._weights: Optional[Dict[Vertex, List[int]]] = None
        else:
            self._weights = {
                v: [w for _, _, w in edges] for v, edges in forests.items()
            }
        self.build_profile = build_profile
        # Per-k (bounds, visit order) memo for top_r, plus the vertex
        # position map both the memo and the collector tie-breaks use.
        # Invalidated together on any index mutation.  Keys are clamped
        # to max forest weight + 1 (every k beyond it has identical
        # all-zero bounds), so the memo holds at most tau* + 1 entries
        # of O(n) each — no unbounded growth under adversarial k sweeps.
        self._bound_cache: Dict[int, Tuple[Dict[Vertex, int],
                                           List[Vertex]]] = {}
        self._position: Optional[Dict[Vertex, int]] = None
        self._max_weight: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction (Algorithm 5)
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, jobs: Optional[int] = None,
              plan=None) -> "TSDIndex":
        """Construct the TSD-index.

        ``jobs=None`` (the backwards-compatible default) runs the
        per-vertex Algorithm 5 loop: extract ``G_N(v)`` (triangle
        listing), truss-decompose it (Algorithm 1), build the maximum
        spanning forest of the trussness-weighted ego-network.  Phase
        timings are recorded in :attr:`build_profile` for the Table 4
        comparison.

        Any other ``jobs`` value routes through the
        :mod:`repro.build` pipeline — one shared triangle pass feeding
        in-process or multi-process decomposition (``0`` auto-plans,
        ``1`` forces the serial shared pass, ``>= 2`` requests that many
        workers; see :meth:`repro.build.BuildPlan.decide`).  ``plan``
        overrides the heuristic with an explicit
        :class:`~repro.build.BuildPlan`.  Every strategy returns an
        index whose :meth:`to_payload` is byte-identical (modulo the
        build profile) to this per-vertex build.
        """
        if jobs is not None or plan is not None:
            from repro.build import build_tsd_index
            return build_tsd_index(graph, jobs=jobs, plan=plan)
        watch = StopWatch()
        forests: Dict[Vertex, List[ForestEdge]] = {}
        for v in graph.vertices():
            with watch.phase("extraction"):
                ego = ego_network(graph, v)
            with watch.phase("decomposition"):
                weights = truss_decomposition(ego)
            with watch.phase("assembly"):
                forests[v] = maximum_spanning_forest(ego.vertices(),
                                                     weights.items())
        profile = BuildProfile(
            extraction_seconds=watch.seconds("extraction"),
            decomposition_seconds=watch.seconds("decomposition"),
            assembly_seconds=watch.seconds("assembly"),
        )
        return cls(forests, list(graph.vertices()), profile)

    # ------------------------------------------------------------------
    # Queries (Algorithm 6 and the Section 5.2 bound)
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._forests

    @property
    def vertices(self) -> List[Vertex]:
        """Indexed vertices, in the graph's insertion order."""
        return list(self._vertices)

    def forest(self, v: Vertex) -> List[ForestEdge]:
        """The stored forest ``TSD_v`` (weight-descending edge list)."""
        self._check_vertex(v)
        return list(self._forests[v])

    def score(self, v: Vertex, k: int) -> int:
        """``score(v)``: components of forest edges with weight ≥ k."""
        self._check_k(k)
        self._check_vertex(v)
        dsu: DisjointSet = DisjointSet()
        count = 0
        for u, w, weight in self._forests[v]:
            if weight < k:
                break  # descending order: nothing further qualifies
            if dsu.add(u):
                count += 1
            if dsu.add(w):
                count += 1
            if dsu.union(u, w):
                count -= 1
        return count

    def contexts(self, v: Vertex, k: int) -> List[Set[Vertex]]:
        """The social contexts ``SC(v)`` recovered from the forest."""
        self._check_k(k)
        self._check_vertex(v)
        dsu: DisjointSet = DisjointSet()
        for u, w, weight in self._forests[v]:
            if weight < k:
                break
            dsu.union(u, w)
        return dsu.components()

    def upper_bound(self, v: Vertex, k: int) -> int:
        """The Section 5.2 pruning bound ``⌊|{w(e) ≥ k}| / (k-1)⌋``."""
        self._check_k(k)
        self._check_vertex(v)
        return tsd_upper_bound(self._weights_of(v), k)

    def scores_for_all(self, k: int) -> Dict[Vertex, int]:
        """``score(v)`` for every indexed vertex at one threshold.

        Batch counterpart of :meth:`score`; used by the effectiveness
        experiments which need the full score map (Exp-7 grouping).
        """
        self._check_k(k)
        return {v: self.score(v, k) for v in self._vertices}

    def score_profile(self, v: Vertex) -> Dict[int, int]:
        """``score(v)`` for every ``k`` with a non-zero answer.

        The forest preserves component counts at every threshold, so the
        profile from ``n_v - 1`` forest edges equals the profile from all
        ``m_v`` ego edges.  Absent keys mean score 0.
        """
        self._check_vertex(v)
        edges = self._forests[v]
        return profile_from_weights(
            ((u, w), weight) for u, w, weight in edges)

    def top_r(self, k: int, r: int, collect_contexts: bool = True) -> SearchResult:
        """TSD-index-based top-r search (Section 5.2).

        Vertices are visited in decreasing order of the TSD upper bound;
        the scan stops as soon as the bound is *strictly below* the
        answer set's minimum (a tied bound could still displace a tied
        vertex with a later insertion index — the canonical ranking
        contract).  ``search_space`` counts actual score computations.

        The ``(bounds, visit order)`` pair is a pure function of the
        stored forests and ``k``, so it is computed once per threshold
        and memoised — repeated queries at a hot ``k`` skip the
        all-vertex bound pass and the sort entirely.  Mutations
        (:meth:`replace_forest`, :meth:`drop_vertex`) invalidate the
        memo.
        """
        self._check_k(k)
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")
        start = time.perf_counter()
        r = min(r, max(len(self._vertices), 1))
        position = self._positions()
        # Clamp the memo key: past the max forest weight every bound is
        # zero whatever k is, so all those thresholds share one entry
        # (floored at 2 — the smallest k the bound accepts).
        key = min(k, max(self._max_forest_weight() + 1, 2))
        cached = self._bound_cache.get(key)
        if cached is None:
            bounds = {v: tsd_upper_bound(self._weights_of(v), key)
                      for v in self._vertices}
            order = sorted(self._vertices,
                           key=lambda v: (-bounds[v], position[v]))
            self._bound_cache[key] = (bounds, order)
        else:
            bounds, order = cached
        collector = CanonicalTopR(r, position.__getitem__)
        search_space = 0
        for v in order:
            if bounds[v] == 0:
                # A zero bound forces a zero score, and the descending
                # scan order makes every remaining bound zero too; the
                # canonical zero-fill below covers all of them.
                break
            if collector.is_full and bounds[v] < collector.threshold:
                break
            collector.offer(v, self.score(v, k))
            search_space += 1
        ranked = canonical_zero_fill(collector.ranked(), r, self._vertices)
        entries = build_entries(
            ranked, lambda v: self.contexts(v, k), collect_contexts)
        return SearchResult(
            method="TSD", k=k, r=r, entries=entries,
            search_space=search_space,
            elapsed_seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")

    def _check_vertex(self, v: Vertex) -> None:
        if v not in self._forests:
            raise InvalidParameterError(
                f"vertex {v!r} is not in the TSD-index")

    def _positions(self) -> Dict[Vertex, int]:
        """Vertex → rank in insertion order, rebuilt after mutations."""
        if self._position is None:
            self._position = {v: i for i, v in enumerate(self._vertices)}
        return self._position

    def _weights_of(self, v: Vertex) -> List[int]:
        """One vertex's forest-weight column (descending), from the
        eager dict or the lazy provider."""
        if self._weights is None:
            return self._forests.weights(v)
        return self._weights[v]

    def _max_forest_weight(self) -> int:
        """Max stored forest-edge weight (0 for an edgeless index);
        weight lists are descending, so it is each list's head.  A lazy
        provider answers from its header in O(1) — the value is an
        *upper bound* there (delta writes never rescan for a superseded
        maximum), which only loosens the memo-key clamp: thresholds
        between the true and recorded maximum get their own all-zero
        bound entry instead of sharing one.  Answers are unaffected.
        """
        if self._max_weight is None:
            if self._weights is None:
                self._max_weight = self._forests.max_weight
            else:
                self._max_weight = max(
                    (w[0] for w in self._weights.values() if w), default=0)
        return self._max_weight

    def _invalidate_query_caches(self) -> None:
        """Drop memoised bounds/orders and positions (forests changed)."""
        self._bound_cache.clear()
        self._position = None
        self._max_weight = None

    # ------------------------------------------------------------------
    # Mutation hooks for dynamic maintenance (Section 5.3 remarks)
    # ------------------------------------------------------------------
    def _materialise(self) -> None:
        """Convert a lazy forest provider into plain owned dicts.

        Mutation cannot patch a read-only mmap artifact, so the first
        mutating call on a lazily-loaded index decodes every forest
        once and continues on the eager path — exactly the state an
        eager ``from_payload`` load would have produced.
        """
        if self._weights is not None:
            return
        provider = self._forests
        self._forests = {v: list(provider[v]) for v in self._vertices
                         if v in provider}
        self._weights = {v: [w for _, _, w in edges]
                         for v, edges in self._forests.items()}

    def replace_forest(self, v: Vertex, edges: Iterable[ForestEdge]) -> None:
        """Install a freshly rebuilt forest for ``v`` (registering ``v``
        if it is new).  Used by incremental maintenance after an edge
        update invalidated the vertex's ego-network."""
        self._materialise()
        ordered = sorted(edges, key=lambda item: -item[2])
        if v not in self._forests:
            self._vertices.append(v)
        self._forests[v] = ordered
        self._weights[v] = [w for _, _, w in ordered]
        self._invalidate_query_caches()

    def drop_vertex(self, v: Vertex) -> None:
        """Remove ``v`` from the index (vertex deleted from the graph)."""
        if v in self._forests:
            self._materialise()
            del self._forests[v]
            del self._weights[v]
            self._vertices.remove(v)
            self._invalidate_query_caches()

    # ------------------------------------------------------------------
    # Size accounting and persistence (Table 3 columns)
    # ------------------------------------------------------------------
    @property
    def num_forest_edges(self) -> int:
        """Total stored forest edges — ``O(Σ n_v) ⊆ O(m)`` by Theorem 3."""
        return sum(len(edges) for edges in self._forests.values())

    def payload_slots(self) -> int:
        """Logical storage slots: 3 per forest edge plus 1 per vertex key."""
        return 3 * self.num_forest_edges + len(self._forests)

    def approx_size_bytes(self, bytes_per_slot: int = 8) -> int:
        """Size estimate used for the Table 3 index-size comparison."""
        return self.payload_slots() * bytes_per_slot

    def to_payload(self, include_profile: bool = True) -> Dict:
        """The JSON-encodable artifact form of this index.

        Shared by :meth:`save` and the service layer's
        :class:`~repro.service.store.IndexStore`, which persists index
        artifacts without owning their formats.  The build profile, when
        present, rides along so a loaded index still reports how its
        construction time was spent (Table 4).  Pass
        ``include_profile=False`` to drop it — the profile is the one
        wall-clock-dependent field, so stripping it makes payloads of
        equivalent indexes byte-comparable (the build-equivalence tests
        and benches rely on this).
        """
        vertices = self._vertices
        position = {v: i for i, v in enumerate(vertices)}
        payload = {
            "format": "repro-tsd-index",
            "version": _PERSIST_VERSION,
            "vertices": vertices,
            "forests": {
                str(position[v]): [[position[u], position[w], weight]
                                   for u, w, weight in edges]
                for v, edges in self._forests.items()
            },
        }
        if include_profile and self.build_profile is not None:
            payload["build_profile"] = self.build_profile.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: Dict, source: str = "<payload>"
                     ) -> "TSDIndex":
        """Inverse of :meth:`to_payload`; ``source`` labels errors."""
        if payload.get("format") != "repro-tsd-index":
            raise IndexFormatError(f"{source}: not a TSD-index payload")
        if payload.get("version") != _PERSIST_VERSION:
            raise IndexFormatError(
                f"{source}: unsupported version {payload.get('version')!r}")
        raw = payload["vertices"]
        vertices = [tuple(v) if isinstance(v, list) else v for v in raw]
        forests = {
            vertices[int(pos)]: [(vertices[iu], vertices[iw], weight)
                                 for iu, iw, weight in edges]
            for pos, edges in payload["forests"].items()
        }
        return cls(forests, vertices,
                   BuildProfile.from_payload(payload.get("build_profile")))

    def save(self, path) -> None:
        """Persist as JSON (labels must be JSON-encodable)."""
        Path(path).write_text(dumps_payload(self.to_payload()),
                              encoding="utf-8")

    @classmethod
    def load(cls, path) -> "TSDIndex":
        """Inverse of :meth:`save`, build profile included."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_payload(payload, source=str(path))
