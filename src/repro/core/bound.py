"""Efficient top-r search framework (paper Algorithm 4, method ``bound``).

Combines the two pruning techniques of Section 4:

1. **Graph sparsification** (Property 1): drop every edge whose global
   trussness is ≤ ``k`` and the vertices this isolates — they cannot
   participate in any answer.
2. **Upper bound** (Lemma 2): process vertices in decreasing order of
   the cheap clique bound; once the answer set holds ``r`` vertices and
   the next bound cannot beat the current minimum, terminate early.

``search_space`` counts the vertices for which Algorithm 2 actually ran,
the pruning metric of Table 2 and Figure 9.

Answers follow the canonical ranking contract of
:mod:`repro.core.results`: descending score, ties broken by graph
insertion order.  The early-termination test is therefore *strict*
(``bound < threshold``) — a vertex whose bound equals the threshold
could still tie the minimum score and win on insertion order.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Edge
from repro.core.bounds import clique_upper_bounds
from repro.core.diversity import structural_diversity, social_contexts
from repro.core.results import (
    CanonicalTopR,
    SearchResult,
    build_entries,
    canonical_zero_fill,
)
from repro.core.sparsify import sparsify


def bound_search(graph: Graph, k: int, r: int,
                 edge_trussness: Optional[Dict[Edge, int]] = None,
                 use_sparsification: bool = True,
                 use_upper_bound: bool = True,
                 collect_contexts: bool = True) -> SearchResult:
    """Algorithm 4: sparsify, sort by upper bound, early-terminate.

    Parameters
    ----------
    graph:
        Input graph ``G``.
    k, r:
        Query parameters (``k ≥ 2``, ``r ≥ 1``).
    edge_trussness:
        Optional precomputed global trussness (reused by benches that
        sweep ``k`` on a fixed graph).
    use_sparsification, use_upper_bound:
        Ablation switches; both default on (the paper's ``bound``).
        With both off this degenerates to the baseline on the original
        graph.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    start = time.perf_counter()

    if use_sparsification:
        reduced = sparsify(graph, k, edge_trussness)
    else:
        reduced = graph

    r = min(r, max(graph.num_vertices, 1))
    collector = CanonicalTopR(r, graph.vertex_index)
    search_space = 0

    if use_upper_bound:
        bounds = clique_upper_bounds(reduced, k)
        # Descending bound order; ties broken by insertion index so the
        # scan order is deterministic.
        order = sorted(reduced.vertices(),
                       key=lambda v: (-bounds[v], graph.vertex_index(v)))
    else:
        bounds = None
        order = list(reduced.vertices())

    for v in order:
        if bounds is not None:
            if bounds[v] == 0:
                break  # descending order: every remaining bound is 0 too
            if collector.is_full and bounds[v] < collector.threshold:
                break  # early termination (Algorithm 4 lines 8-9)
        collector.offer(v, structural_diversity(reduced, v, k))
        search_space += 1

    # Vertices behind the termination point or dropped by sparsification
    # all have score 0 (Property 1 / a zero bound); the canonical answer
    # fills remaining slots from the original graph's insertion order.
    ranked = canonical_zero_fill(collector.ranked(), r, graph.vertices())
    entries = build_entries(
        ranked, lambda v: social_contexts(reduced, v, k), collect_contexts)
    return SearchResult(
        method="bound", k=k, r=r, entries=entries,
        search_space=search_space,
        elapsed_seconds=time.perf_counter() - start,
    )
