"""Efficient top-r search framework (paper Algorithm 4, method ``bound``).

Combines the two pruning techniques of Section 4:

1. **Graph sparsification** (Property 1): drop every edge whose global
   trussness is ≤ ``k`` and the vertices this isolates — they cannot
   participate in any answer.
2. **Upper bound** (Lemma 2): process vertices in decreasing order of
   the cheap clique bound; once the answer set holds ``r`` vertices and
   the next bound cannot beat the current minimum, terminate early.

``search_space`` counts the vertices for which Algorithm 2 actually ran,
the pruning metric of Table 2 and Figure 9.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Edge
from repro.core.bounds import clique_upper_bounds
from repro.core.diversity import structural_diversity, social_contexts
from repro.core.results import SearchResult, TopEntry, TopRCollector
from repro.core.sparsify import sparsify


def bound_search(graph: Graph, k: int, r: int,
                 edge_trussness: Optional[Dict[Edge, int]] = None,
                 use_sparsification: bool = True,
                 use_upper_bound: bool = True,
                 collect_contexts: bool = True) -> SearchResult:
    """Algorithm 4: sparsify, sort by upper bound, early-terminate.

    Parameters
    ----------
    graph:
        Input graph ``G``.
    k, r:
        Query parameters (``k ≥ 2``, ``r ≥ 1``).
    edge_trussness:
        Optional precomputed global trussness (reused by benches that
        sweep ``k`` on a fixed graph).
    use_sparsification, use_upper_bound:
        Ablation switches; both default on (the paper's ``bound``).
        With both off this degenerates to the baseline on the original
        graph.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    start = time.perf_counter()

    if use_sparsification:
        reduced = sparsify(graph, k, edge_trussness)
    else:
        reduced = graph

    r = min(r, max(graph.num_vertices, 1))
    collector = TopRCollector(r)
    search_space = 0

    if use_upper_bound:
        bounds = clique_upper_bounds(reduced, k)
        # Descending bound order; ties broken by insertion index so the
        # scan order is deterministic.
        order = sorted(reduced.vertices(),
                       key=lambda v: (-bounds[v], reduced.vertex_index(v)))
    else:
        bounds = None
        order = list(reduced.vertices())

    for v in order:
        if bounds is not None and collector.is_full and bounds[v] <= collector.threshold:
            break  # early termination (Algorithm 4 lines 8-9)
        collector.offer(v, structural_diversity(reduced, v, k))
        search_space += 1

    entries = []
    for vertex, score in collector.ranked():
        contexts = (tuple(frozenset(c) for c in social_contexts(reduced, vertex, k))
                    if collect_contexts else tuple(frozenset() for _ in range(score)))
        entries.append(TopEntry(vertex=vertex, score=score, contexts=contexts))
    if len(entries) < r:
        # Sparsification dropped vertices; every dropped vertex has
        # score 0 (Property 1), so pad deterministically to r entries.
        answered = {entry.vertex for entry in entries}
        for v in graph.vertices():
            if len(entries) >= r:
                break
            if v not in answered and v not in reduced:
                entries.append(TopEntry(vertex=v, score=0, contexts=()))
    return SearchResult(
        method="bound", k=k, r=r, entries=entries,
        search_space=search_space,
        elapsed_seconds=time.perf_counter() - start,
    )
