"""Online top-r search — the paper's baseline (Algorithm 3).

Computes ``score(v)`` for *every* vertex with Algorithm 2 and keeps the
``r`` best in a bounded answer set.  No pruning, no index: the method
every optimisation in the paper is measured against (Table 2 column
``baseline``).

Answers follow the canonical ranking contract of
:mod:`repro.core.results`: descending score, ties broken by graph
insertion order.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.diversity import structural_diversity, social_contexts
from repro.core.results import (
    CanonicalTopR,
    SearchResult,
    build_entries,
    canonical_zero_fill,
)


def online_search(graph: Graph, k: int, r: int,
                  collect_contexts: bool = True) -> SearchResult:
    """Top-r truss-based structural diversity search, the slow exact way.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    k:
        Trussness threshold (≥ 2).
    r:
        Number of answer vertices (≥ 1); capped at ``|V|``.
    collect_contexts:
        When ``True`` (default), the social contexts of the answer
        vertices are recomputed at the end (Algorithm 3 line 8).  Benches
        that only time the search loop can disable it.

    Returns
    -------
    SearchResult
        With ``search_space == |V|`` — the defining inefficiency of the
        baseline.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    start = time.perf_counter()
    r = min(r, max(graph.num_vertices, 1))
    collector = CanonicalTopR(r, graph.vertex_index)
    for v in graph.vertices():
        collector.offer(v, structural_diversity(graph, v, k))
    ranked = canonical_zero_fill(collector.ranked(), r, graph.vertices())
    entries = build_entries(
        ranked, lambda v: social_contexts(graph, v, k), collect_contexts)
    return SearchResult(
        method="baseline", k=k, r=r, entries=entries,
        search_space=graph.num_vertices,
        elapsed_seconds=time.perf_counter() - start,
    )
