"""The paper's primary contribution: truss-based structural diversity search.

Four search methods, all answering the same top-r problem:

* :func:`~repro.core.online.online_search` — Algorithm 3 (``baseline``).
* :func:`~repro.core.bound.bound_search` — Algorithm 4 (``bound``):
  graph sparsification + Lemma 2 upper bound + early termination.
* :class:`~repro.core.tsd.TSDIndex` — Section 5 (``TSD``): per-vertex
  maximum spanning forests, linear-time queries.
* :class:`~repro.core.gct.GCTIndex` — Section 6 (``GCT``): one-shot
  triangle listing, bitmap decomposition, supernode compression.
* :class:`~repro.core.hybrid.HybridSearcher` — the Exp-4 competitor.

All five obey the canonical ranking contract of
:mod:`repro.core.results` — descending score, ties broken by graph
insertion order — so they return *identical ranked vertex lists*, which
is what lets :class:`repro.engine.QueryEngine` swap methods freely on
cost grounds alone.
"""

from repro.core.diversity import (
    structural_diversity,
    social_contexts,
    diversity_and_contexts,
    all_structural_diversities,
    diversity_profile,
    ego_truss_weights,
)
from repro.core.online import online_search
from repro.core.bound import bound_search
from repro.core.sparsify import sparsify, sparsify_with_stats, SparsifyStats
from repro.core.bounds import (
    clique_upper_bound,
    clique_upper_bounds,
    tsd_upper_bound,
    count_at_least,
)
from repro.core.results import (
    CanonicalTopR,
    SearchResult,
    TopEntry,
    TopRCollector,
    build_entries,
    canonical_zero_fill,
)
from repro.core.tsd import TSDIndex, BuildProfile, maximum_spanning_forest
from repro.core.gct import GCTIndex, assemble_gct
from repro.core.hybrid import HybridSearcher
from repro.core.dynamic import DynamicTSDIndex

__all__ = [
    "DynamicTSDIndex",
    "structural_diversity",
    "social_contexts",
    "diversity_and_contexts",
    "all_structural_diversities",
    "diversity_profile",
    "ego_truss_weights",
    "online_search",
    "bound_search",
    "sparsify",
    "sparsify_with_stats",
    "SparsifyStats",
    "clique_upper_bound",
    "clique_upper_bounds",
    "tsd_upper_bound",
    "count_at_least",
    "SearchResult",
    "TopEntry",
    "TopRCollector",
    "CanonicalTopR",
    "build_entries",
    "canonical_zero_fill",
    "TSDIndex",
    "BuildProfile",
    "maximum_spanning_forest",
    "GCTIndex",
    "assemble_gct",
    "HybridSearcher",
]
