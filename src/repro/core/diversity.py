"""Truss-based structural diversity of a vertex (paper Algorithm 2).

``score(v)`` is the number of connected components of the ``k``-truss of
the ego-network ``G_N(v)`` (Definitions 2–3).  Algorithm 2:

1. extract the ego-network (triangle listing through ``v``);
2. truss-decompose it (Algorithm 1);
3. drop edges with trussness `< k`;
4. count the connected components of what remains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex, Edge
from repro.graph.egonet import ego_network
from repro.graph.traversal import components_of_edges, count_components_of_edges
from repro.truss.decomposition import truss_decomposition


def _check_k(k: int) -> None:
    if k < 2:
        raise InvalidParameterError(f"trussness threshold k must be >= 2, got {k}")


def ego_truss_weights(graph: Graph, v: Vertex,
                      ego: Optional[Graph] = None) -> Dict[Edge, int]:
    """Trussness of every ego-network edge: ``τ_{G_N(v)}(e)``.

    This weighted edge set is the raw material of both the score
    computation and TSD-index construction (the weights ``w(e)`` of
    Algorithm 5).
    """
    if ego is None:
        ego = ego_network(graph, v)
    return truss_decomposition(ego)


def social_contexts(graph: Graph, v: Vertex, k: int,
                    ego: Optional[Graph] = None) -> List[Set[Vertex]]:
    """The social contexts ``SC(v)``: maximal connected k-trusses of ``G_N(v)``.

    Examples
    --------
    On the paper's running example (Figure 1), ``social_contexts(G, "v", 4)``
    returns the three contexts ``{x1..x4}``, ``{y1..y4}``, ``{r1..r6}``.
    """
    _check_k(k)
    weights = ego_truss_weights(graph, v, ego)
    return components_of_edges(
        edge for edge, tau in weights.items() if tau >= k)


def structural_diversity(graph: Graph, v: Vertex, k: int,
                         ego: Optional[Graph] = None) -> int:
    """``score(v) = |SC(v)|`` (Algorithm 2, count-only fast path)."""
    _check_k(k)
    weights = ego_truss_weights(graph, v, ego)
    return count_components_of_edges(
        edge for edge, tau in weights.items() if tau >= k)


def diversity_and_contexts(graph: Graph, v: Vertex, k: int,
                           ego: Optional[Graph] = None
                           ) -> Tuple[int, List[Set[Vertex]]]:
    """Score and contexts in one ego decomposition."""
    contexts = social_contexts(graph, v, k, ego)
    return len(contexts), contexts


def all_structural_diversities(graph: Graph, k: int) -> Dict[Vertex, int]:
    """``score(v)`` for every vertex, by repeated Algorithm 2 calls.

    This is the expensive inner loop of the baseline (Algorithm 3);
    index-based approaches exist precisely to avoid it.
    """
    _check_k(k)
    return {v: structural_diversity(graph, v, k) for v in graph.vertices()}


def diversity_profile(graph: Graph, v: Vertex,
                      ego: Optional[Graph] = None) -> Dict[int, int]:
    """``score(v)`` for *every* threshold ``k`` at once.

    Processes ego edges in decreasing trussness with a union-find:
    at each threshold the component count over edges with ``τ ≥ k`` is
    recorded.  Thresholds above the maximum ego trussness score 0 and
    are omitted.  Used by the Hybrid method's precomputation (Exp-4).
    """
    weights = ego_truss_weights(graph, v, ego)
    return profile_from_weights(weights.items())


def profile_from_weights(weighted_edges) -> Dict[int, int]:
    """Component-count profile from ``(edge, weight)`` pairs.

    Shared by :func:`diversity_profile` (raw ego edges) and the
    TSD-index (forest edges): both edge sets induce identical component
    counts at every threshold, which is the forest's defining property.
    """
    by_weight: Dict[int, List[Edge]] = {}
    for edge, weight in weighted_edges:
        by_weight.setdefault(weight, []).append(edge)
    if not by_weight:
        return {}
    parent: Dict[Vertex, Vertex] = {}

    def find(x: Vertex) -> Vertex:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    profile: Dict[int, int] = {}
    components = 0
    # Sweep thresholds downward; edges accumulate monotonically.
    for k in sorted(by_weight, reverse=True):
        for u, w in by_weight[k]:
            if u not in parent:
                parent[u] = u
                components += 1
            if w not in parent:
                parent[w] = w
                components += 1
            ru, rw = find(u), find(w)
            if ru != rw:
                parent[ru] = rw
                components -= 1
        profile[k] = components
    # Fill gaps: score at threshold k equals score at the next lower
    # recorded weight boundary's upper side (component counts only
    # change where edge weights exist).
    thresholds = sorted(profile)
    filled: Dict[int, int] = {}
    max_k = thresholds[-1]
    current = 0
    pointer = len(thresholds) - 1
    for k in range(max_k, 1, -1):
        if pointer >= 0 and thresholds[pointer] == k:
            current = profile[k]
            pointer -= 1
        filled[k] = current
    return filled
