"""Upper bounds on ``score(v)`` used for pruning (Lemma 2, Section 5.2).

Two bounds appear in the paper:

* **Lemma 2** (used by Algorithm 4): the smallest maximal connected
  ``k``-truss is a ``k``-clique, so an ego-network with ``d(v)`` vertices
  and ``m_v`` edges holds at most
  ``min(⌊d(v)/k⌋, ⌊2 m_v / (k (k-1))⌋)`` of them.
* **TSD bound** (Section 5.2): in the TSD forest, each context
  contributes at least ``k - 1`` edges of weight ≥ ``k``, so
  ``score(v) ≤ ⌊|{e ∈ TSD_v : w(e) ≥ k}| / (k - 1)⌋``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Sequence

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.graph.triangles import local_triangle_counts


def clique_upper_bound(degree: int, ego_edges: int, k: int) -> int:
    """Lemma 2: ``min(⌊d(v)/k⌋, ⌊2 m_v / (k (k-1))⌋)``."""
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    by_vertices = degree // k
    by_edges = (2 * ego_edges) // (k * (k - 1))
    return min(by_vertices, by_edges)


def clique_upper_bounds(graph: Graph, k: int) -> Dict[Vertex, int]:
    """Lemma 2 bound for every vertex in one triangle pass.

    ``m_v`` equals the number of triangles through ``v``, so one global
    triangle listing prices every vertex (Algorithm 4 lines 2–3).
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    ego_edges = local_triangle_counts(graph)
    return {
        v: clique_upper_bound(graph.degree(v), ego_edges[v], k)
        for v in graph.vertices()
    }


def tsd_upper_bound(sorted_weights_desc: Sequence[int], k: int) -> int:
    """TSD bound from a vertex's forest weights, sorted descending.

    ``⌊ |{w ≥ k}| / (k-1) ⌋`` — each maximal connected ``k``-truss spans
    at least ``k`` vertices, hence at least ``k - 1`` forest edges with
    weight ≥ ``k``.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    count = count_at_least(sorted_weights_desc, k)
    return count // (k - 1)


def count_at_least(sorted_weights_desc: Sequence[int], k: int) -> int:
    """How many weights in a descending-sorted sequence are ≥ ``k``.

    Binary search over the negated view; O(log n) per query, which keeps
    TSD/GCT query costs within the paper's bounds.
    """
    # bisect needs ascending order: search -k in the negated sequence.
    negated = _NegatedView(sorted_weights_desc)
    return bisect_left(negated, -k + 1)


class _NegatedView(Sequence):
    """Read-only negated view of a descending sequence (ascending order)."""

    __slots__ = ("_data",)

    def __init__(self, data: Sequence[int]) -> None:
        self._data = data

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, i):
        if isinstance(i, slice):  # pragma: no cover - bisect never slices
            return [-x for x in self._data[i]]
        return -self._data[i]
