"""Graph sparsification (paper Section 4.1, Property 1).

Property 1: an edge ``e`` with global trussness ``τ_G(e) < k + 1`` can
never appear in a maximal connected ``k``-truss of *any* ego-network —
adding the ego back to such a truss would raise every edge's support by
one and force ``τ_G(e) ≥ k + 1``, a contradiction.

Sparsification therefore truss-decomposes ``G`` once, deletes every edge
with ``τ_G(e) ≤ k``, and drops the vertices this isolates.  The answer
set is unaffected, the graph shrinks (45% of edges on average at k=5 in
the paper's Figure 3 statistics), and isolated vertices are never even
considered by the search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Edge
from repro.truss.decomposition import truss_decomposition


@dataclass(frozen=True)
class SparsifyStats:
    """Bookkeeping for the sparsification pass (Figure 3 discussion)."""

    original_vertices: int
    original_edges: int
    remaining_vertices: int
    remaining_edges: int

    @property
    def removed_edges(self) -> int:
        return self.original_edges - self.remaining_edges

    @property
    def removed_vertices(self) -> int:
        return self.original_vertices - self.remaining_vertices

    @property
    def edge_removal_ratio(self) -> float:
        """Fraction of edges pruned (paper reports ≈0.45 at k=5)."""
        if self.original_edges == 0:
            return 0.0
        return self.removed_edges / self.original_edges


def sparsify(graph: Graph, k: int,
             edge_trussness: Optional[Dict[Edge, int]] = None) -> Graph:
    """The reduced graph ``G'``: edges with ``τ_G(e) ≥ k + 1`` only.

    Returns a new graph; the input is never mutated.  Vertices isolated
    by the edge removal are dropped entirely.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    reduced = graph.copy()
    for edge, tau in edge_trussness.items():
        if tau <= k:
            reduced.discard_edge(*edge)
    reduced.remove_isolated_vertices()
    return reduced


def sparsify_with_stats(graph: Graph, k: int,
                        edge_trussness: Optional[Dict[Edge, int]] = None
                        ) -> "tuple[Graph, SparsifyStats]":
    """:func:`sparsify` plus before/after statistics."""
    reduced = sparsify(graph, k, edge_trussness)
    stats = SparsifyStats(
        original_vertices=graph.num_vertices,
        original_edges=graph.num_edges,
        remaining_vertices=reduced.num_vertices,
        remaining_edges=reduced.num_edges,
    )
    return reduced, stats
