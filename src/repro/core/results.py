"""Result containers and the canonical ranking contract for top-r search.

The problem statement (paper Section 2.3) asks for the ``r`` vertices
with the highest truss-based structural diversity *and their social
contexts*.  :class:`SearchResult` carries exactly that, plus the two
efficiency metrics the paper's tables report: wall-clock time and
*search space* (the number of vertices whose structural diversity was
actually computed — Table 2's pruning metric).

The canonical ranking contract
------------------------------
Every search method (baseline, bound, TSD, GCT, hybrid) and the
:mod:`repro.engine` facade answer the *same* query, so they must return
the *same ranked vertex list* — not merely the same score multiset.
Scores alone do not determine the answer: a score tie at the answer-set
boundary admits several equally-valid vertex sets, and before this
contract existed each method resolved the tie in its own scan order
(the TSD index in bound order, the baseline in graph order, …).

The contract, enforced by :class:`CanonicalTopR` and
:func:`canonical_zero_fill`:

* vertices are ranked by **descending score**;
* ties are broken by **graph insertion order** (ascending
  :meth:`~repro.graph.graph.Graph.vertex_index`), *regardless of the
  order in which a method happens to visit vertices*.

Equivalently: the answer is the first ``r`` entries of all vertices
sorted by ``(-score, insertion_index)``.  Pruned scans uphold it by
terminating only when the next upper bound is *strictly below* the
answer threshold (a bound equal to the threshold could still displace a
tied vertex with a later insertion index).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Vertex


@dataclass(frozen=True)
class TopEntry:
    """One answer vertex with its score and social contexts."""

    vertex: Vertex
    score: int
    contexts: Tuple[frozenset, ...]

    def __post_init__(self) -> None:
        if self.score != len(self.contexts):
            raise InvalidParameterError(
                f"score {self.score} does not match {len(self.contexts)} contexts")


@dataclass
class SearchResult:
    """Outcome of a top-r structural diversity search.

    Attributes
    ----------
    method:
        Human-readable method name (``baseline``, ``bound``, ``TSD``,
        ``GCT``, ``hybrid``).
    k, r:
        Query parameters.
    entries:
        Answer vertices sorted by descending score.
    search_space:
        Number of vertices whose diversity was computed (Table 2).
    elapsed_seconds:
        Wall-clock time of the search, when the caller measured it.
    """

    method: str
    k: int
    r: int
    entries: List[TopEntry] = field(default_factory=list)
    search_space: int = 0
    elapsed_seconds: Optional[float] = None

    @property
    def vertices(self) -> List[Vertex]:
        """Answer vertices in rank order."""
        return [entry.vertex for entry in self.entries]

    @property
    def scores(self) -> List[int]:
        """Answer scores in rank order (descending)."""
        return [entry.score for entry in self.entries]

    def contexts_of(self, vertex: Vertex) -> Tuple[frozenset, ...]:
        """Social contexts of an answer vertex."""
        for entry in self.entries:
            if entry.vertex == vertex:
                return entry.contexts
        raise KeyError(vertex)

    def summary(self) -> str:
        """One-line human summary for harness output."""
        time_part = ("" if self.elapsed_seconds is None
                     else f" time={self.elapsed_seconds:.4f}s")
        top = ", ".join(f"{e.vertex!r}:{e.score}" for e in self.entries[:5])
        more = "" if len(self.entries) <= 5 else f" (+{len(self.entries) - 5} more)"
        return (f"[{self.method}] k={self.k} r={self.r} "
                f"space={self.search_space}{time_part} top=[{top}]{more}")


class TopRCollector:
    """Bounded answer set keeping the ``r`` highest-scoring vertices.

    Implements the answer-set maintenance of Algorithms 3 and 4 with a
    min-heap: a candidate replaces the current minimum only when its
    score is strictly greater, matching the paper's line
    ``score(v) > min_{v'∈S} score(v')``.

    .. note::
       Ties are resolved in *offer order*, which depends on the caller's
       scan order.  The search methods themselves use
       :class:`CanonicalTopR`, which resolves ties by graph insertion
       order independent of scan order (the canonical ranking contract
       in the module docstring).
    """

    __slots__ = ("_r", "_heap", "_tick")

    def __init__(self, r: int) -> None:
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")
        self._r = r
        self._heap: List[Tuple[int, int, Vertex]] = []
        self._tick = 0  # insertion tie-break so vertices never compare

    def offer(self, vertex: Vertex, score: int) -> bool:
        """Consider ``(vertex, score)``; return ``True`` if it entered the set."""
        self._tick += 1
        item = (score, self._tick, vertex)
        if len(self._heap) < self._r:
            heapq.heappush(self._heap, item)
            return True
        if score > self._heap[0][0]:
            heapq.heapreplace(self._heap, item)
            return True
        return False

    @property
    def is_full(self) -> bool:
        """Whether the answer set already holds ``r`` vertices."""
        return len(self._heap) >= self._r

    @property
    def threshold(self) -> int:
        """Current minimum score in the answer set (early-stop bound).

        Meaningful only when :attr:`is_full`; raises otherwise so callers
        cannot silently prune against a half-filled set.
        """
        if not self.is_full:
            raise InvalidParameterError("threshold undefined before the set is full")
        return self._heap[0][0]

    def ranked(self) -> List[Tuple[Vertex, int]]:
        """``(vertex, score)`` pairs sorted by descending score.

        Ties keep insertion order (earlier offers first), which makes
        every search method deterministic for a fixed iteration order.
        """
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [(vertex, score) for score, _, vertex in ordered]


class CanonicalTopR:
    """Bounded answer set enforcing the canonical ranking contract.

    Keeps the ``r`` best vertices under the total order
    ``(-score, insertion_index)``: higher scores win, and among equal
    scores the vertex inserted into the graph *earlier* wins.  Unlike
    :class:`TopRCollector`, the outcome is independent of the order in
    which candidates are offered, so a bound-ordered pruned scan and a
    plain graph-order scan select exactly the same vertices.

    Parameters
    ----------
    r:
        Answer-set capacity (≥ 1).
    position:
        Maps a vertex to its graph insertion index (typically
        ``graph.vertex_index`` or a precomputed dict's ``__getitem__``).

    Examples
    --------
    >>> c = CanonicalTopR(2, position={"a": 0, "b": 1, "c": 2}.__getitem__)
    >>> for v in ("c", "b", "a"):   # offered in reverse insertion order
    ...     _ = c.offer(v, 1)
    >>> c.ranked()                  # ...but ranked in insertion order
    [('a', 1), ('b', 1)]
    """

    __slots__ = ("_r", "_position", "_heap")

    def __init__(self, r: int, position: Callable[[Vertex], int]) -> None:
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")
        self._r = r
        self._position = position
        # Min-heap of (score, -insertion_index, vertex): the root is the
        # entry the contract ranks last, i.e. the one to evict first.
        self._heap: List[Tuple[int, int, Vertex]] = []

    def offer(self, vertex: Vertex, score: int) -> bool:
        """Consider ``(vertex, score)``; return ``True`` if it entered the set."""
        item = (score, -self._position(vertex), vertex)
        if len(self._heap) < self._r:
            heapq.heappush(self._heap, item)
            return True
        if item[:2] > self._heap[0][:2]:
            heapq.heapreplace(self._heap, item)
            return True
        return False

    @property
    def is_full(self) -> bool:
        """Whether the answer set already holds ``r`` vertices."""
        return len(self._heap) >= self._r

    @property
    def threshold(self) -> int:
        """Current minimum score in the answer set (early-stop bound).

        A pruned scan may terminate only when the next upper bound is
        *strictly below* this value — an equal bound could still hide a
        tied vertex that wins on insertion order.
        """
        if not self.is_full:
            raise InvalidParameterError("threshold undefined before the set is full")
        return self._heap[0][0]

    def ranked(self) -> List[Tuple[Vertex, int]]:
        """``(vertex, score)`` pairs in canonical order."""
        ordered = sorted(self._heap, key=lambda item: (-item[0], -item[1]))
        return [(vertex, score) for score, _, vertex in ordered]


def canonical_zero_fill(ranked: Sequence[Tuple[Vertex, int]], r: int,
                        insertion_order: Iterable[Vertex]
                        ) -> List[Tuple[Vertex, int]]:
    """Complete a ranked answer to ``r`` entries with canonical zeros.

    Pruned methods never visit vertices their bounds prove scoreless
    (sparsified-away vertices, zero-bound vertices behind an early
    termination), so their collectors may hold fewer than ``r`` positive
    entries — or zero-score entries chosen by scan coverage rather than
    by the contract.  All score-0 vertices tie, so the canonical answer
    fills the remaining slots with the *earliest-inserted* vertices:
    this drops any zero-score entries from ``ranked`` and refills from
    ``insertion_order`` (the graph's full vertex iteration order).

    The operation is idempotent: applying it to an already-canonical
    list returns the same list.
    """
    entries: List[Tuple[Vertex, int]] = [
        (vertex, score) for vertex, score in ranked if score > 0][:r]
    if len(entries) < r:
        have = {vertex for vertex, _ in entries}
        for vertex in insertion_order:
            if len(entries) >= r:
                break
            if vertex not in have:
                entries.append((vertex, 0))
    return entries


def build_entries(ranked: Sequence[Tuple[Vertex, int]],
                  contexts_of: Callable[[Vertex], Iterable[Iterable[Vertex]]],
                  collect_contexts: bool = True) -> List[TopEntry]:
    """Materialise :class:`TopEntry` objects for a canonical ranking.

    ``contexts_of`` recovers the social contexts of one vertex; it is
    invoked only for positive-score entries and only when
    ``collect_contexts`` is set, so callers can count invocations as
    their context-computation search space.  Entries without computed
    contexts carry ``score`` empty placeholder frozensets, keeping the
    :class:`TopEntry` score/context invariant.
    """
    entries: List[TopEntry] = []
    for vertex, score in ranked:
        if collect_contexts and score > 0:
            contexts = tuple(frozenset(c) for c in contexts_of(vertex))
        else:
            contexts = tuple(frozenset() for _ in range(score))
        entries.append(TopEntry(vertex=vertex, score=score, contexts=contexts))
    return entries
