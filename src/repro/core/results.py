"""Result containers shared by every top-r search method.

The problem statement (paper Section 2.3) asks for the ``r`` vertices
with the highest truss-based structural diversity *and their social
contexts*.  :class:`SearchResult` carries exactly that, plus the two
efficiency metrics the paper's tables report: wall-clock time and
*search space* (the number of vertices whose structural diversity was
actually computed — Table 2's pruning metric).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Vertex


@dataclass(frozen=True)
class TopEntry:
    """One answer vertex with its score and social contexts."""

    vertex: Vertex
    score: int
    contexts: Tuple[frozenset, ...]

    def __post_init__(self) -> None:
        if self.score != len(self.contexts):
            raise InvalidParameterError(
                f"score {self.score} does not match {len(self.contexts)} contexts")


@dataclass
class SearchResult:
    """Outcome of a top-r structural diversity search.

    Attributes
    ----------
    method:
        Human-readable method name (``baseline``, ``bound``, ``TSD``,
        ``GCT``, ``hybrid``).
    k, r:
        Query parameters.
    entries:
        Answer vertices sorted by descending score.
    search_space:
        Number of vertices whose diversity was computed (Table 2).
    elapsed_seconds:
        Wall-clock time of the search, when the caller measured it.
    """

    method: str
    k: int
    r: int
    entries: List[TopEntry] = field(default_factory=list)
    search_space: int = 0
    elapsed_seconds: Optional[float] = None

    @property
    def vertices(self) -> List[Vertex]:
        """Answer vertices in rank order."""
        return [entry.vertex for entry in self.entries]

    @property
    def scores(self) -> List[int]:
        """Answer scores in rank order (descending)."""
        return [entry.score for entry in self.entries]

    def contexts_of(self, vertex: Vertex) -> Tuple[frozenset, ...]:
        """Social contexts of an answer vertex."""
        for entry in self.entries:
            if entry.vertex == vertex:
                return entry.contexts
        raise KeyError(vertex)

    def summary(self) -> str:
        """One-line human summary for harness output."""
        time_part = ("" if self.elapsed_seconds is None
                     else f" time={self.elapsed_seconds:.4f}s")
        top = ", ".join(f"{e.vertex!r}:{e.score}" for e in self.entries[:5])
        more = "" if len(self.entries) <= 5 else f" (+{len(self.entries) - 5} more)"
        return (f"[{self.method}] k={self.k} r={self.r} "
                f"space={self.search_space}{time_part} top=[{top}]{more}")


class TopRCollector:
    """Bounded answer set keeping the ``r`` highest-scoring vertices.

    Implements the answer-set maintenance of Algorithms 3 and 4 with a
    min-heap: a candidate replaces the current minimum only when its
    score is strictly greater, matching the paper's line
    ``score(v) > min_{v'∈S} score(v')``.
    """

    __slots__ = ("_r", "_heap", "_tick")

    def __init__(self, r: int) -> None:
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")
        self._r = r
        self._heap: List[Tuple[int, int, Vertex]] = []
        self._tick = 0  # insertion tie-break so vertices never compare

    def offer(self, vertex: Vertex, score: int) -> bool:
        """Consider ``(vertex, score)``; return ``True`` if it entered the set."""
        self._tick += 1
        item = (score, self._tick, vertex)
        if len(self._heap) < self._r:
            heapq.heappush(self._heap, item)
            return True
        if score > self._heap[0][0]:
            heapq.heapreplace(self._heap, item)
            return True
        return False

    @property
    def is_full(self) -> bool:
        """Whether the answer set already holds ``r`` vertices."""
        return len(self._heap) >= self._r

    @property
    def threshold(self) -> int:
        """Current minimum score in the answer set (early-stop bound).

        Meaningful only when :attr:`is_full`; raises otherwise so callers
        cannot silently prune against a half-filled set.
        """
        if not self.is_full:
            raise InvalidParameterError("threshold undefined before the set is full")
        return self._heap[0][0]

    def ranked(self) -> List[Tuple[Vertex, int]]:
        """``(vertex, score)`` pairs sorted by descending score.

        Ties keep insertion order (earlier offers first), which makes
        every search method deterministic for a fixed iteration order.
        """
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [(vertex, score) for score, _, vertex in ordered]
