"""Hybrid search: precomputed answers + online context extraction (Exp-4).

The paper's most competitive alternative to GCT keeps, for every
possible ``k``, the vertices ranked by structural diversity — so a
query's answer *vertices* are free — and then computes the social
contexts online with Algorithm 2.  Context computation is the dominant
cost, which is why GCT (contexts straight from the index) overtakes
Hybrid as ``r`` grows (paper Figure 11).

Rankings are precomputed in the canonical order of
:mod:`repro.core.results` (descending score, ties by graph insertion
order), so Hybrid answers are rank-identical to every other method.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import IndexFormatError, InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.diversity import diversity_profile, social_contexts
from repro.core.results import SearchResult, TopEntry, canonical_zero_fill
from repro.core.tsd import TSDIndex
from repro.util.jsonio import dumps_payload

_PERSIST_VERSION = 1


class HybridSearcher:
    """Precomputed per-``k`` rankings with online context extraction.

    Build with :meth:`precompute`, then answer queries with
    :meth:`top_r`.  The precomputation derives every vertex's score for
    every ``k`` from a TSD-index score profile (building one internally
    when not supplied).
    """

    def __init__(self, graph: Graph,
                 rankings: Dict[int, List[Tuple[Vertex, int]]]) -> None:
        self._graph = graph
        self._rankings = rankings

    @classmethod
    def precompute(cls, graph: Graph,
                   index: Optional[TSDIndex] = None) -> "HybridSearcher":
        """Rank all vertices for every ``k`` with a non-empty answer."""
        if index is None:
            index = TSDIndex.build(graph)
        profiles: Dict[Vertex, Dict[int, int]] = {
            v: index.score_profile(v) for v in index.vertices
        }
        max_k = max((max(p) for p in profiles.values() if p), default=1)
        position = {v: i for i, v in enumerate(index.vertices)}
        rankings: Dict[int, List[Tuple[Vertex, int]]] = {}
        for k in range(2, max_k + 1):
            scored = [(v, profiles[v].get(k, 0)) for v in index.vertices]
            # The canonical ranking contract (repro.core.results):
            # descending score, ties broken by graph insertion order.
            scored.sort(key=lambda pair: (-pair[1], position[pair[0]]))
            rankings[k] = scored
        return cls(graph, rankings)

    @property
    def max_k(self) -> int:
        """Largest ``k`` with any non-zero score (queries above return zeros)."""
        return max(self._rankings, default=1)

    def rankings(self) -> Dict[int, List[Tuple[Vertex, int]]]:
        """The precomputed per-``k`` canonical rankings (copies)."""
        return {k: list(ranking) for k, ranking in self._rankings.items()}

    # ------------------------------------------------------------------
    # Persistence (the service layer's third warm-start artifact)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict:
        """The JSON-encodable artifact form of the precomputed rankings.

        The graph itself is *not* serialized — rankings are a derived
        artifact, so deserialization (:meth:`from_payload`) re-attaches
        them to the graph the caller already holds.
        """
        vertices = list(self._graph.vertices())
        position = {v: i for i, v in enumerate(vertices)}
        return {
            "format": "repro-hybrid-rankings",
            "version": _PERSIST_VERSION,
            "vertices": vertices,
            "rankings": {
                str(k): [[position[v], score] for v, score in ranking]
                for k, ranking in self._rankings.items()
            },
        }

    @classmethod
    def from_payload(cls, graph: Graph, payload: Dict,
                     source: str = "<payload>") -> "HybridSearcher":
        """Inverse of :meth:`to_payload`, re-attached to ``graph``.

        The payload's vertex list must match the graph's insertion
        order — rankings computed for a different graph would silently
        violate the canonical ranking contract otherwise.
        """
        if payload.get("format") != "repro-hybrid-rankings":
            raise IndexFormatError(f"{source}: not a hybrid-rankings payload")
        if payload.get("version") != _PERSIST_VERSION:
            raise IndexFormatError(
                f"{source}: unsupported version {payload.get('version')!r}")
        raw = payload["vertices"]
        vertices = [tuple(v) if isinstance(v, list) else v for v in raw]
        if vertices != list(graph.vertices()):
            raise IndexFormatError(
                f"{source}: rankings were precomputed for a different "
                "graph (vertex order mismatch)")
        rankings = {
            int(k): [(vertices[pos], score) for pos, score in ranking]
            for k, ranking in payload["rankings"].items()
        }
        return cls(graph, rankings)

    def save(self, path) -> None:
        """Persist the rankings as JSON (labels must be JSON-encodable)."""
        Path(path).write_text(dumps_payload(self.to_payload()),
                              encoding="utf-8")

    @classmethod
    def load(cls, graph: Graph, path) -> "HybridSearcher":
        """Inverse of :meth:`save`, re-attached to ``graph``."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_payload(graph, payload, source=str(path))

    def top_r(self, k: int, r: int, collect_contexts: bool = True) -> SearchResult:
        """Answer a query from the tables; contexts via Algorithm 2.

        ``search_space`` counts the actual online context computations
        (:func:`~repro.core.diversity.social_contexts` calls) — the cost
        the paper's Figure 11 sweeps.  Zero-score answers and queries
        with ``collect_contexts=False`` compute no contexts, so they
        contribute nothing: a query beyond :attr:`max_k` reports 0.
        """
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")
        start = time.perf_counter()
        r = min(r, max(self._graph.num_vertices, 1))
        ranking = self._rankings.get(k)
        if ranking is None:
            # k beyond every ego's trussness: all scores are zero.
            ranking = [(v, 0) for v in self._graph.vertices()]
        answer = canonical_zero_fill(ranking[:r], r, self._graph.vertices())
        search_space = 0
        entries = []
        for vertex, score in answer:
            if collect_contexts and score > 0:
                contexts = tuple(frozenset(c)
                                 for c in social_contexts(self._graph, vertex, k))
                search_space += 1
            else:
                contexts = tuple(frozenset() for _ in range(score))
            entries.append(TopEntry(vertex=vertex, score=score, contexts=contexts))
        return SearchResult(
            method="hybrid", k=k, r=r, entries=entries,
            search_space=search_space,
            elapsed_seconds=time.perf_counter() - start,
        )
