"""Dynamic TSD-index maintenance (the Section 5.3 "Remarks" extension).

The paper notes that the TSD-index "can support efficient updates in
dynamic graphs" and leaves the development as promising future work.
This module implements it: on an edge update, only the ego-networks
that actually changed are re-decomposed.

Locality argument (why the affected set is exactly right): inserting or
deleting edge ``(u, v)`` changes

* ``G_N(w)`` for every common neighbour ``w ∈ N(u) ∩ N(v)`` — the edge
  ``(u, v)`` appears/disappears inside those ego-networks;
* ``G_N(u)`` — vertex ``v`` (dis)appears together with its edges to
  ``N(u) ∩ N(v)``; symmetrically ``G_N(v)``.

No other ego-network gains or loses a vertex or an edge, so rebuilding
the forests of ``{u, v} ∪ (N(u) ∩ N(v))`` (common neighbours taken
while the edge is present) restores exact index state.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import GraphError
from repro.graph.graph import Graph, Vertex
from repro.graph.egonet import ego_network
from repro.truss.decomposition import truss_decomposition
from repro.core.tsd import TSDIndex, maximum_spanning_forest
from repro.core.results import SearchResult


class DynamicTSDIndex:
    """A graph plus a TSD-index kept consistent under edge updates.

    The wrapped graph is a private copy; all mutation goes through
    :meth:`insert_edge` / :meth:`delete_edge`.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> dyn = DynamicTSDIndex(Graph(edges=[(0, 1), (1, 2), (0, 2)]))
    >>> dyn.insert_edge(2, 3)
    >>> dyn.score(1, 2)
    1
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph.copy()
        self._index = TSDIndex.build(self._graph)
        self.rebuilt_vertices = 0  # cumulative maintenance-work counter

    @property
    def graph(self) -> Graph:
        """Read-only view of the maintained graph (do not mutate)."""
        return self._graph

    @property
    def index(self) -> TSDIndex:
        """The maintained TSD-index (always consistent with the graph)."""
        return self._index

    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert ``(u, v)`` and repair every affected ego forest."""
        if self._graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) already present")
        self._graph.add_edge(u, v)
        affected = self._affected(u, v)
        self._rebuild(affected)

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete ``(u, v)`` and repair every affected ego forest."""
        # Common neighbours must be computed while the edge's triangles
        # still exist.
        affected = self._affected(u, v)
        self._graph.remove_edge(u, v)
        self._rebuild(affected)

    def _affected(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        common = (self._graph.common_neighbors(u, v)
                  if u in self._graph and v in self._graph else set())
        return {u, v} | common

    def _rebuild(self, vertices: Set[Vertex]) -> None:
        for w in vertices:
            if w not in self._graph:
                self._index.drop_vertex(w)
                continue
            ego = ego_network(self._graph, w)
            weights = truss_decomposition(ego)
            forest = maximum_spanning_forest(ego.vertices(), weights.items())
            self._index.replace_forest(w, forest)
            self.rebuilt_vertices += 1

    # ------------------------------------------------------------------
    # Query pass-through
    # ------------------------------------------------------------------
    def score(self, v: Vertex, k: int) -> int:
        """Current ``score(v)`` (always consistent with the graph)."""
        return self._index.score(v, k)

    def contexts(self, v: Vertex, k: int) -> List[Set[Vertex]]:
        """Current social contexts of ``v``."""
        return self._index.contexts(v, k)

    def top_r(self, k: int, r: int, collect_contexts: bool = True) -> SearchResult:
        """Top-r search on the maintained index."""
        return self._index.top_r(k, r, collect_contexts=collect_contexts)
