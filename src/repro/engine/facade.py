"""The :class:`QueryEngine` facade: one entry point, five methods.

The library exposes the paper's methods as five disconnected entry
points (``online_search``, ``bound_search``, ``TSDIndex``, ``GCTIndex``,
``HybridSearcher``).  A service answering heavy repeated traffic needs
exactly one: *give me the top-r for (k, r), as cheaply as possible* —
and all five return identical ranked answers under the canonical
ranking contract of :mod:`repro.core.results`, so the choice is purely
a matter of cost.  The engine:

* owns the graph plus **lazily built, cached indexes** (TSD, GCT,
  hybrid rankings) — built at most once, reused by every later query;
* routes ``method="auto"`` through the cost-based
  :class:`~repro.engine.planner.QueryPlanner` (explicit method names
  override it);
* memoises per-``k`` score maps and canonical rankings in an LRU
  (:class:`~repro.engine.cache.ScoreMapCache`) shared across single
  queries and batch items;
* answers batches through :func:`repro.engine.batch.execute_batch`,
  which plans once for the whole batch and reuses the cache across
  items.

Examples
--------
>>> from repro.datasets.paper import figure1_graph
>>> from repro.engine import QueryEngine
>>> engine = QueryEngine(figure1_graph())
>>> result = engine.top_r(4, 1)
>>> result.vertices, result.scores
(['v'], [3])
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.online import online_search
from repro.core.bound import bound_search
from repro.core.diversity import structural_diversity
from repro.core.results import SearchResult, build_entries
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.core.hybrid import HybridSearcher
from repro.engine.cache import ScoreMapCache
from repro.engine.planner import EngineConfig, PlanDecision, QueryPlanner

#: Method names accepted by :meth:`QueryEngine.top_r`.
ENGINE_METHODS = ("auto", "baseline", "bound", "tsd", "gct", "hybrid")


@dataclass
class EngineStats:
    """A snapshot of what the engine has done so far."""

    queries: int = 0
    batches: int = 0
    point_lookups: int = 0
    method_counts: Dict[str, int] = field(default_factory=dict)
    decisions: List[PlanDecision] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cached_thresholds: List[int] = field(default_factory=list)
    index_build_seconds: Dict[str, float] = field(default_factory=dict)
    warm_loaded: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """Multi-line human-readable report (``repro engine-stats``)."""
        lines = [
            f"queries served:    {self.queries} "
            f"({self.batches} batches, {self.point_lookups} point lookups)",
            "methods used:      " + (", ".join(
                f"{m}={n}" for m, n in sorted(self.method_counts.items()))
                or "-"),
            f"score-map cache:   {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"(thresholds cached: {self.cached_thresholds or '-'})",
            "indexes built:     " + (", ".join(
                f"{name} in {seconds:.4f}s"
                for name, seconds in sorted(self.index_build_seconds.items()))
                or "none"),
            "warm-started:      " + (", ".join(self.warm_loaded)
                                     if self.warm_loaded else "no"),
        ]
        if self.decisions:
            lines.append("planner decisions:")
            lines.extend(f"  [{i}] {d.method}: {d.reason}"
                         for i, d in enumerate(self.decisions))
        return "\n".join(lines)


class QueryEngine:
    """Unified facade over every top-r structural diversity method.

    Parameters
    ----------
    graph:
        The graph to serve queries on.  The engine assumes it is not
        mutated behind its back; call :meth:`invalidate` after changing
        it.
    config:
        Planner/cache tunables (:class:`EngineConfig`); defaults match
        a small-service profile.
    warm_start:
        Optional :class:`~repro.service.store.IndexStore` (or a path to
        one) holding persisted index artifacts.  When the store knows
        this graph's content, the engine serves from the stored indexes
        — zero build seconds, rank-identical answers.  Artifacts are
        deserialized lazily, on the first access of each index, so a
        workload that only ever touches GCT never pays for parsing the
        TSD or hybrid artifacts.  An unknown graph falls back to a cold
        start (the store can be seeded later with :meth:`persist`).

    Examples
    --------
    >>> from repro.datasets.paper import figure1_graph
    >>> engine = QueryEngine(figure1_graph())
    >>> [r.scores for r in engine.top_r_many([(4, 1), (3, 2)])]
    [[3], [2, 1]]
    """

    def __init__(self, graph: Graph,
                 config: Optional[EngineConfig] = None,
                 warm_start=None) -> None:
        self._graph = graph
        self.config = config or EngineConfig()
        self.planner = QueryPlanner(self.config)
        self._cache = ScoreMapCache(self.config.score_cache_size)
        self._position: Dict[Vertex, int] = {
            v: i for i, v in enumerate(graph.vertices())}
        self._tsd: Optional[TSDIndex] = None
        self._gct: Optional[GCTIndex] = None
        self._hybrid: Optional[HybridSearcher] = None
        self._queries = 0
        self._batches = 0
        self._point_lookups = 0
        self._method_counts: Dict[str, int] = {}
        self._decisions: List[PlanDecision] = []
        self._build_seconds: Dict[str, float] = {}
        self._warm_loaded: List[str] = []
        self._warm_source = None
        self._warm_key: Optional[str] = None
        if warm_start is not None:
            self._warm_attach(warm_start)

    def _warm_attach(self, warm_start) -> None:
        """Bind stored artifacts so index accesses load, not build."""
        # Imported lazily: repro.service sits on top of the engine.
        from repro.service.store import IndexStore, graph_fingerprint
        store = (warm_start if isinstance(warm_start, IndexStore)
                 else IndexStore(warm_start))
        # Fingerprint once: every later store call reuses the key
        # instead of re-hashing the whole edge list.
        key = graph_fingerprint(self._graph)
        if not store.has(self._graph, key=key):
            return  # cold start; persist() can seed the store later
        self._warm_source = store
        self._warm_key = key
        self._warm_loaded = store.current(self._graph,
                                          key=key).artifact_names

    def _load_stored(self, name: str) -> bool:
        """Deserialize one stored artifact into the engine, if bound.

        Returns ``True`` when the index attribute was populated from
        the store — the caller then skips its build path entirely.
        """
        if self._warm_source is None or name not in self._warm_loaded:
            return False
        loaded = self._warm_source.load(self._graph, names=[name],
                                        key=self._warm_key)
        obj = getattr(loaded, name)
        if obj is None:
            return False
        setattr(self, {"tsd": "_tsd", "gct": "_gct",
                       "hybrid": "_hybrid"}[name], obj)
        return True

    # ------------------------------------------------------------------
    # Owned state: graph and lazily built indexes
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The graph this engine serves."""
        return self._graph

    @property
    def tsd_index(self) -> TSDIndex:
        """The TSD-index, built on first access and cached.

        Construction follows ``config.build_jobs`` through the
        :mod:`repro.build` pipeline (auto-planned shared pass by
        default); the measured seconds — of whatever strategy actually
        ran — recalibrate the planner's build-versus-scan break-even.
        """
        if self._tsd is None and not self._load_stored("tsd"):
            start = time.perf_counter()
            self._tsd = TSDIndex.build(self._graph,
                                       jobs=self.config.build_jobs)
            self._build_seconds["tsd"] = time.perf_counter() - start
            self.planner.observe_build("tsd", self._build_seconds["tsd"])
        return self._tsd

    @property
    def gct_index(self) -> GCTIndex:
        """The GCT-index, built on first access and cached.

        When a TSD-index already exists it is *compressed* instead of
        rebuilding from the graph — structurally identical (canonical
        Kruskal order) and cheaper than re-extracting every ego-network.
        """
        if self._gct is None and not self._load_stored("gct"):
            if self._tsd is None:
                # A stored TSD still beats re-decomposing every ego.
                self._load_stored("tsd")
            start = time.perf_counter()
            if self._tsd is not None:
                self._gct = GCTIndex.compress(self._tsd)
            else:
                self._gct = GCTIndex.build(self._graph,
                                           jobs=self.config.build_jobs)
            self._build_seconds["gct"] = time.perf_counter() - start
            self.planner.observe_build("gct", self._build_seconds["gct"])
        return self._gct

    @property
    def hybrid_searcher(self) -> HybridSearcher:
        """The hybrid per-``k`` rankings, built on first access."""
        if self._hybrid is None and not self._load_stored("hybrid"):
            start = time.perf_counter()
            self._hybrid = HybridSearcher.precompute(
                self._graph, index=self.tsd_index)
            self._build_seconds["hybrid"] = time.perf_counter() - start
            self.planner.observe_build("hybrid", self._build_seconds["hybrid"])
        return self._hybrid

    def invalidate(self) -> None:
        """Drop all indexes and cached score maps (graph was mutated).

        The planner's cost calibration survives — measured build and
        query costs describe the hardware and graph scale, which a
        mutation does not meaningfully change.  For *fine-grained*
        invalidation (only affected thresholds dropped, indexes patched
        instead of discarded) serve through
        :class:`repro.service.DiversityService` instead.
        """
        self._tsd = None
        self._gct = None
        self._hybrid = None
        self._warm_loaded = []
        self._warm_source = None  # stored artifacts are stale too
        self._warm_key = None
        self._cache.clear()
        self._position = {v: i for i, v in enumerate(self._graph.vertices())}

    # ------------------------------------------------------------------
    # Persistence and snapshot hand-off (the service layer's hooks)
    # ------------------------------------------------------------------
    def persist(self, store, artifacts: Sequence[str] = ("tsd", "gct",
                                                         "hybrid")):
        """Build (at most once) and persist index artifacts to a store.

        ``store`` is an :class:`~repro.service.store.IndexStore` or a
        path to one.  Returns the new
        :class:`~repro.service.store.StoreVersion`, so a later engine
        on the same graph content can pass the store as ``warm_start=``
        and skip every build.
        """
        from repro.service.store import IndexStore
        if not isinstance(store, IndexStore):
            store = IndexStore(store)
        known = {"tsd": lambda: self.tsd_index,
                 "gct": lambda: self.gct_index,
                 "hybrid": lambda: self.hybrid_searcher}
        unknown = [name for name in artifacts if name not in known]
        if unknown:
            raise InvalidParameterError(
                f"unknown artifacts {unknown}; expected a subset of "
                f"{sorted(known)}")
        return store.put(self._graph,
                         **{name: known[name]() for name in artifacts})

    def snapshot(self):
        """An immutable :class:`~repro.service.snapshot.Snapshot` of the
        engine's current state: a private graph copy, the built indexes
        (GCT is ensured — built or compressed now, never during a
        reader's query), and the live score-map cache entries.

        The hand-off is one-way: the snapshot serves concurrent readers
        lock-free while the engine remains free to mutate and rebuild.
        """
        from repro.service.snapshot import Snapshot
        # Pending stored artifacts join the hand-off (no builds though:
        # tsd/hybrid stay absent unless stored or already built).
        if self._tsd is None:
            self._load_stored("tsd")
        if self._hybrid is None:
            self._load_stored("hybrid")
        return Snapshot(self._graph, tsd=self._tsd, gct=self.gct_index,
                        hybrid=self._hybrid, scores=self._cache.entries())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_r(self, k: int, r: int, method: str = "auto",
              collect_contexts: bool = True) -> SearchResult:
        """Top-r structural diversity search through the planner.

        ``method="auto"`` lets the cost-based planner pick; any explicit
        method name from :data:`ENGINE_METHODS` overrides it.  All
        methods return the same canonically ranked answer — only the
        cost differs.
        """
        self._check_query(k, r)
        resolved = self._resolve(method, batch_size=1)
        result = self._serve(k, r, resolved, collect_contexts)
        self._queries += 1
        return result

    def top_r_many(self, queries: Sequence[Tuple[int, int]],
                   method: str = "auto",
                   collect_contexts: bool = True) -> List[SearchResult]:
        """Answer a batch of ``(k, r)`` queries, amortising shared work.

        The planner decides once for the whole batch; items sharing a
        threshold ``k`` reuse one cached score map and ranking.  Results
        come back in input order.
        """
        from repro.engine.batch import execute_batch
        return execute_batch(self, queries, method=method,
                             collect_contexts=collect_contexts)

    def score(self, v: Vertex, k: int) -> int:
        """``score(v)`` at threshold ``k``, from the cheapest source.

        Prefers a cached score map, then a built index, and only falls
        back to the from-scratch Algorithm 2 when the engine has built
        nothing yet (a point lookup alone does not justify an index).
        """
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if v not in self._graph:
            raise InvalidParameterError(
                f"vertex {v!r} is not in the engine's graph")
        self._point_lookups += 1
        entry = self._cache.get(k)
        if entry is not None:
            return entry[0][v]
        if self._gct is not None:
            return self._gct.score(v, k)
        if self._tsd is not None:
            return self._tsd.score(v, k)
        return structural_diversity(self._graph, v, k)

    def stats(self) -> EngineStats:
        """A snapshot of queries, planner decisions, cache and builds."""
        return EngineStats(
            queries=self._queries,
            batches=self._batches,
            point_lookups=self._point_lookups,
            method_counts=dict(self._method_counts),
            decisions=list(self._decisions),
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            cached_thresholds=self._cache.cached_thresholds(),
            index_build_seconds=dict(self._build_seconds),
            warm_loaded=list(self._warm_loaded),
        )

    # ------------------------------------------------------------------
    # Internals (also used by the batch executor)
    # ------------------------------------------------------------------
    @staticmethod
    def _check_query(k: int, r: int) -> None:
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")

    def _resolve(self, method: str, batch_size: int) -> str:
        """Map ``method`` to a concrete method name, consulting the
        planner for ``"auto"`` and recording its decision."""
        if method not in ENGINE_METHODS:
            raise InvalidParameterError(
                f"unknown method {method!r}; expected one of {ENGINE_METHODS}")
        if method != "auto":
            return method
        decision = self.planner.choose(
            num_edges=self._graph.num_edges,
            queries_seen=self._queries,
            batch_size=batch_size,
            # A TSD index counts too (GCT compresses from it cheaply),
            # as do stored tsd/gct artifacts pending a lazy warm load —
            # but not a stored hybrid alone, which cannot produce a GCT
            # without a full build.
            index_ready=(self._gct is not None or self._tsd is not None
                         or bool({"tsd", "gct"} & set(self._warm_loaded))),
        )
        self._decisions.append(decision)
        return decision.method

    def _serve(self, k: int, r: int, method: str,
               collect_contexts: bool) -> SearchResult:
        """Run one concrete method (no planning, no query counting).

        Every served query's wall-clock cost is reported back to the
        planner, which uses the measurements to calibrate its
        index-versus-online break-even (index builds triggered inside
        the call are charged separately via ``observe_build``, not to
        the query that happened to trigger them).
        """
        self._method_counts[method] = self._method_counts.get(method, 0) + 1
        builds_before = sum(self._build_seconds.values())
        start = time.perf_counter()
        result = self._dispatch(k, r, method, collect_contexts)
        elapsed = time.perf_counter() - start
        elapsed -= sum(self._build_seconds.values()) - builds_before
        self.planner.observe_query(method, max(elapsed, 0.0))
        return result

    def _dispatch(self, k: int, r: int, method: str,
                  collect_contexts: bool) -> SearchResult:
        if method == "baseline":
            return online_search(self._graph, k, r,
                                 collect_contexts=collect_contexts)
        if method == "bound":
            return bound_search(self._graph, k, r,
                                collect_contexts=collect_contexts)
        if method == "tsd":
            return self.tsd_index.top_r(k, r,
                                        collect_contexts=collect_contexts)
        if method == "hybrid":
            return self.hybrid_searcher.top_r(
                k, r, collect_contexts=collect_contexts)
        return self._serve_from_gct(k, r, collect_contexts)

    def _serve_from_gct(self, k: int, r: int,
                        collect_contexts: bool) -> SearchResult:
        """GCT answer through the per-``k`` score-map cache.

        On a cache miss the engine scores every vertex once (Lemma 3)
        and memoises both the map and the canonical ranking; on a hit
        the answer is a slice of the cached ranking.  ``search_space``
        reports actual score computations: ``|V|`` on a miss, 0 on a
        hit.

        The index is touched lazily: a cache hit with
        ``collect_contexts=False`` needs no index at all, so it must
        not trigger a build on an engine whose cache was seeded from
        elsewhere (a warm-started store, a snapshot hand-off).
        """
        start = time.perf_counter()
        entry = self._cache.get(k)
        if entry is None:
            index = self.gct_index
            score_map = index.scores_for_all(k)
            ranking = sorted(
                score_map.items(),
                key=lambda pair: (-pair[1], self._position[pair[0]]))
            self._cache.put(k, score_map, ranking)
            search_space = len(score_map)
        else:
            _, ranking = entry
            search_space = 0
        answer = ranking[:min(r, len(ranking))]
        entries = build_entries(
            answer, lambda v: self.gct_index.contexts(v, k),
            collect_contexts)
        return SearchResult(
            method="GCT", k=k, r=min(r, max(len(ranking), 1)),
            entries=entries, search_space=search_space,
            elapsed_seconds=time.perf_counter() - start,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = [name for name, obj in (("tsd", self._tsd), ("gct", self._gct),
                                        ("hybrid", self._hybrid))
                 if obj is not None]
        return (f"QueryEngine(|V|={self._graph.num_vertices}, "
                f"|E|={self._graph.num_edges}, "
                f"indexes={built or 'none'}, queries={self._queries})")
