"""Cost-based method selection for the query engine.

The paper's five methods answer the same query at very different cost
profiles: the online baseline pays ``O(Σ m_v)`` per query but nothing up
front; the bound framework prunes that per-query cost; the GCT index
pays a build once and then answers any ``(k, r)`` almost for free.  The
right choice therefore depends on the *workload*, not the query:

* a one-shot query on a small graph → just scan (``baseline``);
* a one-shot query on a large graph → scan with pruning (``bound``);
* repeated or batched traffic → build the index once and amortise
  (``gct``) — and once an index exists, always use it.

:class:`QueryPlanner` encodes exactly that decision, parameterised by
:class:`EngineConfig`.  Every decision carries a human-readable reason,
surfaced by ``repro engine-stats`` and the engine's statistics.

Calibration from measured times
-------------------------------
The static edge-count thresholds are priors, not measurements.  The
engine feeds the planner every cost it actually observes —
:meth:`QueryPlanner.observe_query` per served query,
:meth:`QueryPlanner.observe_build` per index build — and once the
planner has seen both a full index build and an online query it
switches to a *measured break-even*: build the index as soon as the
projected traffic amortises the measured build cost over the measured
per-query saving (:meth:`QueryPlanner.break_even_queries`).  Fresh
planners with no observations behave exactly as before, so calibration
only ever replaces a guess with a measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the engine's planner and caches.

    Attributes
    ----------
    small_graph_edges:
        A one-shot query on a graph with at most this many edges runs
        the plain online baseline — the scan is cheaper than computing
        pruning bounds, let alone building an index.
    index_reuse_threshold:
        Once the engine has seen (or is about to serve, for a batch)
        this many queries, it builds the GCT index and serves from it;
        the build cost amortises across the repeated traffic.
    score_cache_size:
        Number of distinct thresholds ``k`` whose score maps and
        rankings stay memoised (LRU).
    build_jobs:
        Worker request forwarded to every index build the engine
        triggers (see :meth:`repro.build.BuildPlan.decide`): ``0`` (the
        default) auto-plans — the shared-pass pipeline, with a worker
        pool only when the graph is large and CPUs are spare; ``1``
        forces the serial shared pass; ``>= 2`` requests that many
        workers; ``None`` keeps the legacy per-vertex build.  Whatever
        the strategy, the built indexes are byte-identical, and the
        *measured* build seconds flow into
        :meth:`QueryPlanner.observe_build` — so the break-even between
        online scans and index builds is calibrated against the build
        cost this configuration actually achieves.
    """

    small_graph_edges: int = 2_000
    index_reuse_threshold: int = 2
    score_cache_size: int = 8
    build_jobs: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.small_graph_edges < 0:
            raise InvalidParameterError(
                f"small_graph_edges must be >= 0, got {self.small_graph_edges}")
        if self.index_reuse_threshold < 1:
            raise InvalidParameterError(
                "index_reuse_threshold must be >= 1, "
                f"got {self.index_reuse_threshold}")
        if self.score_cache_size < 1:
            raise InvalidParameterError(
                f"score_cache_size must be >= 1, got {self.score_cache_size}")
        if self.build_jobs is not None and self.build_jobs < 0:
            raise InvalidParameterError(
                f"build_jobs must be None or >= 0, got {self.build_jobs}")


@dataclass(frozen=True)
class PlanDecision:
    """One planner verdict: the chosen method and why."""

    method: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.method}: {self.reason}"


class QueryPlanner:
    """Chooses the cheapest method for the workload seen so far.

    Examples
    --------
    >>> planner = QueryPlanner(EngineConfig(small_graph_edges=100))
    >>> planner.choose(num_edges=40, queries_seen=0, batch_size=1,
    ...                index_ready=False).method
    'baseline'
    >>> planner.choose(num_edges=40, queries_seen=0, batch_size=5,
    ...                index_ready=False).method
    'gct'
    """

    #: Methods whose measured query cost counts as "online" (no index).
    _ONLINE_METHODS = ("baseline", "bound")

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        # method -> (total seconds, observation count)
        self._query_seconds: Dict[str, Tuple[float, int]] = {}
        # index name -> latest measured build seconds
        self._build_seconds: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Calibration: the engine reports what things actually cost
    # ------------------------------------------------------------------
    def observe_query(self, method: str, seconds: float) -> None:
        """Record one served query's measured wall-clock cost."""
        total, count = self._query_seconds.get(method, (0.0, 0))
        self._query_seconds[method] = (total + seconds, count + 1)

    def observe_build(self, name: str, seconds: float) -> None:
        """Record one index build's measured wall-clock cost."""
        self._build_seconds[name] = seconds

    def measured_query_seconds(self, method: str) -> Optional[float]:
        """Mean observed query seconds for ``method`` (``None`` unseen)."""
        entry = self._query_seconds.get(method)
        if entry is None or entry[1] == 0:
            return None
        return entry[0] / entry[1]

    def measured_build_seconds(self) -> Optional[float]:
        """Measured cost of reaching a servable GCT index from cold.

        Requires a recorded ``gct`` build; a recorded ``tsd`` build is
        added when present (the engine's cheap path builds TSD first
        and compresses, so the cold-start cost is their sum).
        """
        if "gct" not in self._build_seconds:
            return None
        return (self._build_seconds["gct"]
                + self._build_seconds.get("tsd", 0.0))

    def _measured_online(self) -> Optional[Tuple[str, float]]:
        """The cheapest *measured* online method and its mean seconds."""
        candidates = [(self.measured_query_seconds(m), m)
                      for m in self._ONLINE_METHODS]
        measured = [(cost, m) for cost, m in candidates if cost is not None]
        if not measured:
            return None
        cost, method = min(measured)
        return method, cost

    def break_even_queries(self) -> Optional[int]:
        """Measured query count past which the index build amortises.

        ``None`` while uncalibrated (no measured build or online cost),
        and also when the measured marginal index query is *not* cheaper
        than the online scan — then no traffic volume justifies a build.
        """
        build = self.measured_build_seconds()
        online = self._measured_online()
        if build is None or online is None:
            return None
        index_query = self.measured_query_seconds("gct") or 0.0
        saving = online[1] - index_query
        if saving <= 0:
            return None
        return max(1, math.ceil(build / saving))

    @property
    def is_calibrated(self) -> bool:
        """Whether measured costs (not edge-count priors) drive choices."""
        return (self.measured_build_seconds() is not None
                and self._measured_online() is not None)

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    def choose(self, *, num_edges: int, queries_seen: int,
               batch_size: int = 1, index_ready: bool = False) -> PlanDecision:
        """Pick a method for the next ``batch_size`` queries.

        Parameters
        ----------
        num_edges:
            ``|E|`` of the engine's graph (the online cost driver).
        queries_seen:
            Top-r queries the engine has already served.
        batch_size:
            Queries about to be served together (1 for a single query).
        index_ready:
            Whether a GCT index is already built — sunk cost, so the
            marginal index query always wins.
        """
        if index_ready:
            return PlanDecision(
                "gct", "index already built — marginal query cost is "
                       "two binary searches per vertex")
        projected = queries_seen + batch_size
        if self.is_calibrated:
            return self._choose_calibrated(projected)
        if batch_size > 1 or projected >= self.config.index_reuse_threshold:
            return PlanDecision(
                "gct", f"repeated traffic ({projected} queries so far) — "
                       "one index build amortises across the workload")
        if num_edges <= self.config.small_graph_edges:
            return PlanDecision(
                "baseline", f"one-shot query on a small graph "
                            f"({num_edges} edges) — a plain online scan "
                            "beats any index build")
        return PlanDecision(
            "bound", f"one-shot query on a large graph ({num_edges} edges) "
                     "— pruned online search avoids an index build")

    def _choose_calibrated(self, projected: int) -> PlanDecision:
        """The measured break-even decision (both costs observed)."""
        method, online_cost = self._measured_online()
        break_even = self.break_even_queries()
        build = self.measured_build_seconds()
        if break_even is None:
            return PlanDecision(
                method, f"calibrated: measured {method} query "
                        f"({online_cost:.4f}s) is not beaten by the "
                        "marginal index query — no build pays off")
        if projected >= break_even:
            return PlanDecision(
                "gct", f"calibrated: {projected} queries ≥ measured "
                       f"break-even {break_even} — the {build:.4f}s build "
                       "amortises")
        return PlanDecision(
            method, f"calibrated: {projected} queries < measured "
                    f"break-even {break_even} — {method} at "
                    f"{online_cost:.4f}s/query stays cheaper")
