"""Cost-based method selection for the query engine.

The paper's five methods answer the same query at very different cost
profiles: the online baseline pays ``O(Σ m_v)`` per query but nothing up
front; the bound framework prunes that per-query cost; the GCT index
pays a build once and then answers any ``(k, r)`` almost for free.  The
right choice therefore depends on the *workload*, not the query:

* a one-shot query on a small graph → just scan (``baseline``);
* a one-shot query on a large graph → scan with pruning (``bound``);
* repeated or batched traffic → build the index once and amortise
  (``gct``) — and once an index exists, always use it.

:class:`QueryPlanner` encodes exactly that decision, parameterised by
:class:`EngineConfig`.  Every decision carries a human-readable reason,
surfaced by ``repro engine-stats`` and the engine's statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the engine's planner and caches.

    Attributes
    ----------
    small_graph_edges:
        A one-shot query on a graph with at most this many edges runs
        the plain online baseline — the scan is cheaper than computing
        pruning bounds, let alone building an index.
    index_reuse_threshold:
        Once the engine has seen (or is about to serve, for a batch)
        this many queries, it builds the GCT index and serves from it;
        the build cost amortises across the repeated traffic.
    score_cache_size:
        Number of distinct thresholds ``k`` whose score maps and
        rankings stay memoised (LRU).
    """

    small_graph_edges: int = 2_000
    index_reuse_threshold: int = 2
    score_cache_size: int = 8

    def __post_init__(self) -> None:
        if self.small_graph_edges < 0:
            raise InvalidParameterError(
                f"small_graph_edges must be >= 0, got {self.small_graph_edges}")
        if self.index_reuse_threshold < 1:
            raise InvalidParameterError(
                "index_reuse_threshold must be >= 1, "
                f"got {self.index_reuse_threshold}")
        if self.score_cache_size < 1:
            raise InvalidParameterError(
                f"score_cache_size must be >= 1, got {self.score_cache_size}")


@dataclass(frozen=True)
class PlanDecision:
    """One planner verdict: the chosen method and why."""

    method: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.method}: {self.reason}"


class QueryPlanner:
    """Chooses the cheapest method for the workload seen so far.

    Examples
    --------
    >>> planner = QueryPlanner(EngineConfig(small_graph_edges=100))
    >>> planner.choose(num_edges=40, queries_seen=0, batch_size=1,
    ...                index_ready=False).method
    'baseline'
    >>> planner.choose(num_edges=40, queries_seen=0, batch_size=5,
    ...                index_ready=False).method
    'gct'
    """

    def __init__(self, config: EngineConfig) -> None:
        self.config = config

    def choose(self, *, num_edges: int, queries_seen: int,
               batch_size: int = 1, index_ready: bool = False) -> PlanDecision:
        """Pick a method for the next ``batch_size`` queries.

        Parameters
        ----------
        num_edges:
            ``|E|`` of the engine's graph (the online cost driver).
        queries_seen:
            Top-r queries the engine has already served.
        batch_size:
            Queries about to be served together (1 for a single query).
        index_ready:
            Whether a GCT index is already built — sunk cost, so the
            marginal index query always wins.
        """
        if index_ready:
            return PlanDecision(
                "gct", "index already built — marginal query cost is "
                       "two binary searches per vertex")
        projected = queries_seen + batch_size
        if batch_size > 1 or projected >= self.config.index_reuse_threshold:
            return PlanDecision(
                "gct", f"repeated traffic ({projected} queries so far) — "
                       "one index build amortises across the workload")
        if num_edges <= self.config.small_graph_edges:
            return PlanDecision(
                "baseline", f"one-shot query on a small graph "
                            f"({num_edges} edges) — a plain online scan "
                            "beats any index build")
        return PlanDecision(
            "bound", f"one-shot query on a large graph ({num_edges} edges) "
                     "— pruned online search avoids an index build")
