"""Per-``k`` LRU cache of score maps and canonical rankings.

The parameter-free indexes answer *any* ``k``, but a top-r query at one
threshold still has to score every vertex and sort.  Production traffic
repeats thresholds heavily (a service typically exposes a handful of
``k`` presets), so the engine memoises, per ``k``:

* the full score map ``{vertex: score}`` — reused by :meth:`score`
  point lookups and by every batch item at the same threshold, and
* the canonical ranking (vertices sorted by descending score, ties by
  graph insertion order) — so a repeated ``top_r`` is a slice, not a
  sort.

Entries are evicted least-recently-used once ``maxsize`` distinct
thresholds are live.  The cache is shared across single queries and
batch items alike; :meth:`hits`/:meth:`misses` feed the engine's
statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Vertex

#: One cached threshold: the score map and the canonical ranking.
CacheEntry = Tuple[Dict[Vertex, int], List[Tuple[Vertex, int]]]


class ScoreMapCache:
    """LRU mapping ``k`` → (score map, canonical ranking)."""

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise InvalidParameterError(f"maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[int, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def maxsize(self) -> int:
        """Maximum number of distinct thresholds kept."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, k: int) -> bool:
        return k in self._entries

    def cached_thresholds(self) -> List[int]:
        """Live thresholds, least-recently-used first."""
        return list(self._entries)

    def get(self, k: int) -> Optional[CacheEntry]:
        """The cached entry for ``k``, refreshing its recency; ``None``
        on a miss.  Every call counts towards the hit/miss statistics."""
        entry = self._entries.get(k)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(k)
        self.hits += 1
        return entry

    def put(self, k: int, score_map: Dict[Vertex, int],
            ranking: List[Tuple[Vertex, int]]) -> None:
        """Install the entry for ``k``, evicting the LRU beyond capacity."""
        self._entries[k] = (score_map, ranking)
        self._entries.move_to_end(k)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)

    def entries(self) -> Dict[int, CacheEntry]:
        """Every live entry as ``k`` → (score map, ranking), a shallow
        copy — the snapshot hand-off reads the cache without touching
        recency or the hit/miss statistics."""
        return dict(self._entries)

    def clear(self) -> None:
        """Drop every entry (graph mutation invalidates all score maps)."""
        self._entries.clear()
