"""Unified query engine: planner, caches, and batched execution.

One facade (:class:`QueryEngine`) over the five equivalent search
methods, for services answering repeated ``top_r``/``score`` traffic:

* :mod:`repro.engine.facade` — the :class:`QueryEngine` facade owning
  the graph and its lazily built indexes;
* :mod:`repro.engine.planner` — the cost-based method chooser
  (:class:`QueryPlanner`, :class:`EngineConfig`);
* :mod:`repro.engine.cache` — the per-``k`` LRU of score maps and
  canonical rankings (:class:`ScoreMapCache`);
* :mod:`repro.engine.batch` — order-preserving batch execution.

All methods agree on answers by the canonical ranking contract
(:mod:`repro.core.results`), which is what makes the planner's choice a
pure cost decision.
"""

from repro.engine.cache import ScoreMapCache
from repro.engine.planner import EngineConfig, PlanDecision, QueryPlanner
from repro.engine.facade import ENGINE_METHODS, EngineStats, QueryEngine
from repro.engine.batch import execute_batch

__all__ = [
    "ENGINE_METHODS",
    "EngineConfig",
    "EngineStats",
    "PlanDecision",
    "QueryEngine",
    "QueryPlanner",
    "ScoreMapCache",
    "execute_batch",
]
