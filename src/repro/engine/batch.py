"""Batched top-r execution: plan once, share work across items.

A batch ``[(k1, r1), (k2, r2), ...]`` is the engine's highest-leverage
workload: the planner decides *once* for the whole batch (a batch is by
definition repeated traffic, so it almost always lands on the index),
and items that share a threshold ``k`` reuse one score map and one
canonical ranking from the engine's LRU cache — the second ``(k, r')``
at the same ``k`` is a list slice.

Items are executed grouped by ``k`` so a batch with more distinct
thresholds than the cache holds cannot thrash the LRU, but results are
returned in input order.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.results import SearchResult


def execute_batch(engine, queries: Sequence[Tuple[int, int]],
                  method: str = "auto",
                  collect_contexts: bool = True) -> List[SearchResult]:
    """Answer every ``(k, r)`` in ``queries``; results in input order.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.engine.facade.QueryEngine`.
    queries:
        ``(k, r)`` pairs; validated up front so a bad item fails the
        batch before any work is done.
    method:
        ``"auto"`` plans once for the whole batch; explicit names
        force every item through that method.
    """
    queries = list(queries)
    for k, r in queries:
        engine._check_query(k, r)
    if not queries:
        return []
    resolved = engine._resolve(method, batch_size=len(queries))
    # Group same-k items (stable within a threshold) so each score map
    # is computed at most once even when distinct thresholds exceed the
    # cache capacity; original positions restore the input order.
    order = sorted(range(len(queries)), key=lambda i: queries[i][0])
    results: List[SearchResult] = [None] * len(queries)  # type: ignore[list-item]
    for i in order:
        k, r = queries[i]
        results[i] = engine._serve(k, r, resolved, collect_contexts)
    engine._queries += len(queries)
    engine._batches += 1
    return results
