"""Datasets: paper toy graphs, synthetic generators, and the registry."""

from repro.datasets.paper import (
    figure1_graph,
    figure1_ego_vertices,
    figure2_h1_graph,
    figure18_graph,
)
from repro.datasets.synthetic import (
    add_planted_cliques,
    barabasi_albert,
    powerlaw_cluster,
    erdos_renyi,
    gnm_random,
    watts_strogatz,
    stochastic_block_model,
    planted_context_graph,
    power_law_graph,
)
from repro.datasets.registry import (
    DatasetSpec,
    dataset_names,
    dataset_spec,
    load_dataset,
    paper_table1,
    FIGURE3_DATASETS,
    SWEEP_DATASETS,
)
from repro.datasets.dblp import (
    dblp_like_network,
    TRUSS_HUB,
    COMP_HUB,
    CORE_HUB,
)

__all__ = [
    "add_planted_cliques",
    "figure1_graph",
    "figure1_ego_vertices",
    "figure2_h1_graph",
    "figure18_graph",
    "barabasi_albert",
    "powerlaw_cluster",
    "erdos_renyi",
    "gnm_random",
    "watts_strogatz",
    "stochastic_block_model",
    "planted_context_graph",
    "power_law_graph",
    "DatasetSpec",
    "dataset_names",
    "dataset_spec",
    "load_dataset",
    "paper_table1",
    "FIGURE3_DATASETS",
    "SWEEP_DATASETS",
    "dblp_like_network",
    "TRUSS_HUB",
    "COMP_HUB",
    "CORE_HUB",
]
