"""The paper's running-example graphs, reconstructed edge-by-edge.

These tiny graphs anchor the golden tests: the paper states exact edge
supports, trussnesses, scores, and index contents for them, so every
algorithm can be validated against published numbers.

* :func:`figure1_graph` — the 17-vertex graph of Figure 1 with
  ``score(v) = 3`` at ``k = 4``.
* :func:`figure2_h1_graph` — the H1 subgraph with the exact supports of
  Figure 2(a) and trussnesses of Figure 2(b).
* :func:`figure18_graph` — the TSD-vs-TCP comparison graph of Figure 18.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from repro.graph.graph import Graph


def _clique_edges(members: List[str]) -> List[Tuple[str, str]]:
    return list(combinations(members, 2))


def figure2_h1_graph() -> Graph:
    """The subgraph H1 of the running example.

    Two 4-cliques ``{x1..x4}`` and ``{y1..y4}`` bridged by the edges
    ``(x2, y1)`` and ``(x4, y1)``.  Matches Figure 2 exactly:

    * supports: clique edges 2, except ``(x2, x4)`` with 3 (the bridge
      vertex ``y1`` adds a triangle); bridges 1;
    * trussnesses: clique edges 4, bridges 3.
    """
    xs = ["x1", "x2", "x3", "x4"]
    ys = ["y1", "y2", "y3", "y4"]
    edges = _clique_edges(xs) + _clique_edges(ys)
    edges += [("x2", "y1"), ("x4", "y1")]
    return Graph(edges=edges)


def figure1_graph() -> Graph:
    """The full running example ``G`` of Figure 1 (17 vertices).

    The ego-network of ``"v"`` contains three maximal connected
    4-trusses: H3 = ``{x1..x4}``, H4 = ``{y1..y4}`` and
    H2 = ``{r1..r6}``, so ``score("v") = 3`` at ``k = 4``.

    Reconstruction notes:

    * H2 is the octahedron ``K_{2,2,2}`` with parts ``{r1,r4}``,
      ``{r2,r5}``, ``{r3,r6}`` — every edge in exactly two triangles,
      hence a connected 4-truss on six vertices.  This reproduces the
      paper's non-symmetry example: ``τ_{G_N(v)}(r1, r2) = 4`` while
      ``τ_{G_N(r1)}(v, r2) = 3`` (the ego-network of ``r1`` is a wheel).
    * ``s1`` and ``s2`` are the two vertices outside the ego-network
      (bringing ``|V|`` to the 17 the paper counts), attached to the x
      and y groups respectively.
    """
    graph = figure2_h1_graph()
    # Center vertex adjacent to all of x1..x4, y1..y4, r1..r6.
    for group in (["x1", "x2", "x3", "x4"],
                  ["y1", "y2", "y3", "y4"],
                  ["r1", "r2", "r3", "r4", "r5", "r6"]):
        for u in group:
            graph.add_edge("v", u)
    # H2: octahedron on r1..r6 (parts {r1,r4}, {r2,r5}, {r3,r6}).
    parts = [("r1", "r4"), ("r2", "r5"), ("r3", "r6")]
    for i in range(3):
        for j in range(i + 1, 3):
            for a in parts[i]:
                for b in parts[j]:
                    graph.add_edge(a, b)
    # The two outsiders s1, s2 (not adjacent to v).
    graph.add_edge("s1", "x1")
    graph.add_edge("s1", "x3")
    graph.add_edge("s2", "y2")
    return graph


def figure1_ego_vertices() -> List[str]:
    """``N(v)`` of the running example, in the paper's order."""
    return (["x1", "x2", "x3", "x4"]
            + ["y1", "y2", "y3", "y4"]
            + ["r1", "r2", "r3", "r4", "r5", "r6"])


def figure18_graph() -> Graph:
    """The TSD-vs-TCP comparison graph of Figure 18.

    A triangle ``q1 q2 q3`` where each triangle edge is thickened into a
    4-clique by a private vertex pair: ``{q1,q2,z1,z2}``,
    ``{q1,q3,z3,z4}`` and ``{q2,q3,z5,z6}`` are all K4s.

    Consequences (matching the figure):

    * every edge of the three K4s has global trussness 4, so the
      TCP-index of ``q1`` carries weight 4 on all five forest edges;
    * in the *ego-network* of ``q1`` the edge ``(q2, q3)`` has no common
      neighbour, so its TSD weight is 2, while the two private triangles
      give weight-3 edges — global trussness and ego trussness tell
      different stories, the paper's Section 8.2 point.
    """
    edges = (_clique_edges(["q1", "q2", "z1", "z2"])
             + _clique_edges(["q1", "q3", "z3", "z4"])
             + _clique_edges(["q2", "q3", "z5", "z6"]))
    return Graph(edges=edges)
