"""Synthetic graph generators (implemented from scratch).

The offline environment has no access to the SNAP datasets the paper
uses, so the benchmark harness runs on synthetic analogues.  The
generators below cover the structural families that matter here:

* :func:`powerlaw_cluster` (Holme–Kim) — preferential attachment with
  triad formation.  Power-law degrees *and* abundant triangles, which is
  what produces the heavy-tailed edge-trussness distribution of the
  paper's Figure 3.  This is the workhorse for the dataset registry.
* :func:`barabasi_albert` — plain preferential attachment; triangle-poor
  (used for the socfb-konect analogue whose max trussness is only 7).
* :func:`erdos_renyi` / :func:`gnm_random` — homogeneous baselines.
* :func:`watts_strogatz` — ring lattice with rewiring (high clustering,
  low trussness variance).
* :func:`stochastic_block_model` — planted communities.
* :func:`planted_context_graph` — a designed ego-network with a known
  ground-truth structural diversity, for correctness tests and demos.
* :func:`power_law_graph` — the Exp-6 scalability family with
  ``|E| = 5 |V|``, standing in for the "PythonWeb Graph Generator".

All generators take an integer ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Barabási–Albert preferential attachment.

    Each new vertex attaches to ``m`` existing vertices chosen with
    probability proportional to degree (via the repeated-nodes trick).
    """
    if n < 1 or m < 1:
        raise InvalidParameterError("n and m must be positive")
    if m >= n:
        raise InvalidParameterError(f"m={m} must be smaller than n={n}")
    rng = random.Random(seed)
    builder = GraphBuilder()
    # Seed clique keeps early attachment well defined.
    core = list(range(m + 1))
    builder.add_edges(combinations(core, 2))
    repeated: List[int] = []
    for v in core:
        repeated.extend([v] * m)
    for v in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            builder.add_edge(v, t)
            repeated.append(t)
        repeated.extend([v] * m)
    return builder.build()


def powerlaw_cluster(n: int, m: int, p: float, seed: int = 0) -> Graph:
    """Holme–Kim power-law cluster graph.

    Like BA, but after every preferential attachment step, with
    probability ``p`` the next link closes a triangle with a random
    neighbour of the previous target.  Raising ``p`` raises the triangle
    density and therefore the maximum trussness.
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"triad probability p must be in [0,1], got {p}")
    if n < 1 or m < 1:
        raise InvalidParameterError("n and m must be positive")
    if m >= n:
        raise InvalidParameterError(f"m={m} must be smaller than n={n}")
    rng = random.Random(seed)
    builder = GraphBuilder()
    core = list(range(m + 1))
    builder.add_edges(combinations(core, 2))
    repeated: List[int] = []
    for v in core:
        repeated.extend([v] * m)
    adjacency: dict = {v: {u for u in core if u != v} for v in core}
    for v in range(m + 1, n):
        adjacency[v] = set()
        added = 0
        last_target: Optional[int] = None
        while added < m:
            if (last_target is not None and rng.random() < p
                    and adjacency[last_target]):
                # Triad formation: link to a neighbour of the last target.
                candidate = rng.choice(sorted(adjacency[last_target]))
            else:
                candidate = rng.choice(repeated)
            if candidate == v or candidate in adjacency[v]:
                last_target = candidate if candidate != v else last_target
                # Fall back to pure preferential attachment next round;
                # degenerate neighbourhoods cannot stall the loop because
                # `repeated` always offers fresh candidates.
                if rng.random() < 0.5:
                    continue
                candidate = rng.choice(repeated)
                if candidate == v or candidate in adjacency[v]:
                    continue
            builder.add_edge(v, candidate)
            adjacency[v].add(candidate)
            adjacency[candidate].add(v)
            repeated.append(candidate)
            last_target = candidate
            added += 1
        repeated.extend([v] * m)
    return builder.build()


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p): every pair independently an edge with probability ``p``.

    Uses geometric skipping, so sparse graphs cost ``O(n + m)`` instead
    of ``O(n²)``.
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0,1], got {p}")
    builder = GraphBuilder()
    builder.add_vertices(range(n))
    if p == 0.0 or n < 2:
        return builder.build()
    rng = random.Random(seed)
    if p == 1.0:
        builder.add_edges(combinations(range(n), 2))
        return builder.build()
    import math
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w += 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            builder.add_edge(v, w)
    return builder.build()


def gnm_random(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m): exactly ``m`` distinct edges chosen uniformly."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise InvalidParameterError(f"m={m} exceeds the {max_edges} possible edges")
    rng = random.Random(seed)
    builder = GraphBuilder()
    builder.add_vertices(range(n))
    while builder.num_edges < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        builder.add_edge(u, v)
    return builder.build()


def watts_strogatz(n: int, k: int, beta: float, seed: int = 0) -> Graph:
    """Watts–Strogatz ring lattice with rewiring probability ``beta``."""
    if k % 2 or k < 2:
        raise InvalidParameterError(f"lattice degree k must be even >= 2, got {k}")
    if k >= n:
        raise InvalidParameterError(f"k={k} must be smaller than n={n}")
    if not 0.0 <= beta <= 1.0:
        raise InvalidParameterError(f"beta must be in [0,1], got {beta}")
    rng = random.Random(seed)
    builder = GraphBuilder()
    builder.add_vertices(range(n))
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            if rng.random() < beta:
                candidate = rng.randrange(n)
                attempts = 0
                while (candidate == v or builder.has_edge(v, candidate)) and attempts < 10:
                    candidate = rng.randrange(n)
                    attempts += 1
                if candidate != v and not builder.has_edge(v, candidate):
                    builder.add_edge(v, candidate)
                    continue
            builder.add_edge(v, u)
    return builder.build()


def stochastic_block_model(sizes: Sequence[int], p_in: float, p_out: float,
                           seed: int = 0) -> Graph:
    """Planted-partition SBM: dense blocks, sparse inter-block edges."""
    for p in (p_in, p_out):
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"probabilities must be in [0,1], got {p}")
    rng = random.Random(seed)
    builder = GraphBuilder()
    block_of: List[int] = []
    for b, size in enumerate(sizes):
        block_of.extend([b] * size)
    n = len(block_of)
    builder.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if block_of[u] == block_of[v] else p_out
            if p > 0.0 and rng.random() < p:
                builder.add_edge(u, v)
    return builder.build()


def planted_context_graph(num_contexts: int = 3, context_size: int = 5,
                          num_bridges: int = 1, extra_neighbors: int = 2,
                          center: str = "ego", seed: int = 0) -> Graph:
    """A graph whose center vertex has a *known* structural diversity.

    The center is adjacent to ``num_contexts`` disjoint cliques of
    ``context_size`` vertices each; consecutive cliques are linked by
    ``num_bridges`` low-support bridge edges, and ``extra_neighbors``
    isolated neighbours are added.  Ground truth for the center:

    * ``score = num_contexts`` for every ``3 ≤ k ≤ context_size``
      (each clique is its own maximal connected k-truss; bridges have
      ego trussness 2);
    * ``score = 1`` at ``k = 2`` (bridges chain the cliques together,
      while the ``extra_neighbors`` stay isolated and never count);
    * ``score = 0`` for ``k > context_size``.
    """
    if num_contexts < 1 or context_size < 2:
        raise InvalidParameterError("need at least one context of size >= 2")
    rng = random.Random(seed)
    builder = GraphBuilder()
    cliques: List[List[str]] = []
    for c in range(num_contexts):
        members = [f"c{c}_{i}" for i in range(context_size)]
        cliques.append(members)
        builder.add_edges(combinations(members, 2))
        for u in members:
            builder.add_edge(center, u)
    for c in range(num_contexts - 1):
        for _ in range(num_bridges):
            a = rng.choice(cliques[c])
            b = rng.choice(cliques[c + 1])
            builder.add_edge(a, b)
    for i in range(extra_neighbors):
        builder.add_edge(center, f"lonely_{i}")
    return builder.build()


def add_planted_cliques(graph: Graph, sizes: Sequence[int],
                        seed: int = 0) -> Graph:
    """Overlay cliques on random vertex subsets of an existing graph.

    Real social networks carry dense cores whose trussness far exceeds
    the bulk of the graph; plain generative models underproduce them.
    Planting a few cliques of the given ``sizes`` reproduces the
    heavy-tailed edge-trussness distribution of the paper's Figure 3
    (a clique of size ``s`` contributes edges of trussness ≥ ``s``).

    Returns a new graph; the input is not modified.
    """
    rng = random.Random(seed)
    result = graph.copy()
    vertices = list(graph.vertices())
    for i, size in enumerate(sizes):
        if size > len(vertices):
            raise InvalidParameterError(
                f"clique size {size} exceeds graph order {len(vertices)}")
        members = rng.sample(vertices, size)
        for a, b in combinations(members, 2):
            if a != b:
                result.add_edge(a, b)
    return result


def power_law_graph(n: int, edges_per_vertex: int = 5, seed: int = 0,
                    triangle_p: float = 0.3) -> Graph:
    """The Exp-6 scalability family: power-law graphs with ``|E| ≈ 5 |V|``.

    Stands in for the paper's "PythonWeb Graph Generator"; built on
    :func:`powerlaw_cluster` so the trussness structure is non-trivial.
    """
    return powerlaw_cluster(n, edges_per_vertex, triangle_p, seed=seed)
