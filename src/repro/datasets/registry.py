"""Named dataset registry — scaled analogues of the paper's Table 1.

The paper evaluates on eight SNAP/KONECT networks (Wiki-Vote through
Orkut, up to 117M edges).  Offline we substitute deterministic synthetic
analogues that preserve the *relative* structure driving every
experiment: power-law degrees, abundant triangles, heavy-tailed edge
trussness, and the same size ordering across datasets.  The paper's
measured statistics are kept alongside each spec so EXPERIMENTS.md can
print paper-vs-measured rows.

Real data can still be used: load a SNAP edge list with
:func:`repro.graph.io.read_edge_list` and pass the graph to any
algorithm directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.datasets.synthetic import (
    add_planted_cliques,
    barabasi_albert,
    powerlaw_cluster,
)


def _clustered(n: int, m: int, p: float, seed: int,
               clique_sizes: Tuple[int, ...],
               num_communities: int = 0) -> Graph:
    """Power-law cluster graph with planted dense cores and communities.

    Two overlays on the generative base:

    * a few large cliques (``clique_sizes``) reproduce the heavy
      trussness tail real social networks exhibit (Figure 3) — without
      them, scaled-down generative graphs top out at trussness ≈ 10;
    * many small cliques (``num_communities`` of size 5-8) reproduce
      overlapping community structure, which is what gives vertices
      *multiple* social contexts — the quantity every effectiveness
      experiment (Figures 13-15) groups and ranks by.
    """
    import random as _random
    rng = _random.Random(seed + 2)
    sizes = list(clique_sizes)
    sizes.extend(rng.randint(5, 8) for _ in range(num_communities))
    base = powerlaw_cluster(n, m, p, seed=seed)
    return add_planted_cliques(base, sizes, seed=seed + 1)


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset standing in for a paper network."""

    name: str
    generator: Callable[[], Graph]
    description: str
    #: The paper's Table 1 row for the real network: (|V|, |E|, dmax,
    #: tau*_G, tau*_ego, T).  Used only for reporting, never for logic.
    paper_stats: Tuple[int, int, int, int, int, int]


def _spec(name: str, gen: Callable[[], Graph], description: str,
          paper_stats: Tuple[int, int, int, int, int, int]) -> DatasetSpec:
    return DatasetSpec(name=name, generator=gen, description=description,
                       paper_stats=paper_stats)


_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec("wiki-vote",
              lambda: _clustered(600, 8, 0.50, 101, (14, 11, 9), 25),
              "Wikipedia adminship votes analogue (dense, triangle rich)",
              (7_000, 103_000, 1_065, 23, 22, 608_389)),
        _spec("email-enron",
              lambda: _clustered(800, 5, 0.55, 102, (13, 10, 8), 30),
              "Enron email analogue",
              (36_000, 183_000, 1_383, 22, 21, 727_044)),
        _spec("epinions",
              lambda: _clustered(1_000, 7, 0.45, 103, (16, 12, 9, 8), 40),
              "Epinions trust network analogue",
              (75_000, 508_000, 3_044, 33, 32, 1_624_481)),
        _spec("gowalla",
              lambda: _clustered(1_400, 5, 0.40, 104, (15, 11, 9, 8), 55),
              "Gowalla check-in friendship analogue",
              (196_000, 950_000, 14_730, 29, 28, 2_273_138)),
        _spec("notredame",
              lambda: _clustered(1_800, 6, 0.50, 105, (20, 14, 10), 70),
              "Notre Dame web graph analogue (deep trussness tail)",
              (325_000, 1_400_000, 10_721, 155, 154, 8_910_005)),
        _spec("livejournal",
              lambda: _clustered(2_400, 7, 0.45, 106, (22, 16, 12, 9), 95),
              "LiveJournal friendship analogue (largest dense graph)",
              (4_000_000, 34_700_000, 14_815, 352, 351, 177_820_130)),
        _spec("socfb-konect",
              lambda: barabasi_albert(3_000, 3, seed=107),
              "Facebook-konect analogue: large but triangle poor "
              "(the paper's tau*_G is only 7 on this one)",
              (59_000_000, 92_500_000, 4_960, 7, 6, 6_378_280)),
        _spec("orkut",
              lambda: _clustered(2_000, 10, 0.50, 108,
                                 (18, 14, 12, 10, 9), 80),
              "Orkut friendship analogue (densest graph)",
              (3_100_000, 117_000_000, 33_313, 73, 72, 412_002_900)),
    ]
}

#: The four datasets of the paper's Figure 3 trussness-distribution plot.
FIGURE3_DATASETS: List[str] = ["wiki-vote", "email-enron", "gowalla", "epinions"]

#: The three datasets used by the k/r sweeps (Figures 8-11, 13-15).
SWEEP_DATASETS: List[str] = ["gowalla", "livejournal", "orkut"]


def dataset_names() -> List[str]:
    """All registered dataset names, in Table 1 order."""
    return list(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """The spec for ``name``; raises on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise InvalidParameterError(
            f"unknown dataset {name!r}; known datasets: {known}") from None


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Graph:
    """Generate (and cache) the named dataset.

    The cached graph is shared across callers — treat it as read-only
    and ``copy()`` before mutating.
    """
    return dataset_spec(name).generator()


def paper_table1() -> Dict[str, Tuple[int, int, int, int, int, int]]:
    """The paper's Table 1 values keyed by dataset name (for reporting)."""
    return {name: spec.paper_stats for name, spec in _REGISTRY.items()}
