"""Synthetic DBLP-like collaboration network (paper Section 7.3).

The case study (Exp-10/11/12) runs on a DBLP co-authorship graph where
an edge means ≥ 3 joint papers.  Offline we generate a collaboration
network with the same decisive structure *planted*:

* ``Gabor Fichtinger`` — the Truss-Div winner: six dense research
  groups (cliques) in the ego-network, loosely chained by bridge
  authors.  The bridges merge the groups into one connected 4-core (so
  Core-Div cannot separate them) and one big component (so Comp-Div
  cannot either), but every group remains its own maximal connected
  5-truss — exactly the paper's Figure 16 story.
* ``Ming Li`` — the Comp-Div winner: eight sparse, mutually
  disconnected collaborator clusters of ≥ 5 authors each (stars/paths,
  no triangles, so Truss-Div scores 0 on them).
* ``Rui Li`` — the Core-Div winner: three disjoint K6 collaborations
  (each a maximal connected 5-core).

The background is a realistic sea of small research groups (cliques of
3–7) whose members join 1–3 groups, plus sparse random collaborations.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Dict, List

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

#: The three planted case-study authors (paper Table 5 names).
TRUSS_HUB = "Gabor Fichtinger"
COMP_HUB = "Ming Li"
CORE_HUB = "Rui Li"


def dblp_like_network(num_background_groups: int = 220,
                      num_free_authors: int = 400,
                      collaboration_noise: int = 350,
                      seed: int = 7) -> Graph:
    """Generate the case-study collaboration network.

    Parameters scale the background population; the planted hubs are
    fixed so the Exp-10/11/12 outcomes are stable across sizes.
    """
    rng = random.Random(seed)
    builder = GraphBuilder()

    _plant_truss_hub(builder)
    _plant_comp_hub(builder)
    _plant_core_hub(builder)

    # Background research groups: cliques of 3-7 authors; group members
    # are drawn from a shared author pool so authors join 1-3 groups.
    pool = [f"author_{i:04d}" for i in range(num_free_authors)]
    memberships: Dict[str, int] = {a: 0 for a in pool}
    for g in range(num_background_groups):
        size = rng.randint(3, 7)
        eligible = [a for a in pool if memberships[a] < 3]
        if len(eligible) < size:
            break
        members = rng.sample(eligible, size)
        for a in members:
            memberships[a] += 1
        builder.add_edges(combinations(members, 2))
    # Sparse random collaborations (weak ties, trussness 2).
    for _ in range(collaboration_noise):
        a, b = rng.sample(pool, 2)
        builder.add_edge(a, b)
    return builder.build()


def _plant_truss_hub(builder: GraphBuilder) -> None:
    """Six dense groups around the Truss-Div winner, chained by bridges.

    Group sizes [8, 7, 7, 6, 6, 6]; bridge authors co-author with three
    members of two consecutive groups (groups 0-3 chained, groups 4-5
    chained), keeping every group a separate maximal connected 5-truss
    while gluing the 4-core together.
    """
    sizes = [8, 7, 7, 6, 6, 6]
    groups: List[List[str]] = []
    for g, size in enumerate(sizes):
        members = [f"gf_group{g}_{i}" for i in range(size)]
        groups.append(members)
        builder.add_edges(combinations(members, 2))
        for author in members:
            builder.add_edge(TRUSS_HUB, author)
    chains = [(0, 1), (1, 2), (2, 3), (4, 5)]
    for left, right in chains:
        bridge = f"gf_bridge_{left}_{right}"
        builder.add_edge(TRUSS_HUB, bridge)
        for member in groups[left][:3]:
            builder.add_edge(bridge, member)
        for member in groups[right][:3]:
            builder.add_edge(bridge, member)


def _plant_comp_hub(builder: GraphBuilder) -> None:
    """Eight sparse collaborator clusters around the Comp-Div winner.

    Each cluster is a star of 8 authors (7 leaves): ≥ 5 vertices, so it
    counts for Comp-Div at k=5, but triangle-free, so Truss-Div and
    Core-Div both score it zero.
    """
    for c in range(8):
        hub_author = f"ml_cluster{c}_lead"
        builder.add_edge(COMP_HUB, hub_author)
        for i in range(7):
            leaf = f"ml_cluster{c}_{i}"
            builder.add_edge(hub_author, leaf)
            builder.add_edge(COMP_HUB, leaf)


def _plant_core_hub(builder: GraphBuilder) -> None:
    """Three disjoint K6 collaborations around the Core-Div winner."""
    for c in range(3):
        members = [f"rl_group{c}_{i}" for i in range(6)]
        builder.add_edges(combinations(members, 2))
        for author in members:
            builder.add_edge(CORE_HUB, author)
