"""Replication: follower store sync, update feeds, fault injection.

The cluster's failover story (PR 9) lives here:

* :mod:`repro.replication.sync` — replicate an
  :class:`~repro.service.IndexStore` root to a follower root,
  shipping binary delta re-versions as byte ranges (header + offset
  dictionary + appended heap tail) instead of whole artifacts.
* :mod:`repro.replication.feed` — a long-pollable journal of applied
  update batches, served as ``GET /graphs/<name>/updates/feed`` and
  replayed at respawned workers and shard-move targets.
* :mod:`repro.replication.faults` — seeded, deterministic fault
  injectors (worker kill, hung socket, corrupt replica bytes, slow
  follower) driving the chaos tests.
"""

from repro.replication.faults import FaultInjector, HungSocket, corrupt_file
from repro.replication.feed import FeedEntry, UpdateFeed
from repro.replication.sync import (
    ReplicationReport,
    read_store_manifest,
    replicate_store,
    verify_artifact,
)

__all__ = [
    "FaultInjector",
    "FeedEntry",
    "HungSocket",
    "ReplicationReport",
    "UpdateFeed",
    "corrupt_file",
    "read_store_manifest",
    "replicate_store",
    "verify_artifact",
]
