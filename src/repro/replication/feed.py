"""The streaming update feed: a long-pollable journal of applied batches.

The cluster's recovery paths all need the same primitive: *what
happened to this graph after time T?*  A respawned worker warm-starts
the graph as registered, then replays everything applied since; a
shard-move target catches up to the old owner before taking the pin;
a follower tails the feed to know when a sync pass is worth running.

:class:`UpdateFeed` is that primitive — per graph, an append-only
sequence of :class:`FeedEntry` records (monotonic ``seq`` starting at
1), bounded by ``capacity``.  Consumers poll :meth:`since` (or
long-poll :meth:`wait`) with the last ``seq`` they have; the answer
says whether the feed still covers that point (``complete``) — when
old entries have been dropped, the consumer must fall back to a full
resync (store replication) instead of replay.

Thread-safe; the condition variable doubles as the lock guarding the
journal, so long-pollers wake exactly when their graph advances.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: One applied update over the wire: ``(op, u, v)``.
WireUpdate = Tuple[str, object, object]


@dataclass(frozen=True)
class FeedEntry:
    """One applied update batch, as consumers replay it."""

    seq: int
    graph: str
    updates: Tuple[WireUpdate, ...]
    #: Snapshot/store version after applying (``None`` without a store).
    version: Optional[int] = None
    #: The batch's ``UpdateReport`` facts (JSON-able), when known.
    report: Optional[Dict[str, object]] = None

    def to_payload(self) -> Dict[str, object]:
        """JSON-able form (one element of the feed endpoint's body)."""
        payload: Dict[str, object] = {
            "seq": self.seq,
            "graph": self.graph,
            "updates": [[op, u, v] for op, u, v in self.updates],
        }
        if self.version is not None:
            payload["version"] = self.version
        if self.report is not None:
            payload["report"] = self.report
        return payload


def entry_from_payload(payload: Dict[str, object]) -> FeedEntry:
    """Decode one wire entry (tuple labels arrive as lists, as in
    ``repro.server.http._coerce_updates``)."""
    updates = tuple(
        (op,
         tuple(u) if isinstance(u, list) else u,
         tuple(v) if isinstance(v, list) else v)
        for op, u, v in payload["updates"])
    version = payload.get("version")
    return FeedEntry(seq=int(payload["seq"]), graph=str(payload["graph"]),
                     updates=updates,
                     version=int(version) if version is not None else None,
                     report=payload.get("report"))


class UpdateFeed:
    """Bounded per-graph journal of applied update batches.

    ``capacity`` bounds each graph's retained entries; overflow drops
    the oldest and marks the feed *incomplete* below the new floor, so
    a consumer that slept too long learns to resync instead of
    silently replaying a gapped stream.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        # The condition's own lock guards all three maps; holding it is
        # what makes append's notify_all wake long-pollers race-free.
        self._cond = threading.Condition()
        self._entries: Dict[str, List[FeedEntry]] = {}
        self._last: Dict[str, int] = {}   # graph -> newest seq (0 = none)
        self._floor: Dict[str, int] = {}  # graph -> seqs <= floor dropped

    def append(self, graph: str, updates: Sequence[WireUpdate],
               version: Optional[int] = None,
               report: Optional[Dict[str, object]] = None) -> FeedEntry:
        """Journal one applied batch; wakes every long-poller."""
        with self._cond:
            seq = self._last.get(graph, 0) + 1
            entry = FeedEntry(
                seq=seq, graph=graph,
                updates=tuple((op, u, v) for op, u, v in updates),
                version=version,
                report=dict(report) if report is not None else None)
            bucket = self._entries.setdefault(graph, [])
            bucket.append(entry)
            self._last[graph] = seq
            overflow = len(bucket) - self._capacity
            if overflow > 0:
                del bucket[:overflow]
                self._floor[graph] = bucket[0].seq - 1
            self._cond.notify_all()
        return entry

    def last_seq(self, graph: str) -> int:
        """The newest journaled ``seq`` for a graph (0 when none)."""
        with self._cond:
            return self._last.get(graph, 0)

    def since(self, graph: str, seq: int
              ) -> Tuple[List[FeedEntry], int, bool]:
        """Entries newer than ``seq``: ``(entries, last_seq, complete)``.

        ``complete`` is ``False`` when entries at or below ``seq`` have
        already been dropped *past* the requested point — the stream
        has a gap and replay from ``seq`` would silently skip batches.
        """
        with self._cond:
            return self._since_locked(graph, seq)

    def wait(self, graph: str, seq: int, timeout: float
             ) -> Tuple[List[FeedEntry], int, bool]:
        """Long-poll :meth:`since`: block up to ``timeout`` seconds for
        the graph to advance past ``seq`` (returns immediately when it
        already has, or when the feed below ``seq`` is gone)."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._last.get(graph, 0) > seq
                or self._floor.get(graph, 0) > seq,
                timeout=timeout)
            return self._since_locked(graph, seq)

    def _since_locked(self, graph: str, seq: int
                      ) -> Tuple[List[FeedEntry], int, bool]:
        last = self._last.get(graph, 0)
        complete = seq >= self._floor.get(graph, 0)
        entries = [entry for entry in self._entries.get(graph, ())
                   if entry.seq > seq]
        return entries, last, complete

    def truncate(self, graph: str, upto_seq: int) -> int:
        """Checkpoint: drop entries with ``seq <= upto_seq`` and raise the
        incomplete floor to match.

        The supervisor calls this once replication has durably shipped a
        store version covering those batches — replay from the
        checkpointed store makes the prefix redundant.  A consumer that
        slept past the truncation point sees ``complete=False`` from
        :meth:`since`/:meth:`wait` (the floor moved over its position)
        and falls back to a full resync, exactly as on capacity
        overflow.  Returns the number of entries dropped.
        """
        with self._cond:
            bucket = self._entries.get(graph)
            if not bucket or upto_seq < bucket[0].seq:
                return 0
            kept = [entry for entry in bucket if entry.seq > upto_seq]
            dropped = len(bucket) - len(kept)
            if kept:
                self._entries[graph] = kept
            else:
                self._entries.pop(graph, None)
            if upto_seq > self._floor.get(graph, 0):
                self._floor[graph] = upto_seq
            self._cond.notify_all()
        return dropped

    def truncate_version(self, graph: str, upto_version: int) -> int:
        """Drop the prefix of entries whose ``version`` is at or below
        ``upto_version`` (entries without a version never match).

        The cluster checkpoints by *store version* — feed ``seq``
        numbers restart per worker incarnation, store versions survive
        respawns — so this is the form the supervisor's truncation RPC
        uses.  Stops at the first entry past the floor: versions are
        monotonic within a graph's feed.  Returns entries dropped.
        """
        with self._cond:
            bucket = self._entries.get(graph)
            if not bucket:
                return 0
            upto_seq = 0
            for entry in bucket:
                if entry.version is None or entry.version > upto_version:
                    break
                upto_seq = entry.seq
        if upto_seq == 0:
            return 0
        return self.truncate(graph, upto_seq)

    def drop(self, graph: str) -> None:
        """Forget one graph's journal (deregistration)."""
        with self._cond:
            self._entries.pop(graph, None)
            self._last.pop(graph, None)
            self._floor.pop(graph, None)
            self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._cond:
            return (f"UpdateFeed(graphs={len(self._entries)}, "
                    f"capacity={self._capacity})")
